//! `momsynth-lint`: run the workspace lint rules and report findings.
//!
//! ```text
//! cargo run -p momsynth-lint            # human-readable, exit 1 on findings
//! cargo run -p momsynth-lint -- --json  # machine-readable JSON array
//! cargo run -p momsynth-lint -- --root /path/to/workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: momsynth-lint [--json] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace containing this binary's manifest, so
    // `cargo run -p momsynth-lint` works from any subdirectory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
    });

    let diagnostics = match momsynth_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("momsynth-lint: cannot scan `{}`: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", momsynth_lint::to_json(&diagnostics));
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        if diagnostics.is_empty() {
            eprintln!("momsynth-lint: clean ({} rules)", momsynth_lint::RULES.len());
        } else {
            eprintln!("momsynth-lint: {} finding(s)", diagnostics.len());
        }
    }
    if diagnostics.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
