//! The workspace lint driver: deny-by-default diagnostics for the
//! concurrency and durability invariants the compiler cannot check.
//!
//! Five rules, each born from a bug class this workspace actively
//! defends against (DESIGN.md §17):
//!
//! | rule | defends |
//! |------|---------|
//! | `raw-std-sync-import` | every shared-state primitive goes through `momsynth-sync`, so loom models check the real code |
//! | `relaxed-cross-thread-flag` | stop/shutdown/cancel flags carry Release/Acquire edges, not `Relaxed` |
//! | `rename-without-fsync` | atomic-rename durability: `fs::rename` publishes only fsynced bytes |
//! | `unwrap-in-serve-path` | the resident server never panics on a request path |
//! | `histogram-bucket-literal-drift` | bucket bounds live in named constants; inline literals drift between crates |
//!
//! The checks are line-oriented with small per-file state machines
//! (function tracking for the fsync rule, test-module detection), not
//! a full parser: cheap enough to run on every CI push, and precise
//! enough that the workspace runs clean with only a handful of
//! explicit waivers. A site that genuinely needs an exemption carries
//! `// lint: allow(<rule>)` on the same or the preceding line — the
//! waiver is visible in review, exactly like `#[allow]`.

use std::fmt;
use std::path::{Path, PathBuf};

/// Every rule the driver knows, in reporting order.
pub const RULES: [&str; 5] = [
    "raw-std-sync-import",
    "relaxed-cross-thread-flag",
    "rename-without-fsync",
    "unwrap-in-serve-path",
    "histogram-bucket-literal-drift",
];

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Renders diagnostics as a JSON array (stable field order via
/// serde_json's object building).
pub fn to_json(diagnostics: &[Diagnostic]) -> String {
    let entries: Vec<serde_json::Value> = diagnostics
        .iter()
        .map(|d| {
            serde_json::json!({
                "rule": d.rule,
                "path": d.path.display().to_string(),
                "line": d.line,
                "message": d.message,
            })
        })
        .collect();
    serde_json::to_string_pretty(&serde_json::Value::Array(entries))
        .expect("diagnostics serialize")
}

/// Names that mark an atomic as a cross-thread control flag: raised by
/// one thread, polled by another, so `Relaxed` on its load/store drops
/// the happens-before edge that makes pre-flag writes visible.
const FLAG_NAMES: [&str; 6] = ["stop", "shutdown", "cancel", "interrupt", "abort", "quit"];

/// Is the `lint: allow(<rule>)` waiver present on this or the
/// preceding line?
fn allowed(lines: &[&str], index: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    lines[index].contains(&marker)
        || (index > 0 && lines[index - 1].contains(&marker))
}

/// Heuristic: from the first `#[cfg(test)]` (or `#[cfg(all(test`)
/// attribute on, the file is test code. Matches the workspace idiom of
/// one trailing `mod tests` block per file.
fn test_code_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test")
        })
        .unwrap_or(lines.len())
}

/// Which crate (directory under `crates/`) a path belongs to, if any.
fn crate_of(path: &Path) -> Option<String> {
    let mut components = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = components.next() {
        if c == "crates" {
            return components.next().map(|c| c.into_owned());
        }
    }
    None
}

/// Lints one file. `path` is used for crate-scoped rules and for the
/// diagnostics; `content` is the file's text.
pub fn lint_file(path: &Path, content: &str) -> Vec<Diagnostic> {
    let lines: Vec<&str> = content.lines().collect();
    let krate = crate_of(path);
    let in_tests_dir = path.components().any(|c| c.as_os_str() == "tests");
    let test_start = if in_tests_dir { 0 } else { test_code_start(&lines) };
    let mut out = Vec::new();
    let push = |out: &mut Vec<Diagnostic>, rule: &'static str, line: usize, message: String| {
        out.push(Diagnostic { rule, path: path.to_owned(), line: line + 1, message });
    };

    // rename-without-fsync state: has the current function fsynced yet?
    let mut fsynced_in_fn = false;

    for (i, raw) in lines.iter().enumerate() {
        let line = raw.trim_start();
        if line.starts_with("//") {
            continue;
        }
        let is_test_code = i >= test_start;

        // --- raw-std-sync-import: applies everywhere (tests run under
        // loom too) except the facade crate itself.
        if krate.as_deref() != Some("sync")
            && line.contains("std::sync::")
            && !allowed(&lines, i, "raw-std-sync-import")
        {
            push(
                &mut out,
                "raw-std-sync-import",
                i,
                "use momsynth_sync (the loom facade) instead of std::sync, so model \
                 checking exercises this code"
                    .into(),
            );
        }

        // --- relaxed-cross-thread-flag: a Relaxed load/store on an
        // atomic whose name marks it as a cross-thread control flag.
        if line.contains("Ordering::Relaxed")
            && (line.contains(".load(") || line.contains(".store("))
            && FLAG_NAMES.iter().any(|n| line.to_ascii_lowercase().contains(n))
            && !allowed(&lines, i, "relaxed-cross-thread-flag")
        {
            push(
                &mut out,
                "relaxed-cross-thread-flag",
                i,
                "cross-thread control flags need Release stores and Acquire loads: \
                 Relaxed drops the happens-before edge carrying pre-flag writes"
                    .into(),
            );
        }

        // --- rename-without-fsync: non-test code only (tests corrupt
        // and rename files on purpose).
        if !is_test_code {
            if line.contains("fn ") && line.contains('(') {
                fsynced_in_fn = false;
            }
            if line.contains("sync_all(") || line.contains("sync_data(") {
                fsynced_in_fn = true;
            }
            if line.contains("fs::rename(")
                && !fsynced_in_fn
                && !allowed(&lines, i, "rename-without-fsync")
            {
                push(
                    &mut out,
                    "rename-without-fsync",
                    i,
                    "rename publishes the file: fsync the temporary (sync_all/sync_data) \
                     earlier in this function or a crash can publish torn bytes"
                        .into(),
                );
            }
        }

        // --- unwrap-in-serve-path: the resident server's non-test
        // code must fail typed, never panic. Poison propagation
        // (`expect(\"... poisoned\")`) is the workspace's deliberate
        // crash-on-poison idiom and stays allowed.
        if krate.as_deref() == Some("serve")
            && !is_test_code
            && (line.contains(".unwrap()")
                || (line.contains(".expect(") && !line.contains("poisoned")))
            && !allowed(&lines, i, "unwrap-in-serve-path")
        {
            push(
                &mut out,
                "unwrap-in-serve-path",
                i,
                "the job server must not panic outside tests: return a typed error \
                 (poison propagation via expect(\"... poisoned\") is exempt)"
                    .into(),
            );
        }

        // --- histogram-bucket-literal-drift: non-test histogram
        // registrations must pass a named bounds constant; inline
        // literals silently drift apart across call sites.
        if !is_test_code
            && line.contains(".histogram(")
            && !allowed(&lines, i, "histogram-bucket-literal-drift")
        {
            let window = lines[i..lines.len().min(i + 4)].join(" ");
            let inline_bounds = window
                .find("&[")
                .map(|at| {
                    window[at + 2..]
                        .trim_start()
                        .starts_with(|c: char| c.is_ascii_digit() || c == '.')
                })
                .unwrap_or(false);
            if inline_bounds {
                push(
                    &mut out,
                    "histogram-bucket-literal-drift",
                    i,
                    "histogram bounds must be a named constant (e.g. \
                     DEFAULT_LATENCY_BOUNDS_S): inline bucket literals drift \
                     between call sites and break cross-crate aggregation"
                        .into(),
                );
            }
        }
    }
    out
}

/// Walks `crates/*/{src,tests}` under `root` and lints every `.rs`
/// file, returning findings sorted by path then line. `vendor/` and
/// fixture directories are never scanned.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let krate = entry?.path();
        if !krate.is_dir() {
            continue;
        }
        // The driver's own sources embed rule-tripping snippets as
        // test-fixture string literals; a line scanner cannot tell
        // them from code, so the lint crate checks itself via its own
        // unit tests instead of the workspace walk.
        if krate.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        for sub in ["src", "tests"] {
            let dir = krate.join(sub);
            if dir.is_dir() {
                collect_rs(&dir, &mut files)?;
            }
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let content = std::fs::read_to_string(&file)?;
        let relative = file.strip_prefix(root).unwrap_or(&file).to_owned();
        out.extend(lint_file(&relative, &content));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, content: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> =
            lint_file(Path::new(path), content).into_iter().map(|d| d.rule).collect();
        rules.dedup();
        rules
    }

    #[test]
    fn std_sync_import_is_flagged_outside_the_facade() {
        let hit = rules_hit("crates/core/src/x.rs", "use std::sync::Mutex;\n");
        assert_eq!(hit, vec!["raw-std-sync-import"]);
        assert!(rules_hit("crates/sync/src/lib.rs", "use std::sync::Mutex;\n").is_empty());
    }

    #[test]
    fn allow_comment_waives_a_rule() {
        let same_line =
            "use std::sync::Once; // lint: allow(raw-std-sync-import) loom has no Once\n";
        assert!(rules_hit("crates/core/src/x.rs", same_line).is_empty());
        let previous_line = "// lint: allow(raw-std-sync-import)\nuse std::sync::Once;\n";
        assert!(rules_hit("crates/core/src/x.rs", previous_line).is_empty());
    }

    #[test]
    fn relaxed_flag_is_flagged_but_counters_are_not() {
        let flag = "if stop.load(Ordering::Relaxed) { return; }\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", flag), vec!["relaxed-cross-thread-flag"]);
        let counter = "hits.fetch_add(1, Ordering::Relaxed);\n";
        assert!(rules_hit("crates/x/src/a.rs", counter).is_empty());
    }

    #[test]
    fn rename_needs_a_prior_fsync_in_the_same_function() {
        let torn = "fn save() {\n    std::fs::rename(&tmp, path)?;\n}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", torn), vec!["rename-without-fsync"]);
        let durable =
            "fn save() {\n    file.sync_all()?;\n    std::fs::rename(&tmp, path)?;\n}\n";
        assert!(rules_hit("crates/x/src/a.rs", durable).is_empty());
        let reset = "fn a() {\n    file.sync_all()?;\n}\nfn b() {\n    std::fs::rename(&t, p)?;\n}\n";
        assert_eq!(rules_hit("crates/x/src/a.rs", reset), vec!["rename-without-fsync"]);
    }

    #[test]
    fn serve_unwraps_are_flagged_with_poison_exemption() {
        let panicky = "let v = queue.pop().unwrap();\n";
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", panicky),
            vec!["unwrap-in-serve-path"]
        );
        let poison = "let g = lock.lock().expect(\"state poisoned\");\n";
        assert!(rules_hit("crates/serve/src/server.rs", poison).is_empty());
        assert!(rules_hit("crates/core/src/server.rs", panicky).is_empty());
    }

    #[test]
    fn inline_histogram_bounds_are_flagged_but_constants_pass() {
        let inline = "let h = registry.histogram(\"x\", \"help\", &[0.1, 1.0], &[]);\n";
        assert_eq!(
            rules_hit("crates/x/src/a.rs", inline),
            vec!["histogram-bucket-literal-drift"]
        );
        let named =
            "let h = registry.histogram(\"x\", \"help\", &DEFAULT_LATENCY_BOUNDS_S, &[]);\n";
        assert!(rules_hit("crates/x/src/a.rs", named).is_empty());
    }

    #[test]
    fn test_modules_and_tests_dirs_relax_code_rules_only() {
        let content = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); std::fs::rename(a, b); }\n}\n";
        assert!(rules_hit("crates/serve/src/a.rs", content).is_empty());
        // std::sync stays denied even in tests: models must build on
        // the facade.
        assert_eq!(
            rules_hit("crates/serve/tests/a.rs", "use std::sync::Mutex;\n"),
            vec!["raw-std-sync-import"]
        );
    }

    #[test]
    fn json_output_carries_every_field() {
        let d = lint_file(Path::new("crates/x/src/a.rs"), "use std::sync::Mutex;\n");
        let json = to_json(&d);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["rule"], "raw-std-sync-import");
        assert_eq!(parsed[0]["line"].as_u64(), Some(1));
        assert!(parsed[0]["path"].as_str().unwrap().contains("a.rs"));
    }
}
