//! End-to-end checks of the lint driver: the fixture trips every rule
//! and the real workspace runs clean.

use std::path::{Path, PathBuf};

use momsynth_lint::{lint_file, lint_workspace, RULES};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <workspace>/crates/lint")
        .to_path_buf()
}

#[test]
fn fixture_trips_every_rule() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/trip.rs");
    let content = std::fs::read_to_string(&fixture).expect("fixture readable");
    // The fixture is addressed as serve-crate source so the
    // serve-scoped rule applies too.
    let diagnostics = lint_file(Path::new("crates/serve/src/trip.rs"), &content);
    for rule in RULES {
        assert!(
            diagnostics.iter().any(|d| d.rule == rule),
            "rule `{rule}` must fire on the fixture; got: {diagnostics:?}"
        );
    }
    for d in &diagnostics {
        assert!(d.line > 0, "diagnostics carry 1-based lines");
    }
}

#[test]
fn workspace_is_clean() {
    let diagnostics = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        diagnostics.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
