//! Lint fixture: every rule in `momsynth-lint` must fire on this file.
//! Lives outside `src`/`tests` so the workspace scan never sees it.

use std::sync::atomic::{AtomicBool, Ordering}; // raw-std-sync-import

static STOP: AtomicBool = AtomicBool::new(false);

fn poll_stop() -> bool {
    STOP.load(Ordering::Relaxed) // relaxed-cross-thread-flag
}

fn publish_unsynced(tmp: &std::path::Path, path: &std::path::Path) {
    std::fs::rename(tmp, path).unwrap(); // rename-without-fsync (+ unwrap)
}

fn handle_request(payload: &str) -> usize {
    payload.parse().unwrap() // unwrap-in-serve-path
}

fn register(registry: &Registry) -> Histogram {
    registry.histogram("x_seconds", "drifting", &[0.1, 1.0, 10.0], &[])
    // histogram-bucket-literal-drift
}
