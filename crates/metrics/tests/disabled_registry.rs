//! Property test: a disabled [`Registry`] is observationally a no-op
//! under arbitrary concurrent instrument traffic — it never allocates
//! a cell, never records a value, and renders an empty exposition —
//! including through the [`MetricsSink`] telemetry path the job server
//! uses.

use momsynth_metrics::{MetricsSink, Registry};
use momsynth_sync::sync::Arc;
use momsynth_sync::thread;
use momsynth_telemetry::{Counters, Event, GenerationEvent, Sink, Warning};
use proptest::prelude::*;

/// One randomly chosen instrument operation.
#[derive(Debug, Clone)]
enum Op {
    CounterInc { name: usize, by: u64 },
    GaugeSet { name: usize, to: i64 },
    GaugeAdd { name: usize, by: i64 },
    Observe { name: usize, value: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0usize..4, 0u64..1000, -500i64..500, -1.0f64..100.0).prop_map(
        |(kind, name, by, delta, value)| match kind {
            0 => Op::CounterInc { name, by },
            1 => Op::GaugeSet { name, to: delta },
            2 => Op::GaugeAdd { name, by: delta },
            _ => Op::Observe { name, value },
        },
    )
}

fn apply(registry: &Registry, op: &Op) {
    const NAMES: [&str; 4] = [
        "momsynth_a_total",
        "momsynth_b_total",
        "momsynth_c_seconds",
        "momsynth_d_things",
    ];
    match op {
        Op::CounterInc { name, by } => {
            let c = registry.counter(NAMES[*name], "h", &[("k", "v")]);
            c.add(*by);
            assert_eq!(c.value(), 0, "disabled counters never accumulate");
            assert!(
                format!("{c:?}").contains("cell: None"),
                "disabled registry must not allocate cells: {c:?}"
            );
        }
        Op::GaugeSet { name, to } => {
            let g = registry.gauge(NAMES[*name], "h", &[]);
            g.set(*to);
            assert!(format!("{g:?}").contains("cell: None"), "{g:?}");
        }
        Op::GaugeAdd { name, by } => {
            let g = registry.gauge(NAMES[*name], "h", &[]);
            g.add(*by);
            g.sub(*by);
            assert!(format!("{g:?}").contains("cell: None"), "{g:?}");
        }
        Op::Observe { name, value } => {
            let h = registry.histogram(NAMES[*name], "h", &[0.5, 5.0], &[]);
            h.observe(*value);
            assert!(format!("{h:?}").contains("cell: None"), "{h:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary operation sequences applied from two threads leave a
    /// disabled registry completely empty.
    #[test]
    fn disabled_registry_is_a_noop_under_concurrent_use(
        ops_a in proptest::collection::vec(op_strategy(), 1..40),
        ops_b in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let registry = Registry::disabled();
        prop_assert!(!registry.is_enabled());
        let workers: Vec<_> = [ops_a, ops_b]
            .into_iter()
            .map(|ops| {
                let registry = registry.clone();
                thread::spawn(move || {
                    for op in &ops {
                        apply(&registry, op);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let snapshot = registry.snapshot();
        prop_assert!(snapshot.counters.is_empty());
        prop_assert!(snapshot.gauges.is_empty());
        prop_assert!(snapshot.histograms.is_empty());
        prop_assert_eq!(snapshot.to_prometheus(), "");
    }

    /// The serve-path telemetry bridge: a `MetricsSink` over a disabled
    /// registry swallows arbitrary generation events without recording
    /// anything.
    #[test]
    fn metrics_sink_over_disabled_registry_records_nothing(
        generations in proptest::collection::vec(
            (0..10_000u64, 0..1_000_000u64, -1e6..1e6f64, 0.0..1.0f64),
            1..25,
        ),
    ) {
        let registry = Registry::disabled();
        let sink = Arc::new(MetricsSink::new(&registry));
        let events: Vec<Event> = generations
            .into_iter()
            .map(|(generation, evaluations, best, cache_hit_rate)| {
                Event::Generation(GenerationEvent {
                    generation,
                    evaluations,
                    best,
                    mean: best + 1.0,
                    worst: best + 2.0,
                    stagnation: 0,
                    evals_per_sec: 10.0,
                    cache_hit_rate,
                    counters: Counters::default(),
                })
            })
            .collect();
        let half = events.len() / 2;
        let workers: Vec<_> = [events[..half].to_vec(), events[half..].to_vec()]
            .into_iter()
            .map(|chunk| {
                let sink = Arc::clone(&sink);
                thread::spawn(move || {
                    for event in &chunk {
                        sink.record(event);
                    }
                    sink.record(&Event::Warning(Warning { message: "w".into() }));
                    sink.flush();
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let snapshot = registry.snapshot();
        prop_assert!(snapshot.counters.is_empty());
        prop_assert!(snapshot.gauges.is_empty());
        prop_assert!(snapshot.histograms.is_empty());
    }
}
