//! Property-based tests of histogram bucketing, snapshot merge and
//! quantile estimation against a straightforward reference
//! implementation (and against each other).

use proptest::prelude::*;

use momsynth_metrics::{HistogramSample, Registry};

/// Ascending, strictly increasing bucket bounds.
fn bounds() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..100_000, 1..10).prop_map(|mut raw| {
        raw.sort_unstable();
        raw.dedup();
        raw.into_iter().map(|b| f64::from(b) / 100.0).collect()
    })
}

/// Observations spread across (and beyond) the bucket range.
fn observations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..2000.0, 0..200)
}

/// Reference bucketing: first bucket whose upper bound holds the value,
/// overflow past the last finite bound.
fn reference_counts(bounds: &[f64], obs: &[f64]) -> Vec<u64> {
    let mut counts = vec![0u64; bounds.len() + 1];
    for &v in obs {
        let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
        counts[idx] += 1;
    }
    counts
}

/// The bucket `[lower, upper]` a `q`-quantile estimate must fall into:
/// the one containing the target cumulative rank.
fn reference_quantile_bucket(sample: &HistogramSample, q: f64) -> (f64, f64) {
    let target = q * sample.count as f64;
    let mut cumulative = 0u64;
    for (i, &c) in sample.counts.iter().enumerate() {
        cumulative += c;
        if (cumulative as f64) < target || c == 0 {
            continue;
        }
        let last = sample.bounds.last().copied().unwrap_or(0.0);
        let upper = sample.bounds.get(i).copied().unwrap_or(last);
        let lower = if i == 0 { 0.0 } else { sample.bounds[i - 1].min(upper) };
        return (lower, upper);
    }
    (0.0, sample.bounds.last().copied().unwrap_or(0.0))
}

fn observed_sample(bounds: &[f64], obs: &[f64]) -> HistogramSample {
    let registry = Registry::new();
    let histogram = registry.histogram("momsynth_test_seconds", "test", bounds, &[]);
    for &v in obs {
        histogram.observe(v);
    }
    registry
        .snapshot()
        .histogram_sample("momsynth_test_seconds", &[])
        .expect("registered family")
        .clone()
}

proptest! {
    #[test]
    fn bucketing_matches_the_reference(bounds in bounds(), obs in observations()) {
        let sample = observed_sample(&bounds, &obs);
        prop_assert_eq!(&sample.counts, &reference_counts(&bounds, &obs));
        prop_assert_eq!(sample.count, obs.len() as u64);
        let expected_sum: f64 = obs.iter().sum();
        prop_assert!((sample.sum - expected_sum).abs() <= 1e-9 * expected_sum.abs().max(1.0));
    }

    #[test]
    fn merge_equals_observing_the_union(
        bounds in bounds(),
        obs_a in observations(),
        obs_b in observations(),
    ) {
        let mut merged = observed_sample(&bounds, &obs_a);
        merged.merge(&observed_sample(&bounds, &obs_b));
        let union: Vec<f64> = obs_a.iter().chain(&obs_b).copied().collect();
        let direct = observed_sample(&bounds, &union);
        prop_assert_eq!(&merged.counts, &direct.counts);
        prop_assert_eq!(merged.count, direct.count);
        prop_assert!((merged.sum - direct.sum).abs() <= 1e-9 * direct.sum.abs().max(1.0));
        prop_assert_eq!(merged.p50, direct.p50);
        prop_assert_eq!(merged.p95, direct.p95);
        prop_assert_eq!(merged.p99, direct.p99);
    }

    #[test]
    fn quantiles_land_in_the_rank_bucket_and_are_monotone(
        bounds in bounds(),
        obs in observations(),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..6),
    ) {
        let sample = observed_sample(&bounds, &obs);
        for &q in &qs {
            let estimate = sample.quantile(q);
            if sample.count == 0 {
                prop_assert_eq!(estimate, 0.0);
                continue;
            }
            let (lower, upper) = reference_quantile_bucket(&sample, q);
            prop_assert!(
                estimate >= lower - 1e-12 && estimate <= upper + 1e-12,
                "q={q}: estimate {estimate} outside rank bucket [{lower}, {upper}]"
            );
        }
        let mut sorted = qs.clone();
        sorted.sort_by(f64::total_cmp);
        for pair in sorted.windows(2) {
            prop_assert!(
                sample.quantile(pair[0]) <= sample.quantile(pair[1]) + 1e-12,
                "quantile must be monotone in q"
            );
        }
        // Derived summary percentiles are the estimator at 0.50/0.95/0.99.
        prop_assert_eq!(sample.p50, sample.quantile(0.50));
        prop_assert_eq!(sample.p95, sample.quantile(0.95));
        prop_assert_eq!(sample.p99, sample.quantile(0.99));
    }
}
