//! Loom models for the metrics instruments: exhaustively explore
//! concurrent use of `Counter`/`Gauge`/`Histogram` cells and registry
//! registration, proving the counters linearizable under the weak
//! memory model.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p momsynth-metrics
//! --test loom --release`. Adding `--cfg loom_mutation` arms a seeded
//! lost-update bug in `Counter::add` and flips the suite into
//! detection-power mode: it then asserts that loom *catches* the bug.

#![cfg(loom)]

use momsynth_metrics::Registry;
use momsynth_sync::thread;

/// Two writers increment one counter family; every interleaving must
/// observe all four increments.
fn counter_model() {
    let registry = Registry::new();
    let counter = registry.counter("m_total", "model counter", &[]);
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let counter = counter.clone();
            thread::spawn(move || {
                counter.inc();
                counter.add(1);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.value(), 4, "increments must never be lost");
}

#[cfg(not(loom_mutation))]
#[test]
fn concurrent_counter_increments_are_linearizable() {
    momsynth_sync::model(counter_model);
}

/// With `--cfg loom_mutation`, `Counter::add` is a non-atomic
/// load+store; the model must fail, proving it has teeth.
#[cfg(loom_mutation)]
#[test]
fn seeded_lost_update_in_counter_add_is_caught() {
    let result = std::panic::catch_unwind(|| momsynth_sync::model(counter_model));
    assert!(
        result.is_err(),
        "loom failed to detect the seeded lost-update bug in Counter::add"
    );
}

#[cfg(not(loom_mutation))]
#[test]
fn concurrent_gauge_adds_balance_out() {
    momsynth_sync::model(|| {
        let registry = Registry::new();
        let gauge = registry.gauge("m_level", "model gauge", &[]);
        let up = {
            let gauge = gauge.clone();
            thread::spawn(move || gauge.add(2))
        };
        let down = {
            let gauge = gauge.clone();
            thread::spawn(move || gauge.sub(1))
        };
        up.join().unwrap();
        down.join().unwrap();
        assert_eq!(gauge.value(), 1, "adds and subs must commute");
    });
}

#[cfg(not(loom_mutation))]
#[test]
fn concurrent_histogram_observations_stay_consistent() {
    momsynth_sync::model(|| {
        let registry = Registry::new();
        let histogram =
            registry.histogram("m_seconds", "model histogram", &[0.1, 1.0], &[]);
        let writers: Vec<_> = [0.05, 5.0]
            .into_iter()
            .map(|v| {
                let histogram = histogram.clone();
                thread::spawn(move || histogram.observe(v))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(histogram.count(), 2, "observation count must be exact");
        let snap = registry.snapshot();
        let sample = snap.histogram_sample("m_seconds", &[]).unwrap();
        assert_eq!(sample.count, 2);
        assert!((sample.sum - 5.05).abs() < 1e-12, "sum CAS loop must not lose adds");
        assert_eq!(sample.counts.iter().sum::<u64>(), 2, "bucket counts must add up");
    });
}

/// Registering the same family from two threads must converge on one
/// cell (the registry mutex serializes registration) and lose no
/// increments made through either handle.
#[cfg(not(loom_mutation))]
#[test]
fn concurrent_registration_converges_on_one_cell() {
    momsynth_sync::model(|| {
        let registry = Registry::new();
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let registry = registry.clone();
                thread::spawn(move || {
                    let counter = registry.counter("m_shared_total", "shared", &[]);
                    counter.inc();
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("m_shared_total", &[]), Some(2));
        assert_eq!(
            snap.counters.iter().filter(|c| c.name == "m_shared_total").count(),
            1,
            "double registration must not fork the family"
        );
    });
}
