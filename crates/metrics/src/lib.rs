//! # momsynth-metrics — low-overhead service instruments
//!
//! A small instrument registry in the spirit of Prometheus client
//! libraries, built for the `momsynth serve` daemon and the synthesis
//! inner loop:
//!
//! - **Counters** — monotonically increasing `u64` totals (admissions,
//!   sheds, cache hits).
//! - **Gauges** — instantaneous `i64` levels (queue depth, busy workers).
//! - **Histograms** — fixed-bucket latency/size distributions with
//!   p50/p95/p99 summaries derived from cumulative bucket counts.
//!
//! All hot-path operations are single atomic instructions (the histogram
//! sum is a compare-and-swap loop over the `f64` bit pattern, so the
//! crate stays `unsafe`-free). Handles are cheap clones and can be used
//! from any thread.
//!
//! ## Zero cost when disabled
//!
//! Mirroring the telemetry `Sink` contract, a [`Registry`] constructed
//! with [`Registry::disabled`] hands out *no-op* handles: every
//! instrument carries an `Option<Arc<..>>` that is `None`, so a
//! disabled counter increment is one branch and no memory traffic —
//! exactly zero added work beyond the test.
//!
//! ## Exposure
//!
//! [`Registry::snapshot`] produces a serialisable [`MetricsSnapshot`];
//! [`MetricsSnapshot::to_prometheus`] renders the standard
//! `text/plain; version=0.0.4` exposition format. The serve crate wires
//! the snapshot into its line-JSON protocol (`metrics` request), an HTTP
//! exposition endpoint (`--metrics-listen`) and periodic journal files.
//!
//! The [`MetricsSink`] adapter re-emits telemetry events (generation
//! counters, phase timings, run summaries) as registry instruments, so
//! the synthesis core needs no direct dependency on this crate.

mod sink;

pub use sink::MetricsSink;

use std::collections::BTreeMap;

use momsynth_sync::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use momsynth_sync::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Default histogram bucket upper bounds for latencies in seconds:
/// roughly logarithmic from 1 µs to 60 s. A final `+Inf` bucket is
/// implicit in every histogram.
pub const DEFAULT_LATENCY_BOUNDS_S: [f64; 20] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Longer-tailed bucket bounds for whole-job durations in seconds.
pub const DEFAULT_DURATION_BOUNDS_S: [f64; 14] =
    [0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 900.0];

/// Atomically adds `v` onto an `f64` stored as its bit pattern.
fn add_f64(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// The kind of an instrument family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kind {
    /// Monotonically increasing total.
    Counter,
    /// Instantaneous level that can go up and down.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

/// Shared state of one histogram series.
#[derive(Debug)]
struct HistCore {
    /// Finite upper bounds, ascending; the `+Inf` bucket is implicit.
    bounds: Vec<f64>,
    /// Per-bucket observation counts; `len() == bounds.len() + 1`.
    counts: Vec<AtomicU64>,
    /// Sum of all observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
    /// Total number of observations.
    count: AtomicU64,
}

impl HistCore {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&self.sum_bits, v);
    }
}

/// One registered series: a value cell plus its label set.
#[derive(Debug)]
enum SeriesCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistCore>),
}

/// One instrument family: a help string, a kind, and its labelled series.
#[derive(Debug)]
struct Family {
    kind: Kind,
    help: String,
    /// Keyed by the rendered label set (`key="value",...`), which keeps
    /// snapshot and exposition order deterministic.
    series: BTreeMap<String, (Vec<(String, String)>, SeriesCell)>,
}

/// Interior of an enabled [`Registry`].
#[derive(Debug, Default)]
struct Inner {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Renders a label set in its given order: `state="verified"`.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Prometheus label escaping: backslash, double-quote, newline.
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

/// An instrument registry. Cheap to clone; all clones share the same
/// instruments. A registry constructed disabled hands out no-op handles
/// and produces empty snapshots.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(Inner::default())) }
    }

    /// A registry whose handles do nothing. This is the `Default`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether instruments actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) a counter series. Repeated registration
    /// with the same name and labels returns a handle onto the same cell.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else { return Counter { cell: None } };
        let mut families = inner.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind: Kind::Counter,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(family.kind, Kind::Counter, "{name} already registered with another kind");
        let key = label_key(labels);
        let owned: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        let (_, cell) = family
            .series
            .entry(key)
            .or_insert_with(|| (owned, SeriesCell::Counter(Arc::new(AtomicU64::new(0)))));
        match cell {
            SeriesCell::Counter(c) => Counter { cell: Some(Arc::clone(c)) },
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else { return Gauge { cell: None } };
        let mut families = inner.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind: Kind::Gauge,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(family.kind, Kind::Gauge, "{name} already registered with another kind");
        let key = label_key(labels);
        let owned: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        let (_, cell) = family
            .series
            .entry(key)
            .or_insert_with(|| (owned, SeriesCell::Gauge(Arc::new(AtomicI64::new(0)))));
        match cell {
            SeriesCell::Gauge(g) => Gauge { cell: Some(Arc::clone(g)) },
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or retrieves) a histogram series over the given finite
    /// bucket bounds (ascending; `+Inf` is implicit).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let Some(inner) = &self.inner else { return Histogram { cell: None } };
        let mut families = inner.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind: Kind::Histogram,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert_eq!(family.kind, Kind::Histogram, "{name} already registered with another kind");
        let key = label_key(labels);
        let owned: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        let (_, cell) = family
            .series
            .entry(key)
            .or_insert_with(|| (owned, SeriesCell::Histogram(Arc::new(HistCore::new(bounds)))));
        match cell {
            SeriesCell::Histogram(h) => Histogram { cell: Some(Arc::clone(h)) },
            _ => unreachable!("kind checked above"),
        }
    }

    /// A point-in-time copy of every instrument, ready to serialise or
    /// render. Empty when the registry is disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else { return snap };
        let families = inner.families.lock().expect("metrics registry poisoned");
        for (name, family) in families.iter() {
            for (_, (labels, cell)) in family.series.iter() {
                let labels = labels.clone();
                match cell {
                    SeriesCell::Counter(c) => snap.counters.push(CounterSample {
                        name: name.clone(),
                        help: family.help.clone(),
                        labels,
                        value: c.load(Ordering::Relaxed),
                    }),
                    SeriesCell::Gauge(g) => snap.gauges.push(GaugeSample {
                        name: name.clone(),
                        help: family.help.clone(),
                        labels,
                        value: g.load(Ordering::Relaxed),
                    }),
                    SeriesCell::Histogram(h) => {
                        let counts: Vec<u64> =
                            h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
                        let mut sample = HistogramSample {
                            name: name.clone(),
                            help: family.help.clone(),
                            labels,
                            bounds: h.bounds.clone(),
                            counts,
                            sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                            count: h.count.load(Ordering::Relaxed),
                            p50: 0.0,
                            p95: 0.0,
                            p99: 0.0,
                        };
                        sample.p50 = sample.quantile(0.50);
                        sample.p95 = sample.quantile(0.95);
                        sample.p99 = sample.quantile(0.99);
                        snap.histograms.push(sample);
                    }
                }
            }
        }
        snap
    }
}

/// A monotonically increasing counter handle. No-op when its registry
/// was disabled.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            // Seeded bug for the loom mutation check (DESIGN.md §17):
            // a non-atomic read-modify-write loses concurrent
            // increments. `tests/loom.rs` asserts loom catches it.
            #[cfg(loom_mutation)]
            {
                let v = cell.load(Ordering::Relaxed);
                cell.store(v + n, Ordering::Relaxed);
            }
            #[cfg(not(loom_mutation))]
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total (0 when disabled).
    pub fn value(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// An instantaneous level handle. No-op when its registry was disabled.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current level (0 when disabled).
    pub fn value(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle. No-op when its registry was
/// disabled.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistCore>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.observe(v);
        }
    }

    /// Records a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

/// One counter series in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Family name, e.g. `momsynth_jobs_submitted_total`.
    pub name: String,
    /// Family help string.
    pub help: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Current total.
    pub value: u64,
}

/// One gauge series in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Family name, e.g. `momsynth_queue_depth`.
    pub name: String,
    /// Family help string.
    pub help: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Current level.
    pub value: i64,
}

/// One histogram series in a [`MetricsSnapshot`], with derived
/// percentile summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Family name, e.g. `momsynth_journal_fsync_seconds`.
    pub name: String,
    /// Family help string.
    pub help: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// Finite bucket upper bounds, ascending (`+Inf` implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `len() == bounds.len() + 1` (last is `+Inf`).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistogramSample {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the bucket containing the target rank —
    /// the same estimator as Prometheus' `histogram_quantile`.
    /// Observations in the overflow bucket clamp to the largest finite
    /// bound. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cumulative;
            cumulative += c;
            if (cumulative as f64) < target || c == 0 {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: clamp to the largest finite bound.
                return self.bounds.last().copied().unwrap_or(0.0);
            };
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let into = (target - prev as f64) / c as f64;
            return lower + (upper - lower) * into.clamp(0.0, 1.0);
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Folds another sample over the same bucket layout into this one.
    ///
    /// # Panics
    ///
    /// If the bucket bounds differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bounds, other.bounds, "histogram merge needs identical buckets");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.p50 = self.quantile(0.50);
        self.p95 = self.quantile(0.95);
        self.p99 = self.quantile(0.99);
    }
}

/// A point-in-time copy of every instrument in a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counter series, name-sorted.
    pub counters: Vec<CounterSample>,
    /// All gauge series, name-sorted.
    pub gauges: Vec<GaugeSample>,
    /// All histogram series, name-sorted.
    pub histograms: Vec<HistogramSample>,
}

/// Writes a Prometheus float: integral values without an exponent,
/// everything else via `{:?}` round-trip formatting.
fn fmt_float(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen_help = String::new();
        let mut header = |out: &mut String, name: &str, help: &str, kind: &str| {
            if seen_help == name {
                return;
            }
            seen_help = name.to_string();
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };
        for c in &self.counters {
            header(&mut out, &c.name, &c.help, "counter");
            let labels = rendered_labels(&c.labels);
            out.push_str(&format!("{}{} {}\n", c.name, labels, c.value));
        }
        // The closure borrows `seen_help` mutably across loops by
        // design: names never repeat across kinds (the registry enforces
        // one kind per family).
        for g in &self.gauges {
            header(&mut out, &g.name, &g.help, "gauge");
            let labels = rendered_labels(&g.labels);
            out.push_str(&format!("{}{} {}\n", g.name, labels, g.value));
        }
        for h in &self.histograms {
            header(&mut out, &h.name, &h.help, "histogram");
            let mut cumulative = 0u64;
            for (i, &count) in h.counts.iter().enumerate() {
                cumulative += count;
                let le = h.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                let mut labels = h.labels.clone();
                labels.push(("le".to_string(), fmt_float(le)));
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    rendered_labels(&labels),
                    cumulative
                ));
            }
            let labels = rendered_labels(&h.labels);
            out.push_str(&format!("{}_sum{} {}\n", h.name, labels, fmt_float(h.sum)));
            out.push_str(&format!("{}_count{} {}\n", h.name, labels, h.count));
        }
        out
    }

    /// Looks up a counter sample by family name and label set.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let want: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        self.counters.iter().find(|c| c.name == name && c.labels == want).map(|c| c.value)
    }

    /// Looks up a gauge sample by family name and label set.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let want: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        self.gauges.iter().find(|g| g.name == name && g.labels == want).map(|g| g.value)
    }

    /// Looks up a histogram sample by family name and label set.
    pub fn histogram_sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSample> {
        let want: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        self.histograms.iter().find(|h| h.name == name && h.labels == want)
    }
}

fn rendered_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<(&str, &str)> =
        labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    format!("{{{}}}", label_key(&pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_noop_handles() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("momsynth_x_total", "x", &[]);
        let g = registry.gauge("momsynth_y", "y", &[]);
        let h = registry.histogram("momsynth_z_seconds", "z", &DEFAULT_LATENCY_BOUNDS_S, &[]);
        c.inc();
        g.set(5);
        h.observe(0.1);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        let snap = registry.snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
        assert!(snap.to_prometheus().is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate_and_share_cells() {
        let registry = Registry::new();
        let c1 = registry.counter("momsynth_jobs_total", "jobs", &[("state", "done")]);
        let c2 = registry.counter("momsynth_jobs_total", "jobs", &[("state", "done")]);
        c1.add(2);
        c2.inc();
        assert_eq!(c1.value(), 3);
        let g = registry.gauge("momsynth_queue_depth", "depth", &[]);
        g.add(4);
        g.sub(1);
        assert_eq!(g.value(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("momsynth_jobs_total", &[("state", "done")]), Some(3));
        assert_eq!(snap.gauge_value("momsynth_queue_depth", &[]), Some(3));
    }

    #[test]
    fn histogram_buckets_sum_and_percentiles() {
        let registry = Registry::new();
        let h = registry.histogram("momsynth_lat_seconds", "lat", &[0.1, 1.0, 10.0], &[]);
        for v in [0.05, 0.5, 0.5, 2.0, 20.0] {
            h.observe(v);
        }
        let snap = registry.snapshot();
        let s = snap.histogram_sample("momsynth_lat_seconds", &[]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.sum - 23.05).abs() < 1e-9);
        assert_eq!(s.counts, vec![1, 2, 1, 1]);
        // Median rank 2.5 of 5 lands in the (0.1, 1.0] bucket.
        assert!(s.p50 > 0.1 && s.p50 <= 1.0, "{}", s.p50);
        // p99 lands in the overflow bucket and clamps to the last bound.
        assert_eq!(s.p99, 10.0);
    }

    #[test]
    fn prometheus_rendering_has_cumulative_buckets_and_headers() {
        let registry = Registry::new();
        registry.counter("momsynth_total", "a counter", &[]).add(7);
        let h = registry.histogram("momsynth_d_seconds", "a histogram", &[1.0], &[("k", "v")]);
        h.observe(0.5);
        h.observe(2.0);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# HELP momsynth_total a counter\n"), "{text}");
        assert!(text.contains("# TYPE momsynth_total counter\n"), "{text}");
        assert!(text.contains("momsynth_total 7\n"), "{text}");
        assert!(text.contains("momsynth_d_seconds_bucket{k=\"v\",le=\"1.0\"} 1\n"), "{text}");
        assert!(text.contains("momsynth_d_seconds_bucket{k=\"v\",le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("momsynth_d_seconds_sum{k=\"v\"} 2.5\n"), "{text}");
        assert!(text.contains("momsynth_d_seconds_count{k=\"v\"} 2\n"), "{text}");
    }

    #[test]
    fn snapshot_serialises_and_round_trips() {
        let registry = Registry::new();
        registry.counter("momsynth_total", "c", &[]).inc();
        registry.histogram("momsynth_h_seconds", "h", &[0.5, 5.0], &[]).observe(1.0);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn label_values_are_escaped() {
        let key = label_key(&[("path", "a\"b\\c\nd")]);
        assert_eq!(key, "path=\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn histogram_merge_matches_single_stream() {
        let registry = Registry::new();
        let a = registry.histogram("momsynth_a_seconds", "a", &[0.1, 1.0], &[]);
        let b = registry.histogram("momsynth_b_seconds", "b", &[0.1, 1.0], &[]);
        let whole = registry.histogram("momsynth_w_seconds", "w", &[0.1, 1.0], &[]);
        for (i, v) in [0.05, 0.2, 0.7, 1.5, 0.01, 0.9].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
            whole.observe(*v);
        }
        let snap = registry.snapshot();
        let mut merged = snap.histogram_sample("momsynth_a_seconds", &[]).unwrap().clone();
        merged.merge(snap.histogram_sample("momsynth_b_seconds", &[]).unwrap());
        let reference = snap.histogram_sample("momsynth_w_seconds", &[]).unwrap();
        assert_eq!(merged.counts, reference.counts);
        assert_eq!(merged.count, reference.count);
        assert!((merged.sum - reference.sum).abs() < 1e-12);
        assert_eq!(merged.p50, reference.p50);
        assert_eq!(merged.p95, reference.p95);
        assert_eq!(merged.p99, reference.p99);
    }
}
