//! Bridges telemetry events into registry instruments.

use momsynth_sync::sync::Mutex;
use momsynth_telemetry::{Counters, Event, Phase, Sink};

use crate::{Counter, Gauge, Histogram, Registry, DEFAULT_DURATION_BOUNDS_S};

/// Per-phase wall-time bucket bounds in seconds: synthesis phases on the
/// seed workloads run from microseconds to a few seconds.
const PHASE_BOUNDS_S: [f64; 16] = [
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.5,
    1.0, 5.0,
];

/// A telemetry [`Sink`] that re-emits run events as registry
/// instruments: per-phase wall time as histograms, eval-cache
/// hit/miss/eviction totals as counters (delta-decoded from the
/// cumulative per-generation [`Counters`]), live `evals/sec` as a
/// gauge, and run durations as a histogram.
///
/// The sink reports [`Sink::enabled`] only when its registry is
/// enabled, so the synthesis core skips event construction entirely for
/// a disabled registry — the same zero-cost contract as every other
/// sink.
#[derive(Debug)]
pub struct MetricsSink {
    enabled: bool,
    runs_started: Counter,
    runs_finished: Counter,
    run_duration: Histogram,
    generations: Counter,
    evaluations: Counter,
    rejected: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    dvs_iterations: Counter,
    evals_per_sec: Gauge,
    phase_seconds: Vec<(Phase, Histogram)>,
    /// Delta-decoder state: the cumulative counters of the last
    /// generation seen, and whether the next generation event is the
    /// baseline of a resumed run (whose deltas must not be re-counted).
    state: Mutex<DeltaState>,
}

#[derive(Debug, Default)]
struct DeltaState {
    last: Option<Counters>,
    resumed: bool,
}

impl MetricsSink {
    /// Builds the sink and registers its instrument families on
    /// `registry`. All families exist (at zero) from this point, so
    /// scrapes before the first run still see the full taxonomy.
    pub fn new(registry: &Registry) -> Self {
        let phase_seconds = Phase::ALL
            .iter()
            .map(|&phase| {
                (
                    phase,
                    registry.histogram(
                        "momsynth_run_phase_seconds",
                        "Wall time per synthesis phase, one observation per run",
                        &PHASE_BOUNDS_S,
                        &[("phase", phase.name())],
                    ),
                )
            })
            .collect();
        Self {
            enabled: registry.is_enabled(),
            runs_started: registry.counter(
                "momsynth_runs_started_total",
                "Synthesis runs started (resumes included)",
                &[],
            ),
            runs_finished: registry.counter(
                "momsynth_runs_finished_total",
                "Synthesis runs that produced a summary",
                &[],
            ),
            run_duration: registry.histogram(
                "momsynth_run_duration_seconds",
                "Wall time of finished synthesis runs",
                &DEFAULT_DURATION_BOUNDS_S,
                &[],
            ),
            generations: registry.counter(
                "momsynth_generations_total",
                "GA generations completed",
                &[],
            ),
            evaluations: registry.counter(
                "momsynth_evaluations_total",
                "Fitness evaluations actually priced",
                &[],
            ),
            rejected: registry.counter(
                "momsynth_evaluations_rejected_total",
                "Evaluations rejected (errored, panicked or non-finite)",
                &[],
            ),
            cache_hits: registry.counter(
                "momsynth_eval_cache_hits_total",
                "Cost lookups served by the evaluation cache",
                &[],
            ),
            cache_misses: registry.counter(
                "momsynth_eval_cache_misses_total",
                "Cost lookups that missed the evaluation cache",
                &[],
            ),
            cache_evictions: registry.counter(
                "momsynth_eval_cache_evictions_total",
                "Entries evicted from the evaluation cache",
                &[],
            ),
            dvs_iterations: registry.counter(
                "momsynth_dvs_iterations_total",
                "PV-DVS inner-loop iterations spent",
                &[],
            ),
            evals_per_sec: registry.gauge(
                "momsynth_evals_per_sec",
                "Live evaluation throughput of the most recent generation",
                &[],
            ),
            phase_seconds,
            state: Mutex::new(DeltaState::default()),
        }
    }
}

impl Sink for MetricsSink {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn record(&self, event: &Event) {
        match event {
            Event::RunStart(start) => {
                self.runs_started.inc();
                let mut state = self.state.lock().expect("metrics sink poisoned");
                state.last = None;
                state.resumed = start.resumed_generation.is_some();
            }
            Event::Generation(g) => {
                self.evals_per_sec.set(g.evals_per_sec as i64);
                let mut state = self.state.lock().expect("metrics sink poisoned");
                if let Some(last) = &state.last {
                    self.generations.inc();
                    let d = |cur: u64, prev: u64| cur.saturating_sub(prev);
                    self.evaluations.add(d(g.counters.evaluated, last.evaluated));
                    self.rejected.add(d(g.counters.rejected, last.rejected));
                    self.cache_hits.add(d(g.counters.cache_hits, last.cache_hits));
                    self.cache_misses.add(d(g.counters.cache_misses, last.cache_misses));
                    self.cache_evictions
                        .add(d(g.counters.cache_evictions, last.cache_evictions));
                    self.dvs_iterations
                        .add(d(g.counters.dvs_iterations, last.dvs_iterations));
                } else if !state.resumed {
                    // First generation of a fresh run: everything so far
                    // is new. A resumed run's first event only sets the
                    // baseline — its counters were counted before the
                    // interruption.
                    self.generations.inc();
                    self.evaluations.add(g.counters.evaluated);
                    self.rejected.add(g.counters.rejected);
                    self.cache_hits.add(g.counters.cache_hits);
                    self.cache_misses.add(g.counters.cache_misses);
                    self.cache_evictions.add(g.counters.cache_evictions);
                    self.dvs_iterations.add(g.counters.dvs_iterations);
                }
                state.last = Some(g.counters.clone());
            }
            Event::Phase(timing) => {
                if let Some((_, h)) =
                    self.phase_seconds.iter().find(|(phase, _)| *phase == timing.phase)
                {
                    h.observe(timing.nanos as f64 / 1e9);
                }
            }
            Event::Summary(summary) => {
                self.runs_finished.inc();
                self.run_duration.observe(summary.wall_time_s);
                self.evals_per_sec.set(0);
            }
            Event::Warning(_) | Event::Span(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use momsynth_telemetry::{GenerationEvent, RunStart};

    use super::*;

    fn start(resumed: Option<u64>) -> Event {
        Event::RunStart(RunStart {
            system: "s".into(),
            seed: 1,
            probability_aware: true,
            dvs: false,
            modes: 2,
            genome_len: 8,
            resumed_generation: resumed,
            power_lower_bound_mw: 0.0,
            pruned_domain_ratio: 0.0,
            trace_id: String::new(),
        })
    }

    fn generation(generation: u64, hits: u64, misses: u64, evicted: u64) -> Event {
        let counters = Counters {
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: evicted,
            evaluated: misses,
            ..Counters::default()
        };
        Event::Generation(GenerationEvent {
            generation,
            evaluations: misses,
            best: 1.0,
            mean: 1.0,
            worst: 1.0,
            stagnation: 0,
            evals_per_sec: 100.0,
            cache_hit_rate: 0.0,
            counters,
        })
    }

    #[test]
    fn deltas_accumulate_from_cumulative_counters() {
        let registry = Registry::new();
        let sink = MetricsSink::new(&registry);
        sink.record(&start(None));
        sink.record(&generation(0, 2, 10, 1));
        sink.record(&generation(1, 5, 14, 3));
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("momsynth_eval_cache_hits_total", &[]), Some(5));
        assert_eq!(snap.counter_value("momsynth_eval_cache_misses_total", &[]), Some(14));
        assert_eq!(snap.counter_value("momsynth_eval_cache_evictions_total", &[]), Some(3));
        assert_eq!(snap.counter_value("momsynth_generations_total", &[]), Some(2));
        assert_eq!(snap.gauge_value("momsynth_evals_per_sec", &[]), Some(100));
    }

    #[test]
    fn resumed_runs_do_not_recount_their_baseline() {
        let registry = Registry::new();
        let sink = MetricsSink::new(&registry);
        sink.record(&start(Some(3)));
        // The resumed baseline carries everything counted before the
        // crash; only growth beyond it may be added.
        sink.record(&generation(4, 100, 200, 50));
        sink.record(&generation(5, 101, 205, 50));
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("momsynth_eval_cache_hits_total", &[]), Some(1));
        assert_eq!(snap.counter_value("momsynth_eval_cache_misses_total", &[]), Some(5));
        assert_eq!(snap.counter_value("momsynth_eval_cache_evictions_total", &[]), Some(0));
    }

    #[test]
    fn phase_and_summary_events_feed_histograms() {
        let registry = Registry::new();
        let sink = MetricsSink::new(&registry);
        sink.record(&Event::Phase(momsynth_telemetry::PhaseTiming {
            phase: Phase::ListScheduling,
            nanos: 2_000_000,
            spans: 10,
            depth: 1,
        }));
        let snap = registry.snapshot();
        let sample = snap
            .histogram_sample("momsynth_run_phase_seconds", &[("phase", "list_scheduling")])
            .unwrap();
        assert_eq!(sample.count, 1);
        assert!((sample.sum - 0.002).abs() < 1e-12);
        // All five phase families are pre-registered even before a run.
        for phase in Phase::ALL {
            assert!(snap
                .histogram_sample("momsynth_run_phase_seconds", &[("phase", phase.name())])
                .is_some());
        }
    }

    #[test]
    fn disabled_registry_disables_the_sink() {
        let registry = Registry::disabled();
        let sink = MetricsSink::new(&registry);
        assert!(!Sink::enabled(&sink));
    }
}
