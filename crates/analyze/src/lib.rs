//! # momsynth-analyze — pre-synthesis static feasibility analysis
//!
//! Statically analyzes a [`System`] *before* synthesis and derives
//! provable bounds from the model alone:
//!
//! - **Timing.** Per mode, the critical-path lower bound (every task at
//!   its fastest nominal implementation, communication free) against the
//!   period, and per-task finish-time floors against effective deadlines
//!   `min(θ, φ)`. DVS only *stretches* execution times relative to the
//!   nominal fastest implementation, so these floors hold for scaled
//!   runs too.
//! - **Area.** Per hardware PE, the core area forced onto it by task
//!   types implementable nowhere else (constraint (a) of the paper);
//!   for reconfigurable PEs the per-mode maximum, since cores can be
//!   swapped between modes.
//! - **Power.** A probability-weighted Eq. 1 lower bound `p̄_LB` built
//!   from three per-mode floors: a *load floor* pricing each task at its
//!   cheapest capable PE at nominal voltage; a *DVS floor* that grants
//!   each candidate its deepest provably reachable supply drop — limited
//!   by the rail's lowest legal level and by the slack window the task's
//!   path floors leave it (the PV-DVS scaler never stretches past
//!   deadlines or the period); and a *communication floor* pricing
//!   transfers whose endpoint candidate sets are disjoint (remote under
//!   every mapping) at the cheapest routable link. Static power is
//!   excluded, so `p̄ ≥ p̄_LB` for every mapping the evaluator can
//!   produce.
//! - **Transitions.** The `t_T^max` floor from FPGA reconfiguration
//!   times, and OMSM reachability.
//! - **Genome domains.** The per-`(mode, task)` capable-PE sets, with
//!   `(task, PE)` pairs removed when mapping the task there provably
//!   violates a deadline or the period, and whole PEs removed from a
//!   mode when another PE *dominates* them — is provably no worse along
//!   every fitness axis for every task of the mode (see `dominance.rs`).
//!   The synthesiser feeds these into genome construction so mutation
//!   and crossover never generate a gene outside its statically proven
//!   domain, and `momsynth prove` branches only over the reduced space.
//!
//! Findings are graded [`Severity::Error`] (a *proof* of infeasibility),
//! [`Severity::Warning`] or [`Severity::Info`]. Like `momsynth-check`,
//! this crate sits *below* the synthesis core and shares no code with
//! the constructive inner loop: it re-derives everything from
//! `momsynth-model` and the `momsynth-dvs` voltage mathematics, so its
//! verdicts are independent evidence, not an echo of the optimiser.
//!
//! # Examples
//!
//! ```
//! use momsynth_analyze::analyze_system;
//! # use momsynth_model::{ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind,
//! #     System, TaskGraphBuilder, TechLibraryBuilder};
//! # use momsynth_model::units::{Seconds, Watts};
//! # let mut tech = TechLibraryBuilder::new();
//! # let t = tech.add_type("T");
//! # let mut arch = ArchitectureBuilder::new();
//! # let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
//! # tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::new(0.1)));
//! # let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
//! # g.add_task("t", t);
//! # let mut omsm = OmsmBuilder::new();
//! # omsm.add_mode("m", 1.0, g.build().unwrap());
//! # let system = System::new("s", omsm.build().unwrap(), arch.build().unwrap(),
//! #     tech.build()).unwrap();
//! let analysis = analyze_system(&system);
//! assert!(!analysis.has_errors(), "{analysis}");
//! assert!(analysis.power_lower_bound().value() > 0.0);
//! ```

#![warn(missing_docs)]

mod dominance;
mod report;

pub use report::{Analysis, AreaBound, DomainReduction, Finding, ModeBounds, Severity};

use momsynth_dvs::VoltageModel;
use momsynth_model::ids::{GlobalTaskId, PeId, TaskTypeId};
use momsynth_model::omsm::PROBABILITY_SUM_TOLERANCE;
use momsynth_model::units::{Cells, Joules, Seconds, Watts};
use momsynth_model::{Pe, System, TaskGraph};

/// `true` when `value` exceeds `bound` by more than float noise. Used
/// for every infeasibility verdict so an *exactly* tight specification —
/// which the constructive flow can still schedule — is never rejected.
pub(crate) fn exceeds(value: Seconds, bound: Seconds) -> bool {
    value.value() > bound.value() + (1e-9 * bound.value().abs()).max(1e-12)
}

/// The provable multiplicative floor on the energy of a task with
/// nominal execution time `exec` on `pe`, given that no evaluated
/// schedule ever stretches the task beyond `allowed` seconds (the PV-DVS
/// scaler never violates deadlines or the period, and leaves already-late
/// schedules at nominal timing).
///
/// Two floors compose: the supply cannot drop below the lowest legal
/// level `v_min`, and it cannot drop below the continuous voltage whose
/// stretch factor fills the `allowed / exec` window (the convex Eq. 1
/// energy/stretch trade-off of the alpha-power model). Without DVS the
/// nominal energy stands.
fn dvs_energy_floor(pe: &Pe, exec: Seconds, allowed: Seconds) -> f64 {
    let Some(cap) = pe.dvs() else { return 1.0 };
    let (v_max, v_t) = (cap.v_max(), cap.v_threshold());
    if !v_max.value().is_finite() || !v_t.value().is_finite() || v_max <= v_t {
        return 1.0; // Degenerate capability: fall back to the nominal energy.
    }
    let model = VoltageModel::from_capability(cap);
    let v_min = cap.v_min();
    let vmin_floor = model.energy_factor(v_min).clamp(0.0, 1.0);
    let k_vmin = if v_min.value() > v_t.value() && v_min.value().is_finite() {
        model.max_stretch(v_min)
    } else {
        f64::INFINITY
    };
    let k_allowed = if exec.value() > 0.0 && allowed.value().is_finite() {
        (allowed.value() / exec.value()).max(1.0)
    } else {
        f64::INFINITY
    };
    let k = k_vmin.min(k_allowed);
    if !k.is_finite() {
        return vmin_floor;
    }
    model.energy_factor_for_stretch(k).clamp(vmin_floor, 1.0)
}

/// Per-task path floors of one mode: earliest-finish and downstream-tail
/// lower bounds with every task at its fastest nominal implementation
/// and free communication.
struct PathFloors {
    /// Earliest possible start of each task (longest predecessor chain).
    start_lb: Vec<Seconds>,
    /// Earliest possible finish of each task (`start_lb + fastest exec`).
    finish_lb: Vec<Seconds>,
    /// Longest successor chain *after* each task finishes.
    tail_lb: Vec<Seconds>,
}

/// `comm_delay` holds, per communication, a provable lower bound on the
/// edge's latency (non-zero only for provably remote transfers), so the
/// path floors price unavoidable link traffic on the critical path.
fn path_floors(graph: &TaskGraph, t_min: &[Seconds], comm_delay: &[Seconds]) -> PathFloors {
    let n = graph.task_count();
    let mut start_lb = vec![Seconds::ZERO; n];
    let mut finish_lb = vec![Seconds::ZERO; n];
    for &task in graph.topological_order() {
        let start = graph
            .predecessors(task)
            .iter()
            .map(|&(c, pred)| finish_lb[pred.index()] + comm_delay[c.index()])
            .fold(Seconds::ZERO, Seconds::max);
        start_lb[task.index()] = start;
        finish_lb[task.index()] = start + t_min[task.index()];
    }
    let mut tail_lb = vec![Seconds::ZERO; n];
    for &task in graph.topological_order().iter().rev() {
        tail_lb[task.index()] = graph
            .successors(task)
            .iter()
            .map(|&(c, succ)| comm_delay[c.index()] + t_min[succ.index()] + tail_lb[succ.index()])
            .fold(Seconds::ZERO, Seconds::max);
    }
    PathFloors { start_lb, finish_lb, tail_lb }
}

/// Statically analyzes `system` and returns the full [`Analysis`]
/// report: findings, per-mode and per-PE bounds, the Eq. 1 power lower
/// bound `p̄_LB` and the pruned per-locus capable-PE sets.
pub fn analyze_system(system: &System) -> Analysis {
    let omsm = system.omsm();
    let arch = system.arch();
    let tech = system.tech();
    let mut findings = Vec::new();
    let mut mode_bounds = Vec::new();
    let mut capable_pes: Vec<Vec<PeId>> = Vec::with_capacity(omsm.total_task_count());
    let mut total_candidates = 0usize;
    let mut pruned_candidates = 0usize;
    let mut dominated_candidates = 0usize;
    let mut power_lower_bound = Watts::ZERO;

    // OMSM reachability (meaningful for multi-mode systems only).
    if omsm.mode_count() > 1 {
        for mode in omsm.mode_ids() {
            if !omsm.transitions().any(|(_, t)| t.to() == mode) {
                findings.push(Finding::ModeUnreachable { mode });
            }
            if omsm.transitions_from(mode).next().is_none() {
                findings.push(Finding::ModeTrapping { mode });
            }
        }
    }

    // Probability mass: the builder enforces Σ Ψ_O ≈ 1, but deserialised
    // specifications arrive unchecked.
    let sum: f64 = omsm.modes().map(|(_, m)| m.probability()).sum();
    if (sum - 1.0).abs() > PROBABILITY_SUM_TOLERANCE {
        findings.push(Finding::ProbabilityMassDrift { sum });
    }

    for (mode, m) in omsm.modes() {
        let graph = m.graph();
        let period = graph.period();

        // Candidate lists and fastest nominal execution times. A task
        // without candidates (possible only for deserialised systems) is
        // an error; its zero weight keeps the path floors conservative.
        let candidates: Vec<Vec<PeId>> = graph
            .task_ids()
            .map(|t| system.candidate_pes(GlobalTaskId::new(mode, t)))
            .collect();
        let t_min: Vec<Seconds> = graph
            .task_ids()
            .map(|t| tech.fastest_exec_time(graph.task(t).task_type()).unwrap_or(Seconds::ZERO))
            .collect();
        for (task, c) in graph.task_ids().zip(&candidates) {
            if c.is_empty() {
                findings.push(Finding::TaskWithNoCapablePe { mode, task });
            }
        }

        // Communication floors. When the candidate sets of a
        // communication's endpoints are disjoint the transfer is remote
        // under *every* mapping: the cheapest routable link prices an
        // unavoidable energy term and the fastest routable link an
        // unavoidable latency on the path floors.
        let mut comm_floor = Watts::ZERO;
        let mut comm_delay = vec![Seconds::ZERO; graph.comm_count()];
        for (cid, comm) in graph.comms() {
            let src = &candidates[comm.src().index()];
            let dst = &candidates[comm.dst().index()];
            if src.is_empty() || dst.is_empty() || src.iter().any(|pe| dst.contains(pe)) {
                continue; // The transfer may be PE-local (free) under some mapping.
            }
            let mut min_time: Option<Seconds> = None;
            let mut min_energy: Option<Joules> = None;
            for &pa in src {
                for &pb in dst {
                    for cl_id in arch.cls_between(pa, pb) {
                        let cl = arch.cl(cl_id);
                        let time = cl.transfer_time(comm.data_units());
                        let energy = cl.transfer_power() * time;
                        min_time = Some(min_time.map_or(time, |t| t.min(time)));
                        min_energy = Some(min_energy.map_or(energy, |e| {
                            if energy.value() < e.value() { energy } else { e }
                        }));
                    }
                }
            }
            // If no link can route any capable pair, every mapping is
            // unroutable — the scheduler will reject the system, so no
            // floor is claimed here.
            if let Some(time) = min_time {
                comm_delay[cid.index()] = time;
            }
            if let Some(energy) = min_energy {
                if period > Seconds::ZERO {
                    comm_floor += energy / period;
                }
            }
        }

        let floors = path_floors(graph, &t_min, &comm_delay);
        let critical_path_lb =
            floors.finish_lb.iter().copied().fold(Seconds::ZERO, Seconds::max);
        if exceeds(critical_path_lb, period) {
            findings.push(Finding::PeriodBelowCriticalPathFloor {
                mode,
                floor: critical_path_lb,
                period,
            });
        }

        // Mode-level dominance: PEs shadowed by a no-worse witness leave
        // every genome domain of this mode (soundness: `dominance`).
        let shadowings = dominance::mode_shadowings(system, mode, &candidates);

        let mut load_floor = Watts::ZERO;
        let mut dvs_floor = Watts::ZERO;
        for task in graph.task_ids() {
            let i = task.index();
            let ty = graph.task(task).task_type();
            let effective = graph.effective_deadline(task);

            // A task whose own deadline (strictly tighter than the
            // period) sits below its finish floor is a proof of
            // infeasibility in itself; period-level floors are reported
            // once per mode above.
            if graph.task(task).deadline().is_some()
                && effective < period
                && exceeds(floors.finish_lb[i], effective)
            {
                findings.push(Finding::DeadlineBelowCriticalPathFloor {
                    mode,
                    task,
                    floor: floors.finish_lb[i],
                    deadline: effective,
                });
            }

            // Prune `(task, PE)` pairs that provably violate the task's
            // effective deadline or — through the cheapest possible
            // downstream chain — the period. If *every* candidate is
            // dead the mode already carries an Error finding (the floor
            // with the fastest implementation is itself too late), so
            // the full list is kept and synthesis fails fast instead.
            let full = &candidates[i];
            let mut kept: Vec<PeId> = Vec::with_capacity(full.len());
            let mut pruned: Vec<Finding> = Vec::new();
            for &pe in full {
                let exec = tech
                    .impl_of(ty, pe)
                    .map_or(Seconds::ZERO, momsynth_model::Implementation::exec_time);
                let finish = floors.start_lb[i] + exec;
                if exceeds(finish, effective) {
                    pruned.push(Finding::GenePruned {
                        mode,
                        task,
                        pe,
                        floor: finish,
                        deadline: effective,
                    });
                } else if exceeds(finish + floors.tail_lb[i], period) {
                    pruned.push(Finding::GenePruned {
                        mode,
                        task,
                        pe,
                        floor: finish + floors.tail_lb[i],
                        deadline: period,
                    });
                } else {
                    kept.push(pe);
                }
            }
            total_candidates += full.len();
            if kept.is_empty() {
                capable_pes.push(full.clone());
            } else {
                pruned_candidates += pruned.len();
                findings.append(&mut pruned);
                // A shadowing's witness is never deadline-pruned (it only
                // fires in slack-safe modes, where no candidate is late),
                // so removing dominated PEs cannot empty the domain.
                for s in &shadowings {
                    if let Some(at) = kept.iter().position(|&pe| pe == s.dominated) {
                        kept.remove(at);
                        dominated_candidates += 1;
                        findings.push(Finding::GeneDominated {
                            mode,
                            task,
                            pe: s.dominated,
                            by: s.by,
                        });
                    }
                }
                capable_pes.push(kept);
            }

            // Cheapest capable implementation, over the *full* candidate
            // list: the energy floor must hold for any mapping, not only
            // unpruned ones. `load_floor` prices nominal voltage;
            // `dvs_floor` additionally grants each candidate its largest
            // provably reachable supply drop — limited both by the rail's
            // lowest level and by the slack window `allowed` that any
            // evaluated schedule leaves the task (the PV-DVS scaler never
            // stretches past deadlines or the period).
            let allowed = (effective - floors.start_lb[i])
                .min(period - floors.start_lb[i] - floors.tail_lb[i]);
            let mut nominal_min: Option<Joules> = None;
            let mut scaled_min: Option<Joules> = None;
            for &pe in full {
                let Some(imp) = tech.impl_of(ty, pe) else { continue };
                let nominal = imp.energy();
                let scaled = nominal * dvs_energy_floor(arch.pe(pe), imp.exec_time(), allowed);
                let keep_min = |slot: &mut Option<Joules>, candidate: Joules| {
                    let better =
                        slot.is_none_or(|best| candidate.value() < best.value());
                    if better {
                        *slot = Some(candidate);
                    }
                };
                keep_min(&mut nominal_min, nominal);
                keep_min(&mut scaled_min, scaled);
            }
            if period > Seconds::ZERO {
                if let Some(energy) = nominal_min {
                    load_floor += energy / period;
                }
                if let Some(energy) = scaled_min {
                    dvs_floor += energy / period;
                }
            }
        }

        let power_lb = dvs_floor + comm_floor;
        power_lower_bound += power_lb * m.probability();
        mode_bounds.push(ModeBounds {
            mode,
            name: m.name().to_owned(),
            critical_path_lb,
            period,
            power_lb,
            load_floor,
            dvs_floor,
            comm_floor,
        });
    }

    // Area floors: a used task type whose only capable PE is hardware PE
    // `h` forces its core onto `h`. Cores are shared per type; on a
    // reconfigurable PE they can be swapped between modes, so the floor
    // is the per-mode maximum, otherwise the union over all modes.
    let mut area_bounds = Vec::new();
    for pe in arch.hardware_pes() {
        let info = arch.pe(pe);
        let forced = |ty: TaskTypeId| {
            let mut caps = tech.pes_supporting(ty);
            caps.next() == Some(pe) && caps.next().is_none()
        };
        let mode_floor = |graph: &TaskGraph| -> Cells {
            graph
                .used_types()
                .into_iter()
                .filter(|&ty| forced(ty))
                .filter_map(|ty| tech.impl_of(ty, pe))
                .map(momsynth_model::Implementation::area)
                .sum()
        };
        let floor = if info.kind().is_reconfigurable() {
            omsm.modes().map(|(_, m)| mode_floor(m.graph())).max().unwrap_or(Cells::ZERO)
        } else {
            let mut types: Vec<TaskTypeId> = omsm
                .modes()
                .flat_map(|(_, m)| m.graph().used_types())
                .filter(|&ty| forced(ty))
                .collect();
            types.sort_unstable();
            types.dedup();
            types
                .into_iter()
                .filter_map(|ty| tech.impl_of(ty, pe))
                .map(momsynth_model::Implementation::area)
                .sum()
        };
        let capacity = info.area().unwrap_or(Cells::ZERO);
        if floor > capacity {
            findings.push(Finding::HardwareAreaFloorExceedsCapacity { pe, floor, capacity });
        }
        area_bounds.push(AreaBound { pe, name: info.name().to_owned(), floor, capacity });
    }

    // Transition-time floors: loading even the smallest loadable core of
    // a reconfigurable PE takes `reconfig_time_per_cell · min area`; a
    // `t_T^max` below that dooms any mapping that reconfigures the PE at
    // this transition (a warning — mappings may simply avoid it).
    for pe in arch.hardware_pes() {
        let info = arch.pe(pe);
        if !info.kind().is_reconfigurable() || info.reconfig_time_per_cell() <= Seconds::ZERO {
            continue;
        }
        let floor = tech
            .type_ids()
            .filter_map(|ty| tech.impl_of(ty, pe))
            .filter(|imp| imp.area() > Cells::ZERO)
            .map(|imp| info.reconfig_time_per_cell() * imp.area().value() as f64)
            .min_by(|a, b| a.value().total_cmp(&b.value()));
        let Some(floor) = floor else { continue };
        for (transition, t) in omsm.transitions() {
            if t.max_time() < floor {
                findings.push(Finding::TransitionTimeBelowReconfigFloor { transition, pe, floor });
            }
        }
    }

    let domain_reduction = DomainReduction {
        total_candidates,
        pruned_by_deadline: pruned_candidates,
        pruned_by_dominance: dominated_candidates,
    };
    Analysis {
        findings,
        mode_bounds,
        area_bounds,
        power_lower_bound,
        capable_pes,
        pruned_domain_ratio: domain_reduction.ratio(),
        domain_reduction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_gen::automotive::automotive_ecu;
    use momsynth_gen::smartphone::smartphone;
    use momsynth_model::ids::TaskId;
    use momsynth_model::units::Volts;
    use momsynth_model::{
        ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind,
        TaskGraphBuilder, TechLibraryBuilder,
    };

    /// One CPU + one ASIC on a bus; type A runs on both (0.9 s / 0.01 s),
    /// type B on the CPU only. One mode, period 1 s, task `a` then `b`.
    fn cpu_asic_system(deadline_a: Option<Seconds>) -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let asic = arch.add_pe(Pe::hardware(
            "asic",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, asic],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();
        tech.set_impl(ta, cpu, Implementation::software(Seconds::new(0.9), Watts::new(0.5)));
        tech.set_impl(
            ta,
            asic,
            Implementation::hardware(Seconds::new(0.01), Watts::new(0.005), Cells::new(240)),
        );
        tech.set_impl(tb, cpu, Implementation::software(Seconds::new(0.05), Watts::new(0.7)));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        let a = match deadline_a {
            Some(d) => g.add_task_with_deadline("a", ta, d),
            None => g.add_task("a", ta),
        };
        let b = g.add_task("b", tb);
        g.add_comm(a, b, 8.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("cpu-asic", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap()
    }

    fn codes(analysis: &Analysis) -> Vec<&'static str> {
        analysis.findings().iter().map(Finding::code).collect()
    }

    /// Descends a serialized [`System`] tree by field names / array
    /// indices, for building broken specifications that `System::new`
    /// would reject but deserialization admits.
    fn path_mut<'a>(
        mut v: &'a mut serde_json::Value,
        path: &[&str],
    ) -> &'a mut serde_json::Value {
        for seg in path {
            v = match v {
                serde_json::Value::Array(items) => &mut items[seg.parse::<usize>().unwrap()],
                serde_json::Value::Object(fields) => {
                    &mut fields.iter_mut().find(|(k, _)| k == seg).unwrap().1
                }
                other => panic!("cannot descend into {} at `{seg}`", other.kind()),
            };
        }
        v
    }

    /// Two GPPs on one bus, no DVS. `spare` is capable of both types but
    /// strictly more energetic and no cheaper in static power, so in the
    /// (slack-safe) single mode it is shadowed by `main`.
    fn redundant_gpp_system(period: f64) -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let main = arch.add_pe(Pe::software("main", PeKind::Gpp, Watts::from_milli(0.1)));
        let spare = arch.add_pe(Pe::software("spare", PeKind::Gpp, Watts::from_milli(0.2)));
        arch.add_cl(Cl::bus(
            "bus",
            vec![main, spare],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();
        tech.set_impl(ta, main, Implementation::software(Seconds::new(0.1), Watts::new(0.2)));
        tech.set_impl(ta, spare, Implementation::software(Seconds::new(0.1), Watts::new(0.3)));
        tech.set_impl(tb, main, Implementation::software(Seconds::new(0.05), Watts::new(0.1)));
        tech.set_impl(tb, spare, Implementation::software(Seconds::new(0.05), Watts::new(0.2)));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(period));
        let a = g.add_task("a", ta);
        let b = g.add_task("b", tb);
        g.add_comm(a, b, 4.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("redundant-gpp", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap()
    }

    #[test]
    fn dominated_gpp_is_removed_from_every_locus() {
        let system = redundant_gpp_system(1.0);
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        // `spare` leaves both loci; `main` survives.
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(0)]);
        assert_eq!(analysis.capable_pes()[1], vec![PeId::new(0)]);
        assert!((analysis.pruned_domain_ratio() - 0.5).abs() < 1e-12, "{analysis}");
        let reduction = analysis.domain_reduction();
        assert_eq!(reduction.total_candidates, 4);
        assert_eq!(reduction.pruned_by_deadline, 0);
        assert_eq!(reduction.pruned_by_dominance, 2);
        assert_eq!(
            codes(&analysis).iter().filter(|&&c| c == "gene-dominated").count(),
            2
        );
    }

    #[test]
    fn dominance_requires_slack_safety() {
        // Worst case serialised: 0.1 + 0.05 + a 4 µs transfer, so
        // W ≈ 0.150004 s. A period of exactly 0.15 s admits the
        // critical path (0.15 s, communication-free floor) but sits
        // below W: not every assignment is provably on time, so
        // dominance must stand down.
        let system = redundant_gpp_system(0.15);
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        assert_eq!(analysis.domain_reduction().pruned_by_dominance, 0, "{analysis}");
        assert_eq!(analysis.capable_pes()[0].len(), 2);
    }

    #[test]
    fn dominance_stands_down_under_dvs() {
        // Same architecture, but the spare gains a DVS rail: voltage
        // scaling redistributes slack globally, so shadowing is unsound
        // and must not fire.
        let system = redundant_gpp_system(1.0);
        let mut v = serde_json::to_value(&system);
        *path_mut(&mut v, &["arch", "pes", "1", "dvs"]) = serde_json::json!({
            "v_max": 3.3, "v_threshold": 0.8, "levels": [1.65, 3.3],
        });
        let with_dvs: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&with_dvs);
        assert_eq!(analysis.domain_reduction().pruned_by_dominance, 0, "{analysis}");
        assert_eq!(analysis.capable_pes()[0].len(), 2);
    }

    #[test]
    fn anchored_witness_justifies_higher_static_power() {
        // Make the *cheap-energy* PE statically hungrier, so the plain
        // static test fails — but anchor it with a task only it can run,
        // and the shadowing goes through again.
        let system = redundant_gpp_system(1.0);
        let mut v = serde_json::to_value(&system);
        *path_mut(&mut v, &["arch", "pes", "0", "static_power"]) = serde_json::json!(0.5e-3);
        let expensive_main: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&expensive_main);
        assert_eq!(analysis.domain_reduction().pruned_by_dominance, 0, "{analysis}");

        // Strip type B's spare implementation: task `b` anchors `main`.
        let mut v = serde_json::to_value(&system);
        *path_mut(&mut v, &["arch", "pes", "0", "static_power"]) = serde_json::json!(0.5e-3);
        let impls = path_mut(&mut v, &["tech", "impls", "1"]);
        let serde_json::Value::Array(rows) = impls else { panic!("impls not an array") };
        rows.retain(|row| row[0] == serde_json::json!(0));
        let anchored: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&anchored);
        assert!(!analysis.has_errors(), "{analysis}");
        assert_eq!(analysis.domain_reduction().pruned_by_dominance, 1, "{analysis}");
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(0)]);
    }

    #[test]
    fn mode_bounds_report_the_floor_breakdown() {
        let system = redundant_gpp_system(1.0);
        let analysis = analyze_system(&system);
        let b = &analysis.mode_bounds()[0];
        // No DVS, no provably-remote comm: load = dvs floor, comm = 0.
        let expected = (0.2 * 0.1 + 0.1 * 0.05) / 1.0;
        assert!((b.load_floor.value() - expected).abs() < 1e-12);
        assert_eq!(b.load_floor, b.dvs_floor);
        assert_eq!(b.comm_floor, Watts::ZERO);
        assert_eq!(b.power_lb, b.dvs_floor);
        let json = analysis.to_json();
        assert!(json["modes"][0]["load_floor_mw"].as_f64().unwrap() > 0.0);
        assert_eq!(json["modes"][0]["comm_floor_mw"], serde_json::json!(0.0));
        assert_eq!(json["domain_reduction"]["pruned_by_dominance"], serde_json::json!(2));
    }

    #[test]
    fn provably_remote_comm_prices_link_floors() {
        // Task `a` only on the CPU, `b` only on the ASIC: the transfer is
        // remote under every mapping, so the bus prices a time floor on
        // the critical path and an energy floor on the mode power.
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let asic = arch.add_pe(Pe::hardware(
            "asic",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, asic],
            Seconds::from_millis(1.0),
            Watts::new(2.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();
        tech.set_impl(ta, cpu, Implementation::software(Seconds::new(0.1), Watts::new(0.5)));
        tech.set_impl(
            tb,
            asic,
            Implementation::hardware(Seconds::new(0.01), Watts::new(0.005), Cells::new(240)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        let a = g.add_task("a", ta);
        let b = g.add_task("b", tb);
        g.add_comm(a, b, 8.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("remote", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        let bounds = &analysis.mode_bounds()[0];
        // Transfer: 8 units × 1 ms = 8 ms on the path, 2 W × 8 ms = 16 mJ.
        assert!((bounds.critical_path_lb.value() - (0.1 + 0.008 + 0.01)).abs() < 1e-12);
        assert!((bounds.comm_floor.value() - 2.0 * 0.008).abs() < 1e-12);
        let exec = 0.5 * 0.1 + 0.005 * 0.01;
        assert!((bounds.power_lb.value() - (exec + 0.016)).abs() < 1e-12);
    }

    #[test]
    fn smartphone_and_automotive_are_clean_of_errors() {
        for system in [smartphone(), automotive_ecu()] {
            let analysis = analyze_system(&system);
            assert!(!analysis.has_errors(), "{}: {analysis}", system.name());
            assert!(analysis.power_lower_bound() > Watts::ZERO);
            assert_eq!(analysis.capable_pes().len(), system.omsm().total_task_count());
            for (locus, pes) in analysis.capable_pes().iter().enumerate() {
                assert!(!pes.is_empty(), "locus {locus} has no capable PE");
            }
            assert_eq!(analysis.mode_bounds().len(), system.omsm().mode_count());
            for b in analysis.mode_bounds() {
                assert!(b.critical_path_lb > Seconds::ZERO);
                assert!(b.critical_path_lb <= b.period, "mode {}", b.name);
            }
        }
    }

    #[test]
    fn capable_pes_follow_genome_locus_order() {
        let system = smartphone();
        let analysis = analyze_system(&system);
        for (locus, id) in system.global_tasks().enumerate() {
            let full = system.candidate_pes(id);
            for pe in &analysis.capable_pes()[locus] {
                assert!(full.contains(pe), "locus {locus}: {pe} not a library candidate");
            }
        }
    }

    #[test]
    fn impossible_deadline_is_a_provable_error() {
        let system = cpu_asic_system(Some(Seconds::new(1e-6)));
        let analysis = analyze_system(&system);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"deadline-below-critical-path"), "{analysis}");
        // All candidates of task `a` are dead, so the full list is kept
        // for the fail-fast path rather than an empty domain.
        assert_eq!(analysis.capable_pes()[0].len(), 2);
    }

    #[test]
    fn exactly_tight_deadline_is_not_rejected() {
        // Deadline exactly equal to the fastest finish floor: feasible.
        let system = cpu_asic_system(Some(Seconds::new(0.01)));
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        // The slow CPU candidate (0.9 s) is provably late and pruned.
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(1)]);
    }

    #[test]
    fn provably_late_candidate_is_pruned_without_error() {
        let system = cpu_asic_system(Some(Seconds::new(0.5)));
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        assert!(codes(&analysis).contains(&"gene-pruned"));
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(1)]);
        // 1 of 3 (task,PE) pairs pruned.
        assert!((analysis.pruned_domain_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(analysis.count(Severity::Info), 1);
    }

    #[test]
    fn unconstrained_system_prunes_nothing() {
        let system = cpu_asic_system(None);
        let analysis = analyze_system(&system);
        assert!(analysis.is_clean(), "{analysis}");
        assert_eq!(analysis.pruned_domain_ratio(), 0.0);
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(0), PeId::new(1)]);
    }

    #[test]
    fn power_lower_bound_prices_cheapest_implementation() {
        let system = cpu_asic_system(None);
        let analysis = analyze_system(&system);
        // Task a: min energy = asic 0.005 W × 0.01 s; task b: cpu only,
        // 0.7 W × 0.05 s. No DVS anywhere, period 1 s, probability 1.
        let expected = (0.005 * 0.01 + 0.7 * 0.05) / 1.0;
        assert!((analysis.power_lower_bound().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn dvs_scales_the_energy_floor() {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(1.65), Volts::new(3.3)],
            )),
        );
        tech.set_impl(ta, cpu, Implementation::software(Seconds::new(0.1), Watts::new(0.4)));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        g.add_task("t", ta);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("dvs", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        // Energy floor: 0.4 W × 0.1 s × (1.65/3.3)² = 0.04 × 0.25.
        assert!((analysis.power_lower_bound().value() - 0.04 * 0.25).abs() < 1e-12);
        assert!(!analysis.has_errors());
    }

    #[test]
    fn mutated_period_below_floor_is_an_error() {
        let system = cpu_asic_system(None);
        let mut v = serde_json::to_value(&system);
        *path_mut(&mut v, &["omsm", "modes", "0", "graph", "period"]) =
            serde_json::json!(1e-6);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"period-below-critical-path"), "{analysis}");
    }

    #[test]
    fn mutated_library_row_yields_no_capable_pe() {
        let system = cpu_asic_system(None);
        let mut v = serde_json::to_value(&system);
        // Erase every implementation of type B (index 1): its task now has
        // no candidate PE. System::new would reject this; deserialisation
        // bypasses it.
        *path_mut(&mut v, &["tech", "impls", "1"]) = serde_json::json!([]);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"no-capable-pe"), "{analysis}");
    }

    #[test]
    fn mutated_probability_mass_drifts() {
        let system = smartphone();
        let mut v = serde_json::to_value(&system);
        *path_mut(&mut v, &["omsm", "modes", "0", "probability"]) = serde_json::json!(0.999);
        let drifted: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&drifted);
        assert!(codes(&analysis).contains(&"probability-mass-drift"), "{analysis}");
        let finding = analysis
            .findings()
            .iter()
            .find(|f| f.code() == "probability-mass-drift")
            .unwrap();
        assert_eq!(finding.severity(), Severity::Warning);
    }

    #[test]
    fn mutated_smartphone_deadline_below_floor_is_an_error() {
        let system = smartphone();
        let mut v = serde_json::to_value(&system);
        // Give the first task of the first mode a deadline no mapping can
        // meet; the builders never see it, the analyzer must.
        *path_mut(&mut v, &["omsm", "modes", "0", "graph", "tasks", "0", "deadline"]) =
            serde_json::json!(1e-9);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"deadline-below-critical-path"), "{analysis}");
        let finding = analysis
            .findings()
            .iter()
            .find(|f| f.code() == "deadline-below-critical-path")
            .unwrap();
        assert_eq!(finding.severity(), Severity::Error);
    }

    #[test]
    fn mutated_automotive_library_row_yields_no_capable_pe() {
        let system = automotive_ecu();
        let mut v = serde_json::to_value(&system);
        // Erase every implementation of the first task's type: that task
        // can no longer be mapped anywhere.
        let ty = system
            .task_type_of(GlobalTaskId::new(
                momsynth_model::ids::ModeId::new(0),
                TaskId::new(0),
            ))
            .index()
            .to_string();
        *path_mut(&mut v, &["tech", "impls", &ty]) = serde_json::json!([]);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"no-capable-pe"), "{analysis}");
        let finding =
            analysis.findings().iter().find(|f| f.code() == "no-capable-pe").unwrap();
        assert_eq!(finding.severity(), Severity::Error);
    }

    #[test]
    fn forced_types_bound_hardware_area() {
        // Type H is implementable only on the ASIC and its core (700)
        // exceeds the capacity (600): a provable area violation.
        let mut tech = TechLibraryBuilder::new();
        let th = tech.add_type("H");
        let mut arch = ArchitectureBuilder::new();
        let asic = arch.add_pe(Pe::hardware(
            "asic",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        tech.set_impl(
            th,
            asic,
            Implementation::hardware(Seconds::new(0.01), Watts::new(0.01), Cells::new(700)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        g.add_task("h", th);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("area", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"area-floor-exceeds-capacity"), "{analysis}");
        assert_eq!(analysis.area_bounds().len(), 1);
        assert_eq!(analysis.area_bounds()[0].floor, Cells::new(700));
    }

    #[test]
    fn reconfigurable_area_floor_is_per_mode_maximum() {
        // Two modes each force one 400-cell type onto a 600-cell FPGA.
        // Statically that would need 800 cells, but the FPGA swaps cores
        // between modes: the floor is max(400, 400), within capacity.
        let mut tech = TechLibraryBuilder::new();
        let t1 = tech.add_type("F1");
        let t2 = tech.add_type("F2");
        let mut arch = ArchitectureBuilder::new();
        let fpga = arch.add_pe(Pe::hardware(
            "fpga",
            PeKind::Fpga,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        for ty in [t1, t2] {
            tech.set_impl(
                ty,
                fpga,
                Implementation::hardware(Seconds::new(0.01), Watts::new(0.01), Cells::new(400)),
            );
        }
        let graph = |name: &str, ty| {
            let mut g = TaskGraphBuilder::new(name, Seconds::new(1.0));
            g.add_task("t", ty);
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("m0", 0.5, graph("m0", t1));
        let m1 = omsm.add_mode("m1", 0.5, graph("m1", t2));
        omsm.add_transition(m0, m1, Seconds::new(0.5)).unwrap();
        omsm.add_transition(m1, m0, Seconds::new(0.5)).unwrap();
        let system =
            System::new("fpga", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        assert_eq!(analysis.area_bounds()[0].floor, Cells::new(400));
    }

    #[test]
    fn tight_transition_time_is_flagged_against_reconfig_floor() {
        // Reconfiguring the FPGA's smallest core takes 400 × 1 ms = 0.4 s,
        // but the transitions allow only 1 ms.
        let mut tech = TechLibraryBuilder::new();
        let tf = tech.add_type("F");
        let mut arch = ArchitectureBuilder::new();
        let fpga = arch.add_pe(
            Pe::hardware("fpga", PeKind::Fpga, Cells::new(600), Watts::from_milli(0.05))
                .with_reconfig_time_per_cell(Seconds::from_millis(1.0)),
        );
        tech.set_impl(
            tf,
            fpga,
            Implementation::hardware(Seconds::new(0.01), Watts::new(0.01), Cells::new(400)),
        );
        let graph = |name: &str| {
            let mut g = TaskGraphBuilder::new(name, Seconds::new(1.0));
            g.add_task("t", tf);
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("m0", 0.5, graph("m0"));
        let m1 = omsm.add_mode("m1", 0.5, graph("m1"));
        omsm.add_transition(m0, m1, Seconds::from_millis(1.0)).unwrap();
        omsm.add_transition(m1, m0, Seconds::from_millis(1.0)).unwrap();
        let system =
            System::new("recfg", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        assert_eq!(
            codes(&analysis)
                .iter()
                .filter(|&&c| c == "transition-below-reconfig-floor")
                .count(),
            2
        );
    }

    #[test]
    fn reachability_warnings_for_disconnected_omsm() {
        let system = cpu_asic_system(None);
        let mut v = serde_json::to_value(&system);
        // Clone the single mode into a second, unconnected one.
        let modes = path_mut(&mut v, &["omsm", "modes"]);
        let serde_json::Value::Array(items) = modes else { panic!("modes is not an array") };
        let mut second = items[0].clone();
        *path_mut(&mut second, &["probability"]) = serde_json::json!(0.0);
        items.push(second);
        let disconnected: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&disconnected);
        assert!(!analysis.has_errors(), "{analysis}");
        // Both modes: unreachable (no incoming) and trapping (no outgoing).
        assert_eq!(codes(&analysis).iter().filter(|&&c| c == "mode-unreachable").count(), 2);
        assert_eq!(codes(&analysis).iter().filter(|&&c| c == "mode-trapping").count(), 2);
    }

    #[test]
    fn severity_order_and_codes_are_stable() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        let f = Finding::TaskWithNoCapablePe { mode: ModeIdAlias::new(0), task: TaskId::new(0) };
        assert_eq!(f.code(), "no-capable-pe");
        assert_eq!(f.severity(), Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_renders_display_and_json() {
        let system = cpu_asic_system(Some(Seconds::new(0.5)));
        let analysis = analyze_system(&system);
        let text = format!("{analysis}");
        assert!(text.contains("p̄_LB"), "{text}");
        assert!(text.contains("gene-pruned"), "{text}");
        let json = analysis.to_json();
        assert_eq!(json["clean"], serde_json::json!(false));
        assert_eq!(json["errors"], serde_json::json!(0));
        assert_eq!(json["infos"], serde_json::json!(1));
        assert!(json["power_lower_bound_mw"].as_f64().unwrap() > 0.0);
        assert_eq!(json["findings"][0]["code"], serde_json::json!("gene-pruned"));
        assert_eq!(json["modes"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn exceeds_uses_relative_epsilon() {
        assert!(!exceeds(Seconds::new(1.0), Seconds::new(1.0)));
        assert!(!exceeds(Seconds::new(1.0 + 1e-13), Seconds::new(1.0)));
        assert!(exceeds(Seconds::new(1.0 + 1e-6), Seconds::new(1.0)));
        assert!(exceeds(Seconds::new(1e-9), Seconds::ZERO));
    }

    use momsynth_model::ids::ModeId as ModeIdAlias;
}
