//! # momsynth-analyze — pre-synthesis static feasibility analysis
//!
//! Statically analyzes a [`System`] *before* synthesis and derives
//! provable bounds from the model alone:
//!
//! - **Timing.** Per mode, the critical-path lower bound (every task at
//!   its fastest nominal implementation, communication free) against the
//!   period, and per-task finish-time floors against effective deadlines
//!   `min(θ, φ)`. DVS only *stretches* execution times relative to the
//!   nominal fastest implementation, so these floors hold for scaled
//!   runs too.
//! - **Area.** Per hardware PE, the core area forced onto it by task
//!   types implementable nowhere else (constraint (a) of the paper);
//!   for reconfigurable PEs the per-mode maximum, since cores can be
//!   swapped between modes.
//! - **Power.** A probability-weighted Eq. 1 lower bound `p̄_LB`: each
//!   task priced at its cheapest capable PE at the lowest legal supply
//!   voltage, communications free, static power excluded. Every term of
//!   Eq. 1 the bound drops is non-negative and every term it keeps is at
//!   its minimum, so `p̄ ≥ p̄_LB` for *any* mapping of the system.
//! - **Transitions.** The `t_T^max` floor from FPGA reconfiguration
//!   times, and OMSM reachability.
//! - **Genome domains.** The per-`(mode, task)` capable-PE sets, with
//!   `(task, PE)` pairs removed when mapping the task there provably
//!   violates a deadline or the period. The synthesiser feeds these into
//!   genome construction so mutation and crossover never generate a gene
//!   outside its statically proven domain.
//!
//! Findings are graded [`Severity::Error`] (a *proof* of infeasibility),
//! [`Severity::Warning`] or [`Severity::Info`]. Like `momsynth-check`,
//! this crate sits *below* the synthesis core and shares no code with
//! the constructive inner loop: it re-derives everything from
//! `momsynth-model` and the `momsynth-dvs` voltage mathematics, so its
//! verdicts are independent evidence, not an echo of the optimiser.
//!
//! # Examples
//!
//! ```
//! use momsynth_analyze::analyze_system;
//! # use momsynth_model::{ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind,
//! #     System, TaskGraphBuilder, TechLibraryBuilder};
//! # use momsynth_model::units::{Seconds, Watts};
//! # let mut tech = TechLibraryBuilder::new();
//! # let t = tech.add_type("T");
//! # let mut arch = ArchitectureBuilder::new();
//! # let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
//! # tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::new(0.1)));
//! # let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
//! # g.add_task("t", t);
//! # let mut omsm = OmsmBuilder::new();
//! # omsm.add_mode("m", 1.0, g.build().unwrap());
//! # let system = System::new("s", omsm.build().unwrap(), arch.build().unwrap(),
//! #     tech.build()).unwrap();
//! let analysis = analyze_system(&system);
//! assert!(!analysis.has_errors(), "{analysis}");
//! assert!(analysis.power_lower_bound().value() > 0.0);
//! ```

#![warn(missing_docs)]

mod report;

pub use report::{Analysis, AreaBound, Finding, ModeBounds, Severity};

use momsynth_dvs::VoltageModel;
use momsynth_model::ids::{GlobalTaskId, PeId, TaskTypeId};
use momsynth_model::omsm::PROBABILITY_SUM_TOLERANCE;
use momsynth_model::units::{Cells, Seconds, Watts};
use momsynth_model::{Pe, System, TaskGraph};

/// `true` when `value` exceeds `bound` by more than float noise. Used
/// for every infeasibility verdict so an *exactly* tight specification —
/// which the constructive flow can still schedule — is never rejected.
fn exceeds(value: Seconds, bound: Seconds) -> bool {
    value.value() > bound.value() + (1e-9 * bound.value().abs()).max(1e-12)
}

/// The provable multiplicative floor on a task's energy on `pe`: with
/// DVS the supply can drop to the lowest legal level `v_min`, scaling
/// energy by `(v_min / v_max)²` (the alpha-power model's energy factor);
/// without DVS the nominal energy stands.
fn dvs_energy_floor(pe: &Pe) -> f64 {
    let Some(cap) = pe.dvs() else { return 1.0 };
    let (v_max, v_t) = (cap.v_max(), cap.v_threshold());
    if !v_max.value().is_finite() || !v_t.value().is_finite() || v_max <= v_t {
        return 1.0; // Degenerate capability: fall back to the nominal energy.
    }
    VoltageModel::from_capability(cap).energy_factor(cap.v_min()).clamp(0.0, 1.0)
}

/// Per-task path floors of one mode: earliest-finish and downstream-tail
/// lower bounds with every task at its fastest nominal implementation
/// and free communication.
struct PathFloors {
    /// Earliest possible start of each task (longest predecessor chain).
    start_lb: Vec<Seconds>,
    /// Earliest possible finish of each task (`start_lb + fastest exec`).
    finish_lb: Vec<Seconds>,
    /// Longest successor chain *after* each task finishes.
    tail_lb: Vec<Seconds>,
}

fn path_floors(graph: &TaskGraph, t_min: &[Seconds]) -> PathFloors {
    let n = graph.task_count();
    let mut start_lb = vec![Seconds::ZERO; n];
    let mut finish_lb = vec![Seconds::ZERO; n];
    for &task in graph.topological_order() {
        let start = graph
            .predecessors(task)
            .iter()
            .map(|&(_, pred)| finish_lb[pred.index()])
            .fold(Seconds::ZERO, Seconds::max);
        start_lb[task.index()] = start;
        finish_lb[task.index()] = start + t_min[task.index()];
    }
    let mut tail_lb = vec![Seconds::ZERO; n];
    for &task in graph.topological_order().iter().rev() {
        tail_lb[task.index()] = graph
            .successors(task)
            .iter()
            .map(|&(_, succ)| t_min[succ.index()] + tail_lb[succ.index()])
            .fold(Seconds::ZERO, Seconds::max);
    }
    PathFloors { start_lb, finish_lb, tail_lb }
}

/// Statically analyzes `system` and returns the full [`Analysis`]
/// report: findings, per-mode and per-PE bounds, the Eq. 1 power lower
/// bound `p̄_LB` and the pruned per-locus capable-PE sets.
pub fn analyze_system(system: &System) -> Analysis {
    let omsm = system.omsm();
    let arch = system.arch();
    let tech = system.tech();
    let mut findings = Vec::new();
    let mut mode_bounds = Vec::new();
    let mut capable_pes: Vec<Vec<PeId>> = Vec::with_capacity(omsm.total_task_count());
    let mut total_candidates = 0usize;
    let mut pruned_candidates = 0usize;
    let mut power_lower_bound = Watts::ZERO;

    // OMSM reachability (meaningful for multi-mode systems only).
    if omsm.mode_count() > 1 {
        for mode in omsm.mode_ids() {
            if !omsm.transitions().any(|(_, t)| t.to() == mode) {
                findings.push(Finding::ModeUnreachable { mode });
            }
            if omsm.transitions_from(mode).next().is_none() {
                findings.push(Finding::ModeTrapping { mode });
            }
        }
    }

    // Probability mass: the builder enforces Σ Ψ_O ≈ 1, but deserialised
    // specifications arrive unchecked.
    let sum: f64 = omsm.modes().map(|(_, m)| m.probability()).sum();
    if (sum - 1.0).abs() > PROBABILITY_SUM_TOLERANCE {
        findings.push(Finding::ProbabilityMassDrift { sum });
    }

    for (mode, m) in omsm.modes() {
        let graph = m.graph();
        let period = graph.period();

        // Candidate lists and fastest nominal execution times. A task
        // without candidates (possible only for deserialised systems) is
        // an error; its zero weight keeps the path floors conservative.
        let candidates: Vec<Vec<PeId>> = graph
            .task_ids()
            .map(|t| system.candidate_pes(GlobalTaskId::new(mode, t)))
            .collect();
        let t_min: Vec<Seconds> = graph
            .task_ids()
            .map(|t| tech.fastest_exec_time(graph.task(t).task_type()).unwrap_or(Seconds::ZERO))
            .collect();
        for (task, c) in graph.task_ids().zip(&candidates) {
            if c.is_empty() {
                findings.push(Finding::TaskWithNoCapablePe { mode, task });
            }
        }

        let floors = path_floors(graph, &t_min);
        let critical_path_lb =
            floors.finish_lb.iter().copied().fold(Seconds::ZERO, Seconds::max);
        if exceeds(critical_path_lb, period) {
            findings.push(Finding::PeriodBelowCriticalPathFloor {
                mode,
                floor: critical_path_lb,
                period,
            });
        }

        let mut power_lb = Watts::ZERO;
        for task in graph.task_ids() {
            let i = task.index();
            let ty = graph.task(task).task_type();
            let effective = graph.effective_deadline(task);

            // A task whose own deadline (strictly tighter than the
            // period) sits below its finish floor is a proof of
            // infeasibility in itself; period-level floors are reported
            // once per mode above.
            if graph.task(task).deadline().is_some()
                && effective < period
                && exceeds(floors.finish_lb[i], effective)
            {
                findings.push(Finding::DeadlineBelowCriticalPathFloor {
                    mode,
                    task,
                    floor: floors.finish_lb[i],
                    deadline: effective,
                });
            }

            // Prune `(task, PE)` pairs that provably violate the task's
            // effective deadline or — through the cheapest possible
            // downstream chain — the period. If *every* candidate is
            // dead the mode already carries an Error finding (the floor
            // with the fastest implementation is itself too late), so
            // the full list is kept and synthesis fails fast instead.
            let full = &candidates[i];
            let mut kept: Vec<PeId> = Vec::with_capacity(full.len());
            let mut pruned: Vec<Finding> = Vec::new();
            for &pe in full {
                let exec = tech
                    .impl_of(ty, pe)
                    .map_or(Seconds::ZERO, momsynth_model::Implementation::exec_time);
                let finish = floors.start_lb[i] + exec;
                if exceeds(finish, effective) {
                    pruned.push(Finding::GenePruned {
                        mode,
                        task,
                        pe,
                        floor: finish,
                        deadline: effective,
                    });
                } else if exceeds(finish + floors.tail_lb[i], period) {
                    pruned.push(Finding::GenePruned {
                        mode,
                        task,
                        pe,
                        floor: finish + floors.tail_lb[i],
                        deadline: period,
                    });
                } else {
                    kept.push(pe);
                }
            }
            total_candidates += full.len();
            if kept.is_empty() {
                capable_pes.push(full.clone());
            } else {
                pruned_candidates += pruned.len();
                findings.append(&mut pruned);
                capable_pes.push(kept);
            }

            // Cheapest capable implementation at the lowest legal
            // voltage, over the *full* candidate list: the energy floor
            // must hold for any mapping, not only unpruned ones.
            let energy_floor = full
                .iter()
                .filter_map(|&pe| {
                    let imp = tech.impl_of(ty, pe)?;
                    Some(imp.energy() * dvs_energy_floor(arch.pe(pe)))
                })
                .min_by(|a, b| a.value().total_cmp(&b.value()));
            if let Some(energy) = energy_floor {
                if period > Seconds::ZERO {
                    power_lb += energy / period;
                }
            }
        }

        power_lower_bound += power_lb * m.probability();
        mode_bounds.push(ModeBounds {
            mode,
            name: m.name().to_owned(),
            critical_path_lb,
            period,
            power_lb,
        });
    }

    // Area floors: a used task type whose only capable PE is hardware PE
    // `h` forces its core onto `h`. Cores are shared per type; on a
    // reconfigurable PE they can be swapped between modes, so the floor
    // is the per-mode maximum, otherwise the union over all modes.
    let mut area_bounds = Vec::new();
    for pe in arch.hardware_pes() {
        let info = arch.pe(pe);
        let forced = |ty: TaskTypeId| {
            let mut caps = tech.pes_supporting(ty);
            caps.next() == Some(pe) && caps.next().is_none()
        };
        let mode_floor = |graph: &TaskGraph| -> Cells {
            graph
                .used_types()
                .into_iter()
                .filter(|&ty| forced(ty))
                .filter_map(|ty| tech.impl_of(ty, pe))
                .map(momsynth_model::Implementation::area)
                .sum()
        };
        let floor = if info.kind().is_reconfigurable() {
            omsm.modes().map(|(_, m)| mode_floor(m.graph())).max().unwrap_or(Cells::ZERO)
        } else {
            let mut types: Vec<TaskTypeId> = omsm
                .modes()
                .flat_map(|(_, m)| m.graph().used_types())
                .filter(|&ty| forced(ty))
                .collect();
            types.sort_unstable();
            types.dedup();
            types
                .into_iter()
                .filter_map(|ty| tech.impl_of(ty, pe))
                .map(momsynth_model::Implementation::area)
                .sum()
        };
        let capacity = info.area().unwrap_or(Cells::ZERO);
        if floor > capacity {
            findings.push(Finding::HardwareAreaFloorExceedsCapacity { pe, floor, capacity });
        }
        area_bounds.push(AreaBound { pe, name: info.name().to_owned(), floor, capacity });
    }

    // Transition-time floors: loading even the smallest loadable core of
    // a reconfigurable PE takes `reconfig_time_per_cell · min area`; a
    // `t_T^max` below that dooms any mapping that reconfigures the PE at
    // this transition (a warning — mappings may simply avoid it).
    for pe in arch.hardware_pes() {
        let info = arch.pe(pe);
        if !info.kind().is_reconfigurable() || info.reconfig_time_per_cell() <= Seconds::ZERO {
            continue;
        }
        let floor = tech
            .type_ids()
            .filter_map(|ty| tech.impl_of(ty, pe))
            .filter(|imp| imp.area() > Cells::ZERO)
            .map(|imp| info.reconfig_time_per_cell() * imp.area().value() as f64)
            .min_by(|a, b| a.value().total_cmp(&b.value()));
        let Some(floor) = floor else { continue };
        for (transition, t) in omsm.transitions() {
            if t.max_time() < floor {
                findings.push(Finding::TransitionTimeBelowReconfigFloor { transition, pe, floor });
            }
        }
    }

    let pruned_domain_ratio = if total_candidates == 0 {
        0.0
    } else {
        pruned_candidates as f64 / total_candidates as f64
    };
    Analysis {
        findings,
        mode_bounds,
        area_bounds,
        power_lower_bound,
        capable_pes,
        pruned_domain_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_gen::automotive::automotive_ecu;
    use momsynth_gen::smartphone::smartphone;
    use momsynth_model::ids::TaskId;
    use momsynth_model::units::Volts;
    use momsynth_model::{
        ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind,
        TaskGraphBuilder, TechLibraryBuilder,
    };

    /// One CPU + one ASIC on a bus; type A runs on both (0.9 s / 0.01 s),
    /// type B on the CPU only. One mode, period 1 s, task `a` then `b`.
    fn cpu_asic_system(deadline_a: Option<Seconds>) -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let asic = arch.add_pe(Pe::hardware(
            "asic",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, asic],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();
        tech.set_impl(ta, cpu, Implementation::software(Seconds::new(0.9), Watts::new(0.5)));
        tech.set_impl(
            ta,
            asic,
            Implementation::hardware(Seconds::new(0.01), Watts::new(0.005), Cells::new(240)),
        );
        tech.set_impl(tb, cpu, Implementation::software(Seconds::new(0.05), Watts::new(0.7)));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        let a = match deadline_a {
            Some(d) => g.add_task_with_deadline("a", ta, d),
            None => g.add_task("a", ta),
        };
        let b = g.add_task("b", tb);
        g.add_comm(a, b, 8.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("cpu-asic", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap()
    }

    fn codes(analysis: &Analysis) -> Vec<&'static str> {
        analysis.findings().iter().map(Finding::code).collect()
    }

    /// Descends a serialized [`System`] tree by field names / array
    /// indices, for building broken specifications that `System::new`
    /// would reject but deserialization admits.
    fn path_mut<'a>(
        mut v: &'a mut serde_json::Value,
        path: &[&str],
    ) -> &'a mut serde_json::Value {
        for seg in path {
            v = match v {
                serde_json::Value::Array(items) => &mut items[seg.parse::<usize>().unwrap()],
                serde_json::Value::Object(fields) => {
                    &mut fields.iter_mut().find(|(k, _)| k == seg).unwrap().1
                }
                other => panic!("cannot descend into {} at `{seg}`", other.kind()),
            };
        }
        v
    }

    #[test]
    fn smartphone_and_automotive_are_clean_of_errors() {
        for system in [smartphone(), automotive_ecu()] {
            let analysis = analyze_system(&system);
            assert!(!analysis.has_errors(), "{}: {analysis}", system.name());
            assert!(analysis.power_lower_bound() > Watts::ZERO);
            assert_eq!(analysis.capable_pes().len(), system.omsm().total_task_count());
            for (locus, pes) in analysis.capable_pes().iter().enumerate() {
                assert!(!pes.is_empty(), "locus {locus} has no capable PE");
            }
            assert_eq!(analysis.mode_bounds().len(), system.omsm().mode_count());
            for b in analysis.mode_bounds() {
                assert!(b.critical_path_lb > Seconds::ZERO);
                assert!(b.critical_path_lb <= b.period, "mode {}", b.name);
            }
        }
    }

    #[test]
    fn capable_pes_follow_genome_locus_order() {
        let system = smartphone();
        let analysis = analyze_system(&system);
        for (locus, id) in system.global_tasks().enumerate() {
            let full = system.candidate_pes(id);
            for pe in &analysis.capable_pes()[locus] {
                assert!(full.contains(pe), "locus {locus}: {pe} not a library candidate");
            }
        }
    }

    #[test]
    fn impossible_deadline_is_a_provable_error() {
        let system = cpu_asic_system(Some(Seconds::new(1e-6)));
        let analysis = analyze_system(&system);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"deadline-below-critical-path"), "{analysis}");
        // All candidates of task `a` are dead, so the full list is kept
        // for the fail-fast path rather than an empty domain.
        assert_eq!(analysis.capable_pes()[0].len(), 2);
    }

    #[test]
    fn exactly_tight_deadline_is_not_rejected() {
        // Deadline exactly equal to the fastest finish floor: feasible.
        let system = cpu_asic_system(Some(Seconds::new(0.01)));
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        // The slow CPU candidate (0.9 s) is provably late and pruned.
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(1)]);
    }

    #[test]
    fn provably_late_candidate_is_pruned_without_error() {
        let system = cpu_asic_system(Some(Seconds::new(0.5)));
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        assert!(codes(&analysis).contains(&"gene-pruned"));
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(1)]);
        // 1 of 3 (task,PE) pairs pruned.
        assert!((analysis.pruned_domain_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(analysis.count(Severity::Info), 1);
    }

    #[test]
    fn unconstrained_system_prunes_nothing() {
        let system = cpu_asic_system(None);
        let analysis = analyze_system(&system);
        assert!(analysis.is_clean(), "{analysis}");
        assert_eq!(analysis.pruned_domain_ratio(), 0.0);
        assert_eq!(analysis.capable_pes()[0], vec![PeId::new(0), PeId::new(1)]);
    }

    #[test]
    fn power_lower_bound_prices_cheapest_implementation() {
        let system = cpu_asic_system(None);
        let analysis = analyze_system(&system);
        // Task a: min energy = asic 0.005 W × 0.01 s; task b: cpu only,
        // 0.7 W × 0.05 s. No DVS anywhere, period 1 s, probability 1.
        let expected = (0.005 * 0.01 + 0.7 * 0.05) / 1.0;
        assert!((analysis.power_lower_bound().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn dvs_scales_the_energy_floor() {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(1.65), Volts::new(3.3)],
            )),
        );
        tech.set_impl(ta, cpu, Implementation::software(Seconds::new(0.1), Watts::new(0.4)));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        g.add_task("t", ta);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("dvs", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        // Energy floor: 0.4 W × 0.1 s × (1.65/3.3)² = 0.04 × 0.25.
        assert!((analysis.power_lower_bound().value() - 0.04 * 0.25).abs() < 1e-12);
        assert!(!analysis.has_errors());
    }

    #[test]
    fn mutated_period_below_floor_is_an_error() {
        let system = cpu_asic_system(None);
        let mut v = serde_json::to_value(&system);
        *path_mut(&mut v, &["omsm", "modes", "0", "graph", "period"]) =
            serde_json::json!(1e-6);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"period-below-critical-path"), "{analysis}");
    }

    #[test]
    fn mutated_library_row_yields_no_capable_pe() {
        let system = cpu_asic_system(None);
        let mut v = serde_json::to_value(&system);
        // Erase every implementation of type B (index 1): its task now has
        // no candidate PE. System::new would reject this; deserialisation
        // bypasses it.
        *path_mut(&mut v, &["tech", "impls", "1"]) = serde_json::json!([]);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"no-capable-pe"), "{analysis}");
    }

    #[test]
    fn mutated_probability_mass_drifts() {
        let system = smartphone();
        let mut v = serde_json::to_value(&system);
        *path_mut(&mut v, &["omsm", "modes", "0", "probability"]) = serde_json::json!(0.999);
        let drifted: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&drifted);
        assert!(codes(&analysis).contains(&"probability-mass-drift"), "{analysis}");
        let finding = analysis
            .findings()
            .iter()
            .find(|f| f.code() == "probability-mass-drift")
            .unwrap();
        assert_eq!(finding.severity(), Severity::Warning);
    }

    #[test]
    fn mutated_smartphone_deadline_below_floor_is_an_error() {
        let system = smartphone();
        let mut v = serde_json::to_value(&system);
        // Give the first task of the first mode a deadline no mapping can
        // meet; the builders never see it, the analyzer must.
        *path_mut(&mut v, &["omsm", "modes", "0", "graph", "tasks", "0", "deadline"]) =
            serde_json::json!(1e-9);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"deadline-below-critical-path"), "{analysis}");
        let finding = analysis
            .findings()
            .iter()
            .find(|f| f.code() == "deadline-below-critical-path")
            .unwrap();
        assert_eq!(finding.severity(), Severity::Error);
    }

    #[test]
    fn mutated_automotive_library_row_yields_no_capable_pe() {
        let system = automotive_ecu();
        let mut v = serde_json::to_value(&system);
        // Erase every implementation of the first task's type: that task
        // can no longer be mapped anywhere.
        let ty = system
            .task_type_of(GlobalTaskId::new(
                momsynth_model::ids::ModeId::new(0),
                TaskId::new(0),
            ))
            .index()
            .to_string();
        *path_mut(&mut v, &["tech", "impls", &ty]) = serde_json::json!([]);
        let broken: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&broken);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"no-capable-pe"), "{analysis}");
        let finding =
            analysis.findings().iter().find(|f| f.code() == "no-capable-pe").unwrap();
        assert_eq!(finding.severity(), Severity::Error);
    }

    #[test]
    fn forced_types_bound_hardware_area() {
        // Type H is implementable only on the ASIC and its core (700)
        // exceeds the capacity (600): a provable area violation.
        let mut tech = TechLibraryBuilder::new();
        let th = tech.add_type("H");
        let mut arch = ArchitectureBuilder::new();
        let asic = arch.add_pe(Pe::hardware(
            "asic",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        tech.set_impl(
            th,
            asic,
            Implementation::hardware(Seconds::new(0.01), Watts::new(0.01), Cells::new(700)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        g.add_task("h", th);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("area", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        assert!(analysis.has_errors());
        assert!(codes(&analysis).contains(&"area-floor-exceeds-capacity"), "{analysis}");
        assert_eq!(analysis.area_bounds().len(), 1);
        assert_eq!(analysis.area_bounds()[0].floor, Cells::new(700));
    }

    #[test]
    fn reconfigurable_area_floor_is_per_mode_maximum() {
        // Two modes each force one 400-cell type onto a 600-cell FPGA.
        // Statically that would need 800 cells, but the FPGA swaps cores
        // between modes: the floor is max(400, 400), within capacity.
        let mut tech = TechLibraryBuilder::new();
        let t1 = tech.add_type("F1");
        let t2 = tech.add_type("F2");
        let mut arch = ArchitectureBuilder::new();
        let fpga = arch.add_pe(Pe::hardware(
            "fpga",
            PeKind::Fpga,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        for ty in [t1, t2] {
            tech.set_impl(
                ty,
                fpga,
                Implementation::hardware(Seconds::new(0.01), Watts::new(0.01), Cells::new(400)),
            );
        }
        let graph = |name: &str, ty| {
            let mut g = TaskGraphBuilder::new(name, Seconds::new(1.0));
            g.add_task("t", ty);
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("m0", 0.5, graph("m0", t1));
        let m1 = omsm.add_mode("m1", 0.5, graph("m1", t2));
        omsm.add_transition(m0, m1, Seconds::new(0.5)).unwrap();
        omsm.add_transition(m1, m0, Seconds::new(0.5)).unwrap();
        let system =
            System::new("fpga", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        assert_eq!(analysis.area_bounds()[0].floor, Cells::new(400));
    }

    #[test]
    fn tight_transition_time_is_flagged_against_reconfig_floor() {
        // Reconfiguring the FPGA's smallest core takes 400 × 1 ms = 0.4 s,
        // but the transitions allow only 1 ms.
        let mut tech = TechLibraryBuilder::new();
        let tf = tech.add_type("F");
        let mut arch = ArchitectureBuilder::new();
        let fpga = arch.add_pe(
            Pe::hardware("fpga", PeKind::Fpga, Cells::new(600), Watts::from_milli(0.05))
                .with_reconfig_time_per_cell(Seconds::from_millis(1.0)),
        );
        tech.set_impl(
            tf,
            fpga,
            Implementation::hardware(Seconds::new(0.01), Watts::new(0.01), Cells::new(400)),
        );
        let graph = |name: &str| {
            let mut g = TaskGraphBuilder::new(name, Seconds::new(1.0));
            g.add_task("t", tf);
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("m0", 0.5, graph("m0"));
        let m1 = omsm.add_mode("m1", 0.5, graph("m1"));
        omsm.add_transition(m0, m1, Seconds::from_millis(1.0)).unwrap();
        omsm.add_transition(m1, m0, Seconds::from_millis(1.0)).unwrap();
        let system =
            System::new("recfg", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let analysis = analyze_system(&system);
        assert!(!analysis.has_errors(), "{analysis}");
        assert_eq!(
            codes(&analysis)
                .iter()
                .filter(|&&c| c == "transition-below-reconfig-floor")
                .count(),
            2
        );
    }

    #[test]
    fn reachability_warnings_for_disconnected_omsm() {
        let system = cpu_asic_system(None);
        let mut v = serde_json::to_value(&system);
        // Clone the single mode into a second, unconnected one.
        let modes = path_mut(&mut v, &["omsm", "modes"]);
        let serde_json::Value::Array(items) = modes else { panic!("modes is not an array") };
        let mut second = items[0].clone();
        *path_mut(&mut second, &["probability"]) = serde_json::json!(0.0);
        items.push(second);
        let disconnected: System = serde_json::from_value(&v).unwrap();
        let analysis = analyze_system(&disconnected);
        assert!(!analysis.has_errors(), "{analysis}");
        // Both modes: unreachable (no incoming) and trapping (no outgoing).
        assert_eq!(codes(&analysis).iter().filter(|&&c| c == "mode-unreachable").count(), 2);
        assert_eq!(codes(&analysis).iter().filter(|&&c| c == "mode-trapping").count(), 2);
    }

    #[test]
    fn severity_order_and_codes_are_stable() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        let f = Finding::TaskWithNoCapablePe { mode: ModeIdAlias::new(0), task: TaskId::new(0) };
        assert_eq!(f.code(), "no-capable-pe");
        assert_eq!(f.severity(), Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_renders_display_and_json() {
        let system = cpu_asic_system(Some(Seconds::new(0.5)));
        let analysis = analyze_system(&system);
        let text = format!("{analysis}");
        assert!(text.contains("p̄_LB"), "{text}");
        assert!(text.contains("gene-pruned"), "{text}");
        let json = analysis.to_json();
        assert_eq!(json["clean"], serde_json::json!(false));
        assert_eq!(json["errors"], serde_json::json!(0));
        assert_eq!(json["infos"], serde_json::json!(1));
        assert!(json["power_lower_bound_mw"].as_f64().unwrap() > 0.0);
        assert_eq!(json["findings"][0]["code"], serde_json::json!("gene-pruned"));
        assert_eq!(json["modes"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn exceeds_uses_relative_epsilon() {
        assert!(!exceeds(Seconds::new(1.0), Seconds::new(1.0)));
        assert!(!exceeds(Seconds::new(1.0 + 1e-13), Seconds::new(1.0)));
        assert!(exceeds(Seconds::new(1.0 + 1e-6), Seconds::new(1.0)));
        assert!(exceeds(Seconds::new(1e-9), Seconds::ZERO));
    }

    use momsynth_model::ids::ModeId as ModeIdAlias;
}
