//! Mode-level PE dominance ("shadowing") analysis.
//!
//! A PE `b` is *shadowed* by a PE `a` in mode `m` when every assignment
//! that maps any of `m`'s tasks onto `b` can be rewritten — by moving all
//! of those tasks to `a` — into an assignment whose fitness is no worse.
//! The rewritten assignment exists inside the reduced search space, so
//! deleting `b` from every locus of `m` preserves at least one optimum.
//!
//! The soundness argument (DESIGN.md §16) needs the move to be harmless
//! along *every* fitness axis, which this implementation guarantees with
//! deliberately conservative preconditions:
//!
//! - **Timing.** The mode must be *slack-safe*: the serialised worst case
//!   `W_m` — every task at its slowest capable implementation plus every
//!   communication remote on the slowest link — fits under the smallest
//!   effective deadline. A work-conserving list schedule never idles all
//!   resources while work remains, so any assignment's makespan is at
//!   most `W_m` and every timing penalty is exactly 1 before and after
//!   the move.
//! - **Energy.** For every task of the mode that could map to `b`, `a`
//!   must also be capable and no more energetic. Probabilities multiply
//!   both sides of a same-mode comparison, so the rule is mode-local: a
//!   task alive only in other modes never blocks `m`'s reduction.
//! - **Communication.** Only single-CL architectures qualify, so a moved
//!   communication either stays on the same bus (same energy) or becomes
//!   PE-local (free): the scheduler's link choice cannot back-fire.
//! - **Static power.** Emptying `b` in `m` stops charging `b`'s static
//!   power there; activating `a` is free when `a` is *anchored* (some
//!   task of `m` is only implementable on `a`, so `a` is always active)
//!   and otherwise needs `P_a^static ≤ P_b^static`.
//! - **Area / reconfiguration.** Both `a` and `b` must be software PEs,
//!   so the move touches no core area and no FPGA reconfiguration.
//! - **DVS.** Voltage scaling redistributes slack globally, so moving a
//!   task can raise *other* tasks' energies; shadowing is only attempted
//!   on architectures with no DVS-capable PE at all.
//!
//! Removals are found greedily in PE-id order against witnesses that are
//! still in the domain, so chains compose (`b → a`, later `a → c`) and
//! mutually-dominating twins never eliminate each other.

use momsynth_model::ids::{ModeId, PeId};
use momsynth_model::units::Seconds;
use momsynth_model::System;

use crate::exceeds;

/// One mode-level shadowing: `dominated` can be removed from every locus
/// of the mode because `by` is a no-worse host for all of its tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Shadowing {
    /// The PE removed from the mode's genome domains.
    pub(crate) dominated: PeId,
    /// The surviving witness PE.
    pub(crate) by: PeId,
}

/// Finds every PE shadowed in `mode`. `candidates` holds the *full*
/// technology-library candidate list of each task, in task order.
pub(crate) fn mode_shadowings(
    system: &System,
    mode: ModeId,
    candidates: &[Vec<PeId>],
) -> Vec<Shadowing> {
    let arch = system.arch();
    let tech = system.tech();

    // Global gates: no DVS anywhere (slack externalities) and at most one
    // CL (the scheduler's link choice is then energy-neutral).
    if arch.dvs_pes().next().is_some() || arch.cl_count() > 1 {
        return Vec::new();
    }

    let graph = system.omsm().mode(mode).graph();

    // Slack-safety: serialised worst case under the tightest deadline.
    let mut worst = Seconds::ZERO;
    let mut min_deadline = graph.period();
    for (task, c) in graph.task_ids().zip(candidates) {
        let ty = graph.task(task).task_type();
        let slowest = c
            .iter()
            .filter_map(|&pe| tech.impl_of(ty, pe))
            .map(momsynth_model::Implementation::exec_time)
            .fold(Seconds::ZERO, Seconds::max);
        worst += slowest;
        min_deadline = min_deadline.min(graph.effective_deadline(task));
    }
    for (_, comm) in graph.comms() {
        let slowest = arch
            .cls()
            .map(|(_, cl)| cl.transfer_time(comm.data_units()))
            .fold(Seconds::ZERO, Seconds::max);
        worst += slowest;
    }
    if exceeds(worst, min_deadline) {
        return Vec::new();
    }

    // A PE is anchored when some task of the mode can run nowhere else:
    // it is active under every assignment, so moving work onto it never
    // adds static power. Anchored PEs are also never removable (their
    // tasks have no witness), keeping shadowing chains well-founded.
    let anchored =
        |pe: PeId| candidates.iter().any(|c| c.len() == 1 && c[0] == pe);

    let energy = |ty, pe| tech.impl_of(ty, pe).map(momsynth_model::Implementation::energy);

    let mut removed: Vec<PeId> = Vec::new();
    let mut shadowings = Vec::new();
    for b in arch.software_pes() {
        if !candidates.iter().any(|c| c.contains(&b)) {
            continue;
        }
        let witness = arch.software_pes().find(|&a| {
            if a == b || removed.contains(&a) {
                return false;
            }
            let static_ok = arch.pe(a).static_power() <= arch.pe(b).static_power()
                || anchored(a);
            if !static_ok {
                return false;
            }
            graph.task_ids().zip(candidates).all(|(task, c)| {
                if !c.contains(&b) {
                    return true;
                }
                let ty = graph.task(task).task_type();
                match (energy(ty, a), energy(ty, b)) {
                    (Some(ea), Some(eb)) => c.contains(&a) && ea <= eb,
                    _ => false,
                }
            })
        });
        if let Some(by) = witness {
            removed.push(b);
            shadowings.push(Shadowing { dominated: b, by });
        }
    }
    shadowings
}
