//! Typed findings and the [`Analysis`] report.
//!
//! Mirrors the shape of `momsynth-check`'s `Violation`/`CheckReport` pair:
//! a `#[non_exhaustive]` diagnostic enum with stable kebab-case codes plus
//! a report wrapper with a manual JSON rendering, so downstream tooling
//! never depends on Rust enum layout.

use std::fmt;

use momsynth_model::ids::{ModeId, PeId, TaskId, TransitionId};
use momsynth_model::units::{Cells, Seconds, Watts};

/// How severe a [`Finding`] is.
///
/// `Error` findings are *proofs of infeasibility*: no mapping, schedule or
/// voltage assignment can satisfy the specification. `Warning` findings
/// flag specifications that are very likely broken but not provably so;
/// `Info` findings document facts the analyzer derived (e.g. pruned
/// genome domains) without judging them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Derived fact, no judgement attached.
    Info,
    /// Suspicious but not provably infeasible.
    Warning,
    /// Provable infeasibility — synthesis cannot succeed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Info => "info",
            Self::Warning => "warning",
            Self::Error => "error",
        })
    }
}

/// One static-analysis diagnostic.
///
/// Every variant carries enough context to render a self-contained
/// message; [`Finding::code`] gives a stable machine-readable identifier.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Finding {
    /// A task's type has no implementation on any PE — the genome has no
    /// candidate for this locus. [`System::new`](momsynth_model::System::new)
    /// rejects this, but deserialised specifications bypass it.
    TaskWithNoCapablePe {
        /// The mode containing the task.
        mode: ModeId,
        /// The incapacitated task.
        task: TaskId,
    },
    /// A task's effective deadline `min(θ, φ)` is below its earliest
    /// possible finish time — the task's critical-path floor — even with
    /// every task at its fastest nominal implementation and free
    /// communication. No mapping can meet it (DVS only stretches times).
    DeadlineBelowCriticalPathFloor {
        /// The mode containing the task.
        mode: ModeId,
        /// The over-constrained task.
        task: TaskId,
        /// The provable lower bound on the task's finish time.
        floor: Seconds,
        /// The task's effective deadline.
        deadline: Seconds,
    },
    /// A mode's period is below its critical-path lower bound — the
    /// whole-graph analogue of [`Finding::DeadlineBelowCriticalPathFloor`].
    PeriodBelowCriticalPathFloor {
        /// The over-constrained mode.
        mode: ModeId,
        /// The critical-path lower bound.
        floor: Seconds,
        /// The mode's period.
        period: Seconds,
    },
    /// Task types implementable *only* on one hardware PE force more core
    /// area onto it than it has — constraint (a) is unmeetable.
    HardwareAreaFloorExceedsCapacity {
        /// The over-subscribed hardware PE.
        pe: PeId,
        /// The provable lower bound on the area used on that PE.
        floor: Cells,
        /// The PE's area capacity.
        capacity: Cells,
    },
    /// A transition's `t_T^max` is below the time to reconfigure even the
    /// smallest loadable core of some FPGA. Not a proof of infeasibility —
    /// a mapping may simply avoid reconfiguring that PE here — but any
    /// mapping that does reconfigure it violates constraint (c).
    TransitionTimeBelowReconfigFloor {
        /// The over-constrained transition.
        transition: TransitionId,
        /// The reconfigurable PE.
        pe: PeId,
        /// The reconfiguration time of the PE's smallest loadable core.
        floor: Seconds,
    },
    /// The mode execution probabilities do not sum to 1; Eq. 1 averages
    /// computed from this profile are mis-weighted.
    ProbabilityMassDrift {
        /// The actual probability sum `Σ Ψ_O`.
        sum: f64,
    },
    /// A mode cannot be entered from any other mode.
    ModeUnreachable {
        /// The unreachable mode.
        mode: ModeId,
    },
    /// A mode has no outgoing transition; once entered it is never left.
    ModeTrapping {
        /// The trapping mode.
        mode: ModeId,
    },
    /// A `(task, PE)` pair was removed from the genome domain: mapping
    /// the task there provably violates a deadline or the period, so the
    /// GA never needs to try it.
    GenePruned {
        /// The mode containing the task.
        mode: ModeId,
        /// The task whose domain shrank.
        task: TaskId,
        /// The PE that was removed from the task's candidate list.
        pe: PeId,
        /// The provable finish-time floor of the task on that PE.
        floor: Seconds,
        /// The bound the floor exceeds (effective deadline or period).
        deadline: Seconds,
    },
    /// A `(task, PE)` pair was removed from the genome domain because
    /// another PE dominates it in this mode: any assignment using the
    /// dominated PE here can be rewritten onto the witness without
    /// making timing, energy, area or static power worse, so at least
    /// one optimum survives the removal.
    GeneDominated {
        /// The mode containing the task.
        mode: ModeId,
        /// The task whose domain shrank.
        task: TaskId,
        /// The dominated PE removed from the task's candidate list.
        pe: PeId,
        /// The dominating witness PE that remains in the domain.
        by: PeId,
    },
}

impl Finding {
    /// The finding's severity.
    pub fn severity(&self) -> Severity {
        match self {
            Self::TaskWithNoCapablePe { .. }
            | Self::DeadlineBelowCriticalPathFloor { .. }
            | Self::PeriodBelowCriticalPathFloor { .. }
            | Self::HardwareAreaFloorExceedsCapacity { .. } => Severity::Error,
            Self::TransitionTimeBelowReconfigFloor { .. }
            | Self::ProbabilityMassDrift { .. }
            | Self::ModeUnreachable { .. } => Severity::Warning,
            Self::ModeTrapping { .. }
            | Self::GenePruned { .. }
            | Self::GeneDominated { .. } => Severity::Info,
        }
    }

    /// A stable machine-readable identifier for this kind of finding.
    pub fn code(&self) -> &'static str {
        match self {
            Self::TaskWithNoCapablePe { .. } => "no-capable-pe",
            Self::DeadlineBelowCriticalPathFloor { .. } => "deadline-below-critical-path",
            Self::PeriodBelowCriticalPathFloor { .. } => "period-below-critical-path",
            Self::HardwareAreaFloorExceedsCapacity { .. } => "area-floor-exceeds-capacity",
            Self::TransitionTimeBelowReconfigFloor { .. } => "transition-below-reconfig-floor",
            Self::ProbabilityMassDrift { .. } => "probability-mass-drift",
            Self::ModeUnreachable { .. } => "mode-unreachable",
            Self::ModeTrapping { .. } => "mode-trapping",
            Self::GenePruned { .. } => "gene-pruned",
            Self::GeneDominated { .. } => "gene-dominated",
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TaskWithNoCapablePe { mode, task } => {
                write!(f, "task {task} of mode {mode} has no capable PE in the technology library")
            }
            Self::DeadlineBelowCriticalPathFloor { mode, task, floor, deadline } => write!(
                f,
                "task {task} of mode {mode}: effective deadline {deadline:.6} is below the \
                 critical-path finish floor {floor:.6} — no mapping can meet it"
            ),
            Self::PeriodBelowCriticalPathFloor { mode, floor, period } => write!(
                f,
                "mode {mode}: period {period:.6} is below the critical-path lower bound \
                 {floor:.6} — no mapping can meet it"
            ),
            Self::HardwareAreaFloorExceedsCapacity { pe, floor, capacity } => write!(
                f,
                "hardware PE {pe}: must-be-here task types force at least {floor} cells onto \
                 a capacity of {capacity} cells — constraint (a) is unmeetable"
            ),
            Self::TransitionTimeBelowReconfigFloor { transition, pe, floor } => write!(
                f,
                "transition {transition}: t_T^max is below {floor:.6}, the time to reconfigure \
                 even the smallest loadable core of {pe}"
            ),
            Self::ProbabilityMassDrift { sum } => write!(
                f,
                "mode execution probabilities sum to {sum:.9} instead of 1 — Eq. 1 averages \
                 will be mis-weighted"
            ),
            Self::ModeUnreachable { mode } => {
                write!(f, "mode {mode} is unreachable from every other mode")
            }
            Self::ModeTrapping { mode } => write!(f, "mode {mode} has no outgoing transition"),
            Self::GenePruned { mode, task, pe, floor, deadline } => write!(
                f,
                "task {task} of mode {mode} can never run on {pe}: its finish floor there is \
                 {floor:.6}, beyond the bound {deadline:.6} — gene pruned"
            ),
            Self::GeneDominated { mode, task, pe, by } => write!(
                f,
                "task {task} of mode {mode} never needs {pe}: {by} is a no-worse host for \
                 every task of the mode — gene dominated"
            ),
        }
    }
}

/// Static timing bounds of one operational mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeBounds {
    /// The mode.
    pub mode: ModeId,
    /// The mode's name, for self-contained rendering.
    pub name: String,
    /// Critical-path lower bound: every task at its fastest nominal
    /// implementation, communication free. No schedule of this mode can
    /// finish earlier, with or without DVS.
    pub critical_path_lb: Seconds,
    /// The mode's period `φ`.
    pub period: Seconds,
    /// Lower bound on the mode's Eq. 1 power: the sum of
    /// [`ModeBounds::dvs_floor`] and [`ModeBounds::comm_floor`], static
    /// power excluded.
    pub power_lb: Watts,
    /// Load component of the bound: every task priced at its cheapest
    /// capable PE at *nominal* supply voltage, communication free.
    pub load_floor: Watts,
    /// DVS-aware task component: like the load floor, but each candidate
    /// is granted its deepest provably reachable supply drop — limited
    /// by the rail's lowest legal level and by the slack window the
    /// task's path floors leave it. Equal to the load floor on DVS-free
    /// architectures; never above it.
    pub dvs_floor: Watts,
    /// Communication component: transfers whose endpoint candidate sets
    /// are disjoint are remote under every mapping and priced at the
    /// cheapest routable link.
    pub comm_floor: Watts,
}

/// How much of the genome domain the analyzer proved away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainReduction {
    /// Total `(task, PE)` candidate pairs in the technology library,
    /// summed over all modes.
    pub total_candidates: usize,
    /// Pairs removed because the task provably misses a deadline or the
    /// period on that PE.
    pub pruned_by_deadline: usize,
    /// Pairs removed because another PE dominates the candidate across
    /// the whole mode.
    pub pruned_by_dominance: usize,
}

impl DomainReduction {
    /// Fraction of all candidate pairs removed, in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.total_candidates == 0 {
            0.0
        } else {
            (self.pruned_by_deadline + self.pruned_by_dominance) as f64
                / self.total_candidates as f64
        }
    }
}

/// Static area bound of one hardware PE.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBound {
    /// The hardware PE.
    pub pe: PeId,
    /// The PE's name, for self-contained rendering.
    pub name: String,
    /// Lower bound on the core area any feasible mapping places on this
    /// PE: the cores of task types implementable *only* here (counted
    /// once per type; for reconfigurable PEs the maximum over modes,
    /// since cores can be swapped between modes).
    pub floor: Cells,
    /// The PE's area capacity.
    pub capacity: Cells,
}

/// The full static-analysis report of a system.
///
/// Produced by [`analyze_system`](crate::analyze_system). Carries every
/// [`Finding`], the per-mode and per-PE bounds, the probability-weighted
/// Eq. 1 power lower bound `p̄_LB`, and the statically proven per-locus
/// capable-PE sets the synthesiser feeds into genome construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    pub(crate) findings: Vec<Finding>,
    pub(crate) mode_bounds: Vec<ModeBounds>,
    pub(crate) area_bounds: Vec<AreaBound>,
    pub(crate) power_lower_bound: Watts,
    pub(crate) capable_pes: Vec<Vec<PeId>>,
    pub(crate) pruned_domain_ratio: f64,
    pub(crate) domain_reduction: DomainReduction,
}

impl Analysis {
    /// All findings, in detection order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Per-mode timing and power bounds, in mode order.
    pub fn mode_bounds(&self) -> &[ModeBounds] {
        &self.mode_bounds
    }

    /// Per-hardware-PE area bounds, in PE order (hardware PEs only).
    pub fn area_bounds(&self) -> &[AreaBound] {
        &self.area_bounds
    }

    /// The probability-weighted Eq. 1 power lower bound `p̄_LB`: a
    /// provable floor under every feasible (and infeasible) mapping, with
    /// or without DVS.
    pub fn power_lower_bound(&self) -> Watts {
        self.power_lower_bound
    }

    /// The statically proven capable-PE set of every `(mode, task)`
    /// locus, in the genome's locus order (modes in order, tasks in
    /// order). A subset of the technology library's candidate list: PEs
    /// on which the task provably violates a deadline or the period are
    /// removed. Never empty unless the task has no candidates at all
    /// (then [`Analysis::has_errors`] is `true`).
    pub fn capable_pes(&self) -> &[Vec<PeId>] {
        &self.capable_pes
    }

    /// Fraction of the technology library's `(task, PE)` candidate pairs
    /// that were proven dead (or dominated) and removed from the genome
    /// domain, in `[0, 1]`. `0.0` when nothing was pruned.
    pub fn pruned_domain_ratio(&self) -> f64 {
        self.pruned_domain_ratio
    }

    /// The domain-reduction tally behind
    /// [`Analysis::pruned_domain_ratio`], split by pruning rule.
    pub fn domain_reduction(&self) -> DomainReduction {
        self.domain_reduction
    }

    /// `true` when no findings were produced at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `true` when at least one finding proves the system infeasible.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity() == Severity::Error)
    }

    /// The infeasibility proofs among the findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(|f| f.severity() == Severity::Error)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity() == severity).count()
    }

    /// Renders the report as a JSON value with stable field names.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "clean": self.is_clean(),
            "errors": self.count(Severity::Error),
            "warnings": self.count(Severity::Warning),
            "infos": self.count(Severity::Info),
            "power_lower_bound_mw": self.power_lower_bound.as_milli(),
            "pruned_domain_ratio": self.pruned_domain_ratio,
            "domain_reduction": serde_json::json!({
                "total_candidates": self.domain_reduction.total_candidates,
                "pruned_by_deadline": self.domain_reduction.pruned_by_deadline,
                "pruned_by_dominance": self.domain_reduction.pruned_by_dominance,
            }),
            "modes": self.mode_bounds.iter().map(|b| serde_json::json!({
                "mode": b.name,
                "critical_path_lb_s": b.critical_path_lb.value(),
                "period_s": b.period.value(),
                "power_lb_mw": b.power_lb.as_milli(),
                "load_floor_mw": b.load_floor.as_milli(),
                "dvs_floor_mw": b.dvs_floor.as_milli(),
                "comm_floor_mw": b.comm_floor.as_milli(),
            })).collect::<Vec<_>>(),
            "area": self.area_bounds.iter().map(|b| serde_json::json!({
                "pe": b.name,
                "floor_cells": b.floor.value(),
                "capacity_cells": b.capacity.value(),
            })).collect::<Vec<_>>(),
            "findings": self.findings.iter().map(|f| serde_json::json!({
                "code": f.code(),
                "severity": f.severity().to_string(),
                "message": f.to_string(),
            })).collect::<Vec<_>>(),
        })
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "p̄_LB = {:.4} mW, pruned domain ratio {:.1}%",
            self.power_lower_bound.as_milli(),
            self.pruned_domain_ratio * 100.0
        )?;
        for b in &self.mode_bounds {
            writeln!(
                f,
                "  mode {:<12} critical path ≥ {:.6}s (period {:.6}s), power ≥ {:.4} mW \
                 (load {:.4}, dvs {:.4}, comm {:.4})",
                b.name,
                b.critical_path_lb.value(),
                b.period.value(),
                b.power_lb.as_milli(),
                b.load_floor.as_milli(),
                b.dvs_floor.as_milli(),
                b.comm_floor.as_milli()
            )?;
        }
        for b in &self.area_bounds {
            writeln!(
                f,
                "  PE {:<14} area ≥ {} of {} cells",
                b.name,
                b.floor.value(),
                b.capacity.value()
            )?;
        }
        if self.findings.is_empty() {
            write!(f, "ok: no findings")
        } else {
            write!(
                f,
                "{} error(s), {} warning(s), {} info(s)",
                self.count(Severity::Error),
                self.count(Severity::Warning),
                self.count(Severity::Info)
            )?;
            for finding in &self.findings {
                write!(f, "\n  [{}] [{}] {finding}", finding.severity(), finding.code())?;
            }
            Ok(())
        }
    }
}
