//! Per-mode functional specification: directed acyclic task graphs.
//!
//! Each operational mode of an [`Omsm`](crate::Omsm) is specified by a
//! [`TaskGraph`] `G_S(T, C)`: nodes are atomic, non-preemptable [`Task`]s
//! (coarse-grained functions such as *FFT* or *Huffman decoder*, classified
//! by a [`TaskTypeId`]), edges are [`Comm`]s carrying precedence constraints
//! and data volumes. The graph repeats with period `φ` (the mode's
//! hyper-period); individual tasks may carry tighter deadlines `θ`.
//!
//! Graphs are constructed through [`TaskGraphBuilder`] and validated once at
//! [`TaskGraphBuilder::build`]; a successfully built graph is immutable and
//! guaranteed acyclic, with adjacency and a topological order precomputed.
//!
//! # Examples
//!
//! ```
//! use momsynth_model::{TaskGraphBuilder, ids::TaskTypeId, units::Seconds};
//!
//! # fn main() -> Result<(), momsynth_model::ModelError> {
//! let mut b = TaskGraphBuilder::new("jpeg", Seconds::from_millis(25.0));
//! let hd = b.add_task("huffman", TaskTypeId::new(0));
//! let dq = b.add_task("dequant", TaskTypeId::new(1));
//! let idct = b.add_task("idct", TaskTypeId::new(2));
//! b.add_comm(hd, dq, 256.0)?;
//! b.add_comm(dq, idct, 256.0)?;
//! let graph = b.build()?;
//! assert_eq!(graph.task_count(), 3);
//! assert_eq!(graph.topological_order().len(), 3);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{CommId, TaskId, TaskTypeId};
use crate::units::Seconds;

/// An atomic, non-preemptable unit of functionality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    task_type: TaskTypeId,
    deadline: Option<Seconds>,
}

impl Task {
    /// Returns the task's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the task's type, used for technology-library lookup and
    /// hardware-core sharing.
    pub fn task_type(&self) -> TaskTypeId {
        self.task_type
    }

    /// Returns the task's individual deadline `θ`, if any.
    pub fn deadline(&self) -> Option<Seconds> {
        self.deadline
    }
}

/// A precedence edge with an associated data volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comm {
    src: TaskId,
    dst: TaskId,
    data_units: f64,
}

impl Comm {
    /// Returns the producing task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// Returns the consuming task.
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// Returns the transferred data volume in abstract units (the
    /// technology library defines per-unit link timing and power).
    pub fn data_units(&self) -> f64 {
        self.data_units
    }
}

/// An immutable, validated, acyclic task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    period: Seconds,
    tasks: Vec<Task>,
    comms: Vec<Comm>,
    succs: Vec<Vec<(CommId, TaskId)>>,
    preds: Vec<Vec<(CommId, TaskId)>>,
    topo: Vec<TaskId>,
}

impl TaskGraph {
    /// Returns the graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the repetition period `φ` (the mode's hyper-period).
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Returns the number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Returns the number of communication edges.
    pub fn comm_count(&self) -> usize {
        self.comms.len()
    }

    /// Returns the task with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Returns the communication edge with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn comm(&self, id: CommId) -> &Comm {
        &self.comms[id.index()]
    }

    /// Iterates over `(id, task)` pairs in identifier order.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> + '_ {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId::new(i), t))
    }

    /// Iterates over `(id, comm)` pairs in identifier order.
    pub fn comms(&self) -> impl Iterator<Item = (CommId, &Comm)> + '_ {
        self.comms.iter().enumerate().map(|(i, c)| (CommId::new(i), c))
    }

    /// Returns all task identifiers.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::new)
    }

    /// Returns all communication identifiers.
    pub fn comm_ids(&self) -> impl Iterator<Item = CommId> + '_ {
        (0..self.comms.len()).map(CommId::new)
    }

    /// Returns the outgoing edges of `task` as `(comm, consumer)` pairs.
    pub fn successors(&self, task: TaskId) -> &[(CommId, TaskId)] {
        &self.succs[task.index()]
    }

    /// Returns the incoming edges of `task` as `(comm, producer)` pairs.
    pub fn predecessors(&self, task: TaskId) -> &[(CommId, TaskId)] {
        &self.preds[task.index()]
    }

    /// Returns a topological order of all tasks (sources first).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Returns tasks with no predecessors.
    pub fn sources(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|t| self.preds[t.index()].is_empty())
    }

    /// Returns tasks with no successors.
    pub fn sinks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.task_ids().filter(|t| self.succs[t.index()].is_empty())
    }

    /// Returns the deadline actually enforced for `task`:
    /// `min(θ_τ, φ)` per the paper's feasibility requirement (b).
    pub fn effective_deadline(&self, task: TaskId) -> Seconds {
        match self.tasks[task.index()].deadline {
            Some(d) => d.min(self.period),
            None => self.period,
        }
    }

    /// Length of the longest path through the graph under the supplied task
    /// and edge weights. Useful for critical-path estimates and for
    /// calibrating feasible periods in workload generators.
    ///
    /// # Examples
    ///
    /// ```
    /// # use momsynth_model::{TaskGraphBuilder, ids::TaskTypeId, units::Seconds};
    /// # fn main() -> Result<(), momsynth_model::ModelError> {
    /// let mut b = TaskGraphBuilder::new("g", Seconds::new(1.0));
    /// let a = b.add_task("a", TaskTypeId::new(0));
    /// let c = b.add_task("c", TaskTypeId::new(0));
    /// b.add_comm(a, c, 10.0)?;
    /// let g = b.build()?;
    /// let cp = g.critical_path(|_| Seconds::new(0.5), |_| Seconds::new(0.1));
    /// assert!((cp.value() - 1.1).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn critical_path<FT, FC>(&self, mut task_weight: FT, mut comm_weight: FC) -> Seconds
    where
        FT: FnMut(TaskId) -> Seconds,
        FC: FnMut(CommId) -> Seconds,
    {
        let mut finish = vec![Seconds::ZERO; self.tasks.len()];
        let mut longest = Seconds::ZERO;
        for &t in &self.topo {
            let mut start = Seconds::ZERO;
            for &(comm, pred) in &self.preds[t.index()] {
                let arrival = finish[pred.index()] + comm_weight(comm);
                start = start.max(arrival);
            }
            finish[t.index()] = start + task_weight(t);
            longest = longest.max(finish[t.index()]);
        }
        longest
    }

    /// Returns the distinct task types used by this graph, in ascending order.
    pub fn used_types(&self) -> Vec<TaskTypeId> {
        let mut types: Vec<_> = self.tasks.iter().map(|t| t.task_type).collect();
        types.sort_unstable();
        types.dedup();
        types
    }

    /// Counts tasks of the given type.
    pub fn count_of_type(&self, ty: TaskTypeId) -> usize {
        self.tasks.iter().filter(|t| t.task_type == ty).count()
    }
}

/// Incremental builder for [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct TaskGraphBuilder {
    name: String,
    period: Seconds,
    tasks: Vec<Task>,
    comms: Vec<Comm>,
}

impl TaskGraphBuilder {
    /// Starts a new task graph with the given name and repetition period.
    pub fn new(name: impl Into<String>, period: Seconds) -> Self {
        Self { name: name.into(), period, tasks: Vec::new(), comms: Vec::new() }
    }

    /// Adds a task and returns its identifier.
    pub fn add_task(&mut self, name: impl Into<String>, task_type: TaskTypeId) -> TaskId {
        let id = TaskId::new(self.tasks.len());
        self.tasks.push(Task { name: name.into(), task_type, deadline: None });
        id
    }

    /// Adds a task with an individual deadline `θ` and returns its identifier.
    pub fn add_task_with_deadline(
        &mut self,
        name: impl Into<String>,
        task_type: TaskTypeId,
        deadline: Seconds,
    ) -> TaskId {
        let id = TaskId::new(self.tasks.len());
        self.tasks.push(Task { name: name.into(), task_type, deadline: Some(deadline) });
        id
    }

    /// Sets or replaces the deadline of an existing task.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] if `task` was not added to this
    /// builder.
    pub fn set_deadline(&mut self, task: TaskId, deadline: Seconds) -> Result<(), ModelError> {
        let graph = self.name.clone();
        let t = self
            .tasks
            .get_mut(task.index())
            .ok_or(ModelError::UnknownTask { task, graph })?;
        t.deadline = Some(deadline);
        Ok(())
    }

    /// Adds a precedence/data edge and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] if either endpoint was not added
    /// to this builder, or [`ModelError::SelfLoop`] if `src == dst`.
    pub fn add_comm(
        &mut self,
        src: TaskId,
        dst: TaskId,
        data_units: f64,
    ) -> Result<CommId, ModelError> {
        for &t in &[src, dst] {
            if t.index() >= self.tasks.len() {
                return Err(ModelError::UnknownTask { task: t, graph: self.name.clone() });
            }
        }
        if src == dst {
            return Err(ModelError::SelfLoop { task: src, graph: self.name.clone() });
        }
        let id = CommId::new(self.comms.len());
        self.comms.push(Comm { src, dst, data_units });
        Ok(id)
    }

    /// Returns the number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Validates the graph and freezes it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyGraph`] for a graph without tasks,
    /// [`ModelError::InvalidPeriod`] for a non-positive or non-finite
    /// period, [`ModelError::InvalidDeadline`] for a non-positive deadline,
    /// and [`ModelError::CycleDetected`] if the edges are not acyclic.
    pub fn build(self) -> Result<TaskGraph, ModelError> {
        if self.tasks.is_empty() {
            return Err(ModelError::EmptyGraph { graph: self.name });
        }
        if !(self.period.value() > 0.0 && self.period.is_finite()) {
            return Err(ModelError::InvalidPeriod {
                graph: self.name,
                period: self.period.value(),
            });
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if let Some(d) = t.deadline {
                if !(d.value() > 0.0 && d.is_finite()) {
                    return Err(ModelError::InvalidDeadline {
                        task: TaskId::new(i),
                        graph: self.name,
                    });
                }
            }
        }

        let n = self.tasks.len();
        let mut succs: Vec<Vec<(CommId, TaskId)>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<(CommId, TaskId)>> = vec![Vec::new(); n];
        for (i, c) in self.comms.iter().enumerate() {
            succs[c.src.index()].push((CommId::new(i), c.dst));
            preds[c.dst.index()].push((CommId::new(i), c.src));
        }

        // Kahn's algorithm: detects cycles and produces the topological order.
        let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<TaskId> =
            (0..n).filter(|&i| indegree[i] == 0).map(TaskId::new).collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            topo.push(t);
            for &(_, next) in &succs[t.index()] {
                indegree[next.index()] -= 1;
                if indegree[next.index()] == 0 {
                    queue.push(next);
                }
            }
        }
        if topo.len() != n {
            return Err(ModelError::CycleDetected { graph: self.name });
        }

        Ok(TaskGraph {
            name: self.name,
            period: self.period,
            tasks: self.tasks,
            comms: self.comms,
            succs,
            preds,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(i: usize) -> TaskTypeId {
        TaskTypeId::new(i)
    }

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("diamond", Seconds::new(1.0));
        let a = b.add_task("a", ty(0));
        let l = b.add_task("l", ty(1));
        let r = b.add_task("r", ty(2));
        let s = b.add_task("s", ty(3));
        b.add_comm(a, l, 1.0).unwrap();
        b.add_comm(a, r, 2.0).unwrap();
        b.add_comm(l, s, 3.0).unwrap();
        b.add_comm(r, s, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond_with_adjacency() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.comm_count(), 4);
        assert_eq!(g.successors(TaskId::new(0)).len(), 2);
        assert_eq!(g.predecessors(TaskId::new(3)).len(), 2);
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![TaskId::new(0)]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![TaskId::new(3)]);
    }

    #[test]
    fn topological_order_respects_precedence() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.task_count()];
            for (i, &t) in g.topological_order().iter().enumerate() {
                pos[t.index()] = i;
            }
            pos
        };
        for (_, c) in g.comms() {
            assert!(pos[c.src().index()] < pos[c.dst().index()]);
        }
    }

    #[test]
    fn rejects_cycles() {
        let mut b = TaskGraphBuilder::new("cyc", Seconds::new(1.0));
        let a = b.add_task("a", ty(0));
        let c = b.add_task("c", ty(0));
        b.add_comm(a, c, 1.0).unwrap();
        b.add_comm(c, a, 1.0).unwrap();
        assert!(matches!(b.build(), Err(ModelError::CycleDetected { .. })));
    }

    #[test]
    fn rejects_self_loop_and_unknown_endpoints() {
        let mut b = TaskGraphBuilder::new("g", Seconds::new(1.0));
        let a = b.add_task("a", ty(0));
        assert!(matches!(b.add_comm(a, a, 1.0), Err(ModelError::SelfLoop { .. })));
        assert!(matches!(
            b.add_comm(a, TaskId::new(5), 1.0),
            Err(ModelError::UnknownTask { .. })
        ));
    }

    #[test]
    fn rejects_empty_graph_and_bad_period() {
        let b = TaskGraphBuilder::new("empty", Seconds::new(1.0));
        assert!(matches!(b.build(), Err(ModelError::EmptyGraph { .. })));

        let mut b = TaskGraphBuilder::new("bad", Seconds::ZERO);
        b.add_task("a", ty(0));
        assert!(matches!(b.build(), Err(ModelError::InvalidPeriod { .. })));

        let mut b = TaskGraphBuilder::new("nan", Seconds::new(f64::NAN));
        b.add_task("a", ty(0));
        assert!(matches!(b.build(), Err(ModelError::InvalidPeriod { .. })));
    }

    #[test]
    fn rejects_invalid_deadline() {
        let mut b = TaskGraphBuilder::new("g", Seconds::new(1.0));
        b.add_task_with_deadline("a", ty(0), Seconds::ZERO);
        assert!(matches!(b.build(), Err(ModelError::InvalidDeadline { .. })));
    }

    #[test]
    fn set_deadline_overwrites_and_validates_task() {
        let mut b = TaskGraphBuilder::new("g", Seconds::new(1.0));
        let a = b.add_task("a", ty(0));
        b.set_deadline(a, Seconds::new(0.5)).unwrap();
        assert!(b.set_deadline(TaskId::new(9), Seconds::new(0.5)).is_err());
        let g = b.build().unwrap();
        assert_eq!(g.task(a).deadline(), Some(Seconds::new(0.5)));
    }

    #[test]
    fn effective_deadline_clamps_to_period() {
        let mut b = TaskGraphBuilder::new("g", Seconds::new(1.0));
        let a = b.add_task_with_deadline("a", ty(0), Seconds::new(5.0));
        let c = b.add_task_with_deadline("c", ty(0), Seconds::new(0.3));
        let d = b.add_task("d", ty(0));
        let g = b.build().unwrap();
        assert_eq!(g.effective_deadline(a), Seconds::new(1.0));
        assert_eq!(g.effective_deadline(c), Seconds::new(0.3));
        assert_eq!(g.effective_deadline(d), Seconds::new(1.0));
    }

    #[test]
    fn critical_path_of_diamond() {
        let g = diamond();
        // task weight 1, comm weight = data units * 0.1
        let cp = g.critical_path(
            |_| Seconds::new(1.0),
            |c| Seconds::new(g.comm(c).data_units() * 0.1),
        );
        // a(1) + comm(0.2) + r(1) + comm(0.4) + s(1) = 3.6
        assert!((cp.value() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn critical_path_single_task() {
        let mut b = TaskGraphBuilder::new("one", Seconds::new(1.0));
        b.add_task("a", ty(0));
        let g = b.build().unwrap();
        let cp = g.critical_path(|_| Seconds::new(0.7), |_| Seconds::ZERO);
        assert!((cp.value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn used_types_deduplicates_and_sorts() {
        let mut b = TaskGraphBuilder::new("g", Seconds::new(1.0));
        b.add_task("a", ty(3));
        b.add_task("b", ty(1));
        b.add_task("c", ty(3));
        let g = b.build().unwrap();
        assert_eq!(g.used_types(), vec![ty(1), ty(3)]);
        assert_eq!(g.count_of_type(ty(3)), 2);
        assert_eq!(g.count_of_type(ty(0)), 0);
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
