//! Index-based identifiers for model entities.
//!
//! All model containers are arena-like `Vec`s; the identifiers below are
//! typed indices into those arenas ([C-NEWTYPE]). [`TaskId`] and [`CommId`]
//! are *mode-local* (two modes each have their own task 0), while
//! [`ModeId`], [`TaskTypeId`], [`PeId`] and [`ClId`] are global to a
//! [`System`](crate::System).
//!
//! # Examples
//!
//! ```
//! use momsynth_model::ids::{PeId, TaskId};
//!
//! let pe = PeId::new(1);
//! assert_eq!(pe.index(), 1);
//! assert_eq!(pe.to_string(), "PE1");
//! assert_ne!(TaskId::new(1).index(), TaskId::new(2).index());
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from an arena index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the arena index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_type!(
    /// A task within one mode's task graph (mode-local).
    TaskId,
    "t"
);

id_type!(
    /// A communication edge within one mode's task graph (mode-local).
    CommId,
    "c"
);

id_type!(
    /// A task type (e.g. *FFT*, *IDCT*), shared across modes.
    TaskTypeId,
    "TY"
);

id_type!(
    /// An operational mode of the top-level state machine.
    ModeId,
    "O"
);

id_type!(
    /// A processing element of the target architecture.
    PeId,
    "PE"
);

id_type!(
    /// A communication link of the target architecture.
    ClId,
    "CL"
);

id_type!(
    /// A mode transition edge of the top-level state machine.
    TransitionId,
    "T"
);

/// A task addressed globally: a `(mode, task)` pair.
///
/// # Examples
///
/// ```
/// use momsynth_model::ids::{GlobalTaskId, ModeId, TaskId};
///
/// let g = GlobalTaskId::new(ModeId::new(0), TaskId::new(3));
/// assert_eq!(g.mode, ModeId::new(0));
/// assert_eq!(g.task, TaskId::new(3));
/// assert_eq!(g.to_string(), "O0/t3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalTaskId {
    /// The mode containing the task.
    pub mode: ModeId,
    /// The mode-local task identifier.
    pub task: TaskId,
}

impl GlobalTaskId {
    /// Creates a global task identifier.
    #[inline]
    pub const fn new(mode: ModeId, task: TaskId) -> Self {
        Self { mode, task }
    }
}

impl fmt::Display for GlobalTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.mode, self.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_index() {
        assert_eq!(TaskId::new(7).index(), 7);
        assert_eq!(usize::from(PeId::new(2)), 2);
        assert_eq!(ModeId::new(0), ModeId::new(0));
        assert_ne!(ClId::new(0), ClId::new(1));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TaskId::new(3).to_string(), "t3");
        assert_eq!(CommId::new(1).to_string(), "c1");
        assert_eq!(TaskTypeId::new(4).to_string(), "TY4");
        assert_eq!(ModeId::new(2).to_string(), "O2");
        assert_eq!(PeId::new(0).to_string(), "PE0");
        assert_eq!(ClId::new(0).to_string(), "CL0");
        assert_eq!(TransitionId::new(5).to_string(), "T5");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let set: HashSet<_> = [PeId::new(0), PeId::new(1), PeId::new(0)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(TaskId::new(1) < TaskId::new(2));
    }

    #[test]
    fn global_task_id_orders_by_mode_then_task() {
        let a = GlobalTaskId::new(ModeId::new(0), TaskId::new(9));
        let b = GlobalTaskId::new(ModeId::new(1), TaskId::new(0));
        assert!(a < b);
    }

    #[test]
    fn ids_serde_round_trip() {
        let id = PeId::new(3);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "3");
        assert_eq!(serde_json::from_str::<PeId>(&json).unwrap(), id);
    }
}
