//! The target architecture: heterogeneous PEs connected by communication links.
//!
//! The architecture graph `G_A(P, L)` consists of processing elements
//! ([`Pe`]) — general-purpose processors, ASIPs, ASICs and FPGAs — and
//! communication links ([`Cl`]), each link a bus connecting two or more PEs.
//! Software PEs execute tasks sequentially; hardware PEs instantiate one
//! *core* per mapped task type (plus optional replicas) and run cores in
//! parallel. Any PE may be DVS-enabled ([`DvsCapability`]) — the paper
//! explicitly extends voltage scaling to hardware components.
//!
//! # Examples
//!
//! ```
//! use momsynth_model::{ArchitectureBuilder, Cl, DvsCapability, Pe, PeKind};
//! use momsynth_model::units::{Cells, Seconds, Volts, Watts};
//!
//! # fn main() -> Result<(), momsynth_model::ModelError> {
//! let mut b = ArchitectureBuilder::new();
//! let cpu = b.add_pe(
//!     Pe::software("CPU", PeKind::Gpp, Watts::from_milli(0.2))
//!         .with_dvs(DvsCapability::new(
//!             Volts::new(3.3),
//!             Volts::new(0.8),
//!             vec![Volts::new(1.2), Volts::new(2.1), Volts::new(3.3)],
//!         )),
//! );
//! let asic = b.add_pe(Pe::hardware(
//!     "ASIC",
//!     PeKind::Asic,
//!     Cells::new(600),
//!     Watts::from_milli(0.1),
//! ));
//! b.add_cl(Cl::bus(
//!     "BUS",
//!     vec![cpu, asic],
//!     Seconds::from_micros(1.0),
//!     Watts::from_milli(1.0),
//!     Watts::from_milli(0.05),
//! ))?;
//! let arch = b.build()?;
//! assert!(arch.connected(cpu, asic));
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{ClId, PeId};
use crate::units::{Cells, Seconds, Volts, Watts};

/// The kind of a processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeKind {
    /// General-purpose processor (software, sequential execution).
    Gpp,
    /// Application-specific instruction-set processor (software).
    Asip,
    /// Application-specific integrated circuit (hardware, static cores).
    Asic,
    /// Field-programmable gate array (hardware, reconfigurable cores).
    Fpga,
}

impl PeKind {
    /// Returns `true` for software PEs (GPP, ASIP), which sequentialise
    /// their mapped tasks.
    pub fn is_software(self) -> bool {
        matches!(self, Self::Gpp | Self::Asip)
    }

    /// Returns `true` for hardware PEs (ASIC, FPGA), which allocate cores
    /// and execute them in parallel.
    pub fn is_hardware(self) -> bool {
        !self.is_software()
    }

    /// Returns `true` if cores can be exchanged between modes at run time
    /// (only FPGAs are dynamically reconfigurable; ASIC cores are static).
    pub fn is_reconfigurable(self) -> bool {
        matches!(self, Self::Fpga)
    }
}

impl std::fmt::Display for PeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Gpp => "GPP",
            Self::Asip => "ASIP",
            Self::Asic => "ASIC",
            Self::Fpga => "FPGA",
        };
        f.write_str(s)
    }
}

/// Dynamic voltage scaling capability of a PE.
///
/// Execution characteristics in the technology library are specified at the
/// nominal supply voltage `v_max`; at a scaled voltage `V` the dynamic
/// energy shrinks by `(V / v_max)²` while execution time stretches
/// according to the alpha-power delay model (see `momsynth-dvs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvsCapability {
    v_max: Volts,
    v_threshold: Volts,
    levels: Vec<Volts>,
}

impl DvsCapability {
    /// Creates a DVS capability with the given nominal voltage, threshold
    /// voltage and discrete supply levels. Levels are sorted ascending;
    /// duplicates are removed. Validity is checked when the architecture is
    /// built.
    pub fn new(v_max: Volts, v_threshold: Volts, mut levels: Vec<Volts>) -> Self {
        levels.sort_by(|a, b| a.value().total_cmp(&b.value()));
        levels.dedup_by(|a, b| a.value() == b.value());
        Self { v_max, v_threshold, levels }
    }

    /// Returns the nominal (maximal) supply voltage `V_max`.
    pub fn v_max(&self) -> Volts {
        self.v_max
    }

    /// Returns the threshold voltage `V_t` of the delay model.
    pub fn v_threshold(&self) -> Volts {
        self.v_threshold
    }

    /// Returns the discrete supply levels, ascending.
    pub fn levels(&self) -> &[Volts] {
        &self.levels
    }

    /// Returns the lowest usable supply level.
    ///
    /// # Panics
    ///
    /// Panics if the capability has no levels; [`ArchitectureBuilder::build`]
    /// rejects such capabilities.
    pub fn v_min(&self) -> Volts {
        self.levels[0]
    }

    fn validate(&self, pe_name: &str) -> Result<(), ModelError> {
        let fail = |reason: &str| {
            Err(ModelError::InvalidDvs { pe: pe_name.to_owned(), reason: reason.to_owned() })
        };
        if self.levels.is_empty() {
            return fail("no discrete supply levels");
        }
        if !(self.v_max.value() > 0.0 && self.v_max.is_finite()) {
            return fail("nominal voltage must be positive");
        }
        if !(self.v_threshold.value() >= 0.0 && self.v_threshold.is_finite()) {
            return fail("threshold voltage must be non-negative");
        }
        for level in &self.levels {
            if level.value() <= self.v_threshold.value() {
                return fail("every level must exceed the threshold voltage");
            }
            if level.value() > self.v_max.value() + 1e-12 {
                return fail("levels must not exceed the nominal voltage");
            }
        }
        if (self.levels[self.levels.len() - 1].value() - self.v_max.value()).abs() > 1e-9 {
            return fail("the highest level must equal the nominal voltage");
        }
        Ok(())
    }
}

/// A processing element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pe {
    name: String,
    kind: PeKind,
    area: Option<Cells>,
    static_power: Watts,
    dvs: Option<DvsCapability>,
    reconfig_time_per_cell: Seconds,
}

impl Pe {
    /// Creates a software PE (GPP or ASIP).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a hardware kind; use [`Pe::hardware`] instead.
    pub fn software(name: impl Into<String>, kind: PeKind, static_power: Watts) -> Self {
        assert!(kind.is_software(), "Pe::software requires a software PeKind");
        Self {
            name: name.into(),
            kind,
            area: None,
            static_power,
            dvs: None,
            reconfig_time_per_cell: Seconds::ZERO,
        }
    }

    /// Creates a hardware PE (ASIC or FPGA) with the given area capacity.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a software kind; use [`Pe::software`] instead.
    pub fn hardware(
        name: impl Into<String>,
        kind: PeKind,
        area: Cells,
        static_power: Watts,
    ) -> Self {
        assert!(kind.is_hardware(), "Pe::hardware requires a hardware PeKind");
        Self {
            name: name.into(),
            kind,
            area: Some(area),
            static_power,
            dvs: None,
            reconfig_time_per_cell: Seconds::ZERO,
        }
    }

    /// Enables dynamic voltage scaling on this PE.
    #[must_use]
    pub fn with_dvs(mut self, dvs: DvsCapability) -> Self {
        self.dvs = Some(dvs);
        self
    }

    /// Sets the reconfiguration time per cell (meaningful for FPGAs; the
    /// time to reconfigure a set of cores is their total area times this).
    #[must_use]
    pub fn with_reconfig_time_per_cell(mut self, time: Seconds) -> Self {
        self.reconfig_time_per_cell = time;
        self
    }

    /// Returns the PE's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the PE kind.
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// Returns the area capacity for hardware PEs, `None` for software PEs.
    pub fn area(&self) -> Option<Cells> {
        self.area
    }

    /// Returns the static power drawn while the PE is powered on.
    pub fn static_power(&self) -> Watts {
        self.static_power
    }

    /// Returns the DVS capability, if the PE is DVS-enabled.
    pub fn dvs(&self) -> Option<&DvsCapability> {
        self.dvs.as_ref()
    }

    /// Returns the per-cell reconfiguration time (zero for non-FPGAs).
    pub fn reconfig_time_per_cell(&self) -> Seconds {
        self.reconfig_time_per_cell
    }
}

/// A communication link: a bus connecting two or more PEs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cl {
    name: String,
    endpoints: Vec<PeId>,
    time_per_data_unit: Seconds,
    transfer_power: Watts,
    static_power: Watts,
}

impl Cl {
    /// Creates a bus connecting `endpoints`.
    ///
    /// A transfer of `d` data units occupies the bus for
    /// `d × time_per_data_unit` and dissipates `transfer_power` while
    /// active; `static_power` is drawn whenever the link is powered on.
    pub fn bus(
        name: impl Into<String>,
        endpoints: Vec<PeId>,
        time_per_data_unit: Seconds,
        transfer_power: Watts,
        static_power: Watts,
    ) -> Self {
        Self {
            name: name.into(),
            endpoints,
            time_per_data_unit,
            transfer_power,
            static_power,
        }
    }

    /// Returns the link's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the PEs attached to this link.
    pub fn endpoints(&self) -> &[PeId] {
        &self.endpoints
    }

    /// Returns `true` if `pe` is attached to this link.
    pub fn connects(&self, pe: PeId) -> bool {
        self.endpoints.contains(&pe)
    }

    /// Returns the bus occupancy time per data unit.
    pub fn time_per_data_unit(&self) -> Seconds {
        self.time_per_data_unit
    }

    /// Returns the dynamic power drawn during a transfer (`P_C`).
    pub fn transfer_power(&self) -> Watts {
        self.transfer_power
    }

    /// Returns the static power drawn while the link is powered on.
    pub fn static_power(&self) -> Watts {
        self.static_power
    }

    /// Returns the time to transfer `data_units` over this link (`t_C`).
    pub fn transfer_time(&self, data_units: f64) -> Seconds {
        self.time_per_data_unit * data_units
    }
}

/// A validated architecture graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    pes: Vec<Pe>,
    cls: Vec<Cl>,
}

impl Architecture {
    /// Returns the number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Returns the number of communication links.
    pub fn cl_count(&self) -> usize {
        self.cls.len()
    }

    /// Returns the PE with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    pub fn pe(&self, id: PeId) -> &Pe {
        &self.pes[id.index()]
    }

    /// Returns the link with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    pub fn cl(&self, id: ClId) -> &Cl {
        &self.cls[id.index()]
    }

    /// Iterates over `(id, pe)` pairs in identifier order.
    pub fn pes(&self) -> impl Iterator<Item = (PeId, &Pe)> + '_ {
        self.pes.iter().enumerate().map(|(i, p)| (PeId::new(i), p))
    }

    /// Iterates over `(id, cl)` pairs in identifier order.
    pub fn cls(&self) -> impl Iterator<Item = (ClId, &Cl)> + '_ {
        self.cls.iter().enumerate().map(|(i, c)| (ClId::new(i), c))
    }

    /// Returns all PE identifiers.
    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.pes.len()).map(PeId::new)
    }

    /// Returns all link identifiers.
    pub fn cl_ids(&self) -> impl Iterator<Item = ClId> + '_ {
        (0..self.cls.len()).map(ClId::new)
    }

    /// Returns the links that connect both `a` and `b`.
    pub fn cls_between(&self, a: PeId, b: PeId) -> impl Iterator<Item = ClId> + '_ {
        self.cls
            .iter()
            .enumerate()
            .filter(move |(_, cl)| cl.connects(a) && cl.connects(b))
            .map(|(i, _)| ClId::new(i))
    }

    /// Returns `true` if at least one link connects `a` and `b` (or `a == b`).
    pub fn connected(&self, a: PeId, b: PeId) -> bool {
        a == b || self.cls_between(a, b).next().is_some()
    }

    /// Returns the identifiers of all software PEs.
    pub fn software_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.pes()
            .filter(|(_, p)| p.kind().is_software())
            .map(|(id, _)| id)
    }

    /// Returns the identifiers of all hardware PEs.
    pub fn hardware_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.pes()
            .filter(|(_, p)| p.kind().is_hardware())
            .map(|(id, _)| id)
    }

    /// Returns the identifiers of all DVS-enabled PEs.
    pub fn dvs_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.pes().filter(|(_, p)| p.dvs().is_some()).map(|(id, _)| id)
    }
}

/// Incremental builder for [`Architecture`].
#[derive(Debug, Clone, Default)]
pub struct ArchitectureBuilder {
    pes: Vec<Pe>,
    cls: Vec<Cl>,
}

impl ArchitectureBuilder {
    /// Starts an empty architecture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a processing element and returns its identifier.
    pub fn add_pe(&mut self, pe: Pe) -> PeId {
        let id = PeId::new(self.pes.len());
        self.pes.push(pe);
        id
    }

    /// Adds a communication link and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownPe`] if an endpoint was not added, or
    /// [`ModelError::DegenerateLink`] if fewer than two distinct PEs are
    /// connected.
    pub fn add_cl(&mut self, cl: Cl) -> Result<ClId, ModelError> {
        let mut distinct = cl.endpoints.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < 2 {
            return Err(ModelError::DegenerateLink { link: cl.name.clone() });
        }
        for &pe in &cl.endpoints {
            if pe.index() >= self.pes.len() {
                return Err(ModelError::UnknownPe { pe });
            }
        }
        let id = ClId::new(self.cls.len());
        self.cls.push(cl);
        Ok(id)
    }

    /// Validates the architecture and freezes it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoPes`] for an empty architecture and
    /// [`ModelError::InvalidDvs`] for malformed DVS capabilities.
    pub fn build(self) -> Result<Architecture, ModelError> {
        if self.pes.is_empty() {
            return Err(ModelError::NoPes);
        }
        for pe in &self.pes {
            if let Some(dvs) = &pe.dvs {
                dvs.validate(&pe.name)?;
            }
        }
        Ok(Architecture { pes: self.pes, cls: self.cls })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dvs() -> DvsCapability {
        DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(3.3), Volts::new(1.2), Volts::new(2.1)],
        )
    }

    fn two_pe_arch() -> (Architecture, PeId, PeId, ClId) {
        let mut b = ArchitectureBuilder::new();
        let cpu = b.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.2)));
        let asic =
            b.add_pe(Pe::hardware("asic", PeKind::Asic, Cells::new(600), Watts::from_milli(0.1)));
        let bus = b
            .add_cl(Cl::bus(
                "bus",
                vec![cpu, asic],
                Seconds::from_micros(1.0),
                Watts::from_milli(1.0),
                Watts::from_milli(0.05),
            ))
            .unwrap();
        (b.build().unwrap(), cpu, asic, bus)
    }

    #[test]
    fn pe_kind_classification() {
        assert!(PeKind::Gpp.is_software());
        assert!(PeKind::Asip.is_software());
        assert!(PeKind::Asic.is_hardware());
        assert!(PeKind::Fpga.is_hardware());
        assert!(PeKind::Fpga.is_reconfigurable());
        assert!(!PeKind::Asic.is_reconfigurable());
        assert_eq!(PeKind::Fpga.to_string(), "FPGA");
    }

    #[test]
    fn dvs_levels_are_sorted_and_deduped() {
        let dvs = DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(3.3), Volts::new(1.2), Volts::new(1.2)],
        );
        assert_eq!(dvs.levels(), &[Volts::new(1.2), Volts::new(3.3)]);
        assert_eq!(dvs.v_min(), Volts::new(1.2));
        assert_eq!(dvs.v_max(), Volts::new(3.3));
    }

    #[test]
    fn dvs_validation_rejects_malformed_capabilities() {
        let check = |dvs: DvsCapability| {
            let mut b = ArchitectureBuilder::new();
            b.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(dvs));
            b.build()
        };
        // empty levels
        assert!(check(DvsCapability::new(Volts::new(3.3), Volts::new(0.8), vec![])).is_err());
        // level below threshold
        assert!(check(DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(0.5), Volts::new(3.3)],
        ))
        .is_err());
        // level above nominal
        assert!(check(DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(3.3), Volts::new(5.0)],
        ))
        .is_err());
        // highest level below nominal
        assert!(check(DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(1.2), Volts::new(2.0)],
        ))
        .is_err());
        // well-formed
        assert!(check(sample_dvs()).is_ok());
    }

    #[test]
    #[should_panic(expected = "software PeKind")]
    fn software_constructor_rejects_hardware_kind() {
        let _ = Pe::software("x", PeKind::Asic, Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "hardware PeKind")]
    fn hardware_constructor_rejects_software_kind() {
        let _ = Pe::hardware("x", PeKind::Gpp, Cells::new(1), Watts::ZERO);
    }

    #[test]
    fn architecture_queries() {
        let (arch, cpu, asic, bus) = two_pe_arch();
        assert_eq!(arch.pe_count(), 2);
        assert_eq!(arch.cl_count(), 1);
        assert!(arch.connected(cpu, asic));
        assert!(arch.connected(cpu, cpu));
        assert_eq!(arch.cls_between(cpu, asic).collect::<Vec<_>>(), vec![bus]);
        assert_eq!(arch.software_pes().collect::<Vec<_>>(), vec![cpu]);
        assert_eq!(arch.hardware_pes().collect::<Vec<_>>(), vec![asic]);
        assert_eq!(arch.dvs_pes().count(), 0);
        assert_eq!(arch.pe(asic).area(), Some(Cells::new(600)));
        assert_eq!(arch.pe(cpu).area(), None);
    }

    #[test]
    fn unconnected_pes_are_not_connected() {
        let mut b = ArchitectureBuilder::new();
        let a = b.add_pe(Pe::software("a", PeKind::Gpp, Watts::ZERO));
        let c = b.add_pe(Pe::software("c", PeKind::Gpp, Watts::ZERO));
        let arch = b.build().unwrap();
        assert!(!arch.connected(a, c));
    }

    #[test]
    fn link_validation() {
        let mut b = ArchitectureBuilder::new();
        let a = b.add_pe(Pe::software("a", PeKind::Gpp, Watts::ZERO));
        assert!(matches!(
            b.add_cl(Cl::bus("bad", vec![a], Seconds::ZERO, Watts::ZERO, Watts::ZERO)),
            Err(ModelError::DegenerateLink { .. })
        ));
        assert!(matches!(
            b.add_cl(Cl::bus(
                "bad2",
                vec![a, PeId::new(9)],
                Seconds::ZERO,
                Watts::ZERO,
                Watts::ZERO
            )),
            Err(ModelError::UnknownPe { .. })
        ));
        // duplicate endpoints only do not make a link
        assert!(matches!(
            b.add_cl(Cl::bus("dup", vec![a, a], Seconds::ZERO, Watts::ZERO, Watts::ZERO)),
            Err(ModelError::DegenerateLink { .. })
        ));
    }

    #[test]
    fn empty_architecture_is_rejected() {
        assert!(matches!(ArchitectureBuilder::new().build(), Err(ModelError::NoPes)));
    }

    #[test]
    fn transfer_time_scales_with_data() {
        let cl = Cl::bus(
            "bus",
            vec![PeId::new(0), PeId::new(1)],
            Seconds::from_micros(2.0),
            Watts::ZERO,
            Watts::ZERO,
        );
        assert!((cl.transfer_time(500.0).as_millis() - 1.0).abs() < 1e-12);
        assert_eq!(cl.transfer_time(0.0), Seconds::ZERO);
    }

    #[test]
    fn serde_round_trip_preserves_architecture() {
        let (arch, ..) = two_pe_arch();
        let json = serde_json::to_string(&arch).unwrap();
        let back: Architecture = serde_json::from_str(&json).unwrap();
        assert_eq!(back, arch);
    }

    #[test]
    fn build_rejects_malformed_dvs_capabilities() {
        let build_with = |dvs: DvsCapability| {
            let mut b = ArchitectureBuilder::new();
            b.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.2)).with_dvs(dvs));
            b.build()
        };
        let expect_reason = |dvs: DvsCapability, fragment: &str| match build_with(dvs) {
            Err(crate::error::ModelError::InvalidDvs { pe, reason }) => {
                assert_eq!(pe, "cpu");
                assert!(reason.contains(fragment), "`{reason}` should mention `{fragment}`");
            }
            other => panic!("expected InvalidDvs({fragment}), got {other:?}"),
        };

        expect_reason(
            DvsCapability::new(Volts::new(3.3), Volts::new(0.8), vec![]),
            "no discrete supply levels",
        );
        expect_reason(
            DvsCapability::new(Volts::new(0.0), Volts::new(0.0), vec![Volts::new(0.0)]),
            "nominal voltage",
        );
        expect_reason(
            DvsCapability::new(Volts::new(3.3), Volts::new(-0.1), vec![Volts::new(3.3)]),
            "threshold voltage",
        );
        // A level at or below the threshold voltage.
        expect_reason(
            DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(0.5), Volts::new(3.3)],
            ),
            "exceed the threshold",
        );
        // A level above the nominal voltage.
        expect_reason(
            DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(3.3), Volts::new(4.0)],
            ),
            "must not exceed",
        );
        // Highest level short of the nominal voltage.
        expect_reason(
            DvsCapability::new(Volts::new(3.3), Volts::new(0.8), vec![Volts::new(2.0)]),
            "highest level",
        );
        // The sample capability is fine.
        assert!(build_with(sample_dvs()).is_ok());
    }
}
