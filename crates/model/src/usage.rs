//! Deriving mode execution probabilities from usage statistics.
//!
//! The paper assumes the execution probabilities `Ψ_O` are *given*,
//! obtained from "statistical information collected from several different
//! users". This module implements that derivation: a [`UsageModel`] is a
//! semi-Markov usage profile — for every mode a mean sojourn time and for
//! every transition a relative firing weight — from which
//! [`UsageModel::mode_probabilities`] computes the long-run fraction of
//! time spent in each mode (the stationary distribution of the embedded
//! Markov chain, weighted by sojourn times).
//!
//! Combined with [`Omsm::with_probabilities`](crate::Omsm::with_probabilities)
//! this supports per-user-profile sensitivity studies: synthesise the same
//! system for a "talker", a "music lover" and a "photographer" and compare
//! the resulting implementations.
//!
//! # Examples
//!
//! ```
//! use momsynth_model::usage::UsageModel;
//! use momsynth_model::units::Seconds;
//!
//! // Two modes: long sojourns in mode 0, brief visits to mode 1.
//! let mut usage = UsageModel::new(2);
//! usage.set_sojourn(0, Seconds::new(90.0));
//! usage.set_sojourn(1, Seconds::new(10.0));
//! usage.set_transition_weight(0, 1, 1.0);
//! usage.set_transition_weight(1, 0, 1.0);
//! let psi = usage.mode_probabilities().unwrap();
//! assert!((psi[0] - 0.9).abs() < 1e-9);
//! assert!((psi[1] - 0.1).abs() < 1e-9);
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Seconds;

/// Error produced when a usage model cannot yield a probability vector.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UsageError {
    /// A mode has no outgoing transition weight, so the chain is absorbing.
    NoExit {
        /// Index of the absorbing mode.
        mode: usize,
    },
    /// The power iteration did not converge (reducible or periodic chain).
    NotErgodic,
    /// A sojourn time or weight is invalid (non-finite or negative).
    InvalidParameter {
        /// Human-readable description of the defect.
        detail: String,
    },
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoExit { mode } => write!(f, "mode {mode} has no outgoing transitions"),
            Self::NotErgodic => write!(f, "usage chain is not ergodic"),
            Self::InvalidParameter { detail } => write!(f, "invalid usage parameter: {detail}"),
        }
    }
}

impl std::error::Error for UsageError {}

/// A semi-Markov usage profile over the modes of an OMSM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageModel {
    sojourn: Vec<Seconds>,
    /// `weights[from][to]`: relative frequency of taking that transition
    /// when leaving `from`; rows are normalised internally.
    weights: Vec<Vec<f64>>,
}

impl UsageModel {
    /// Creates a profile for `mode_count` modes with unit sojourn times
    /// and no transitions.
    pub fn new(mode_count: usize) -> Self {
        Self {
            sojourn: vec![Seconds::new(1.0); mode_count],
            weights: vec![vec![0.0; mode_count]; mode_count],
        }
    }

    /// Number of modes covered.
    pub fn mode_count(&self) -> usize {
        self.sojourn.len()
    }

    /// Sets the mean time spent in `mode` per visit.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn set_sojourn(&mut self, mode: usize, time: Seconds) {
        self.sojourn[mode] = time;
    }

    /// Sets the relative weight of the transition `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set_transition_weight(&mut self, from: usize, to: usize, weight: f64) {
        self.weights[from][to] = weight;
    }

    /// Computes the long-run fraction of operational time per mode.
    ///
    /// The stationary distribution `π` of the embedded jump chain is found
    /// by power iteration; the time fractions are
    /// `Ψ_i = π_i · s_i / Σ_j π_j · s_j` with `s` the sojourn times.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError::NoExit`] for absorbing modes,
    /// [`UsageError::InvalidParameter`] for negative or non-finite inputs
    /// and [`UsageError::NotErgodic`] when the iteration fails to
    /// converge.
    pub fn mode_probabilities(&self) -> Result<Vec<f64>, UsageError> {
        let n = self.mode_count();
        if n == 0 {
            return Err(UsageError::InvalidParameter { detail: "no modes".into() });
        }
        if n == 1 {
            return Ok(vec![1.0]);
        }
        for (i, &s) in self.sojourn.iter().enumerate() {
            if !(s.value() > 0.0 && s.is_finite()) {
                return Err(UsageError::InvalidParameter {
                    detail: format!("sojourn time of mode {i} must be positive"),
                });
            }
        }
        // Row-normalised transition matrix of the embedded chain.
        let mut p = vec![vec![0.0; n]; n];
        for (i, row) in self.weights.iter().enumerate() {
            let mut total = 0.0;
            for (j, &w) in row.iter().enumerate() {
                if !(w >= 0.0 && w.is_finite()) {
                    return Err(UsageError::InvalidParameter {
                        detail: format!("weight {i}->{j} must be non-negative"),
                    });
                }
                if i != j {
                    total += w;
                }
            }
            if total <= 0.0 {
                return Err(UsageError::NoExit { mode: i });
            }
            for j in 0..n {
                if i != j {
                    p[i][j] = row[j] / total;
                }
            }
        }
        // Damped power iteration (the damping removes periodicity).
        let damping = 0.5;
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..10_000 {
            let mut next = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    next[j] += pi[i] * p[i][j];
                }
            }
            let mut delta = 0.0;
            for j in 0..n {
                next[j] = damping * next[j] + (1.0 - damping) * pi[j];
                delta += (next[j] - pi[j]).abs();
            }
            pi = next;
            if delta < 1e-14 {
                let total_time: f64 =
                    pi.iter().zip(&self.sojourn).map(|(&w, &s)| w * s.value()).sum();
                return Ok(pi
                    .iter()
                    .zip(&self.sojourn)
                    .map(|(&w, &s)| w * s.value() / total_time)
                    .collect());
            }
        }
        Err(UsageError::NotErgodic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_mode_cycle_weights_by_sojourn() {
        let mut u = UsageModel::new(2);
        u.set_sojourn(0, Seconds::new(74.0));
        u.set_sojourn(1, Seconds::new(26.0));
        u.set_transition_weight(0, 1, 3.0);
        u.set_transition_weight(1, 0, 5.0); // normalised away: single exits
        let psi = u.mode_probabilities().unwrap();
        assert!((psi[0] - 0.74).abs() < 1e-9);
        assert!((psi[1] - 0.26).abs() < 1e-9);
    }

    #[test]
    fn branching_chain_matches_analytic_solution() {
        // 0 -> 1 (2/3), 0 -> 2 (1/3); 1 -> 0; 2 -> 0. Equal sojourns.
        // Embedded chain stationary: pi0 = 1/2, pi1 = 1/3, pi2 = 1/6.
        let mut u = UsageModel::new(3);
        u.set_transition_weight(0, 1, 2.0);
        u.set_transition_weight(0, 2, 1.0);
        u.set_transition_weight(1, 0, 1.0);
        u.set_transition_weight(2, 0, 1.0);
        let psi = u.mode_probabilities().unwrap();
        assert!((psi[0] - 0.5).abs() < 1e-9, "{psi:?}");
        assert!((psi[1] - 1.0 / 3.0).abs() < 1e-9);
        assert!((psi[2] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one_and_are_non_negative() {
        let mut u = UsageModel::new(4);
        for i in 0..4 {
            u.set_sojourn(i, Seconds::new(1.0 + i as f64));
            for j in 0..4 {
                if i != j {
                    u.set_transition_weight(i, j, ((i * 7 + j * 3) % 5 + 1) as f64);
                }
            }
        }
        let psi = u.mode_probabilities().unwrap();
        assert!((psi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(psi.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn absorbing_mode_is_rejected() {
        let mut u = UsageModel::new(2);
        u.set_transition_weight(0, 1, 1.0);
        assert_eq!(u.mode_probabilities().unwrap_err(), UsageError::NoExit { mode: 1 });
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut u = UsageModel::new(2);
        u.set_transition_weight(0, 1, 1.0);
        u.set_transition_weight(1, 0, 1.0);
        u.set_sojourn(0, Seconds::ZERO);
        assert!(matches!(
            u.mode_probabilities(),
            Err(UsageError::InvalidParameter { .. })
        ));
        let mut u = UsageModel::new(2);
        u.set_transition_weight(0, 1, -1.0);
        u.set_transition_weight(1, 0, 1.0);
        assert!(matches!(
            u.mode_probabilities(),
            Err(UsageError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn single_mode_is_certain() {
        let u = UsageModel::new(1);
        assert_eq!(u.mode_probabilities().unwrap(), vec![1.0]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut u = UsageModel::new(2);
        u.set_transition_weight(0, 0, 100.0);
        u.set_transition_weight(0, 1, 1.0);
        u.set_transition_weight(1, 0, 1.0);
        let psi = u.mode_probabilities().unwrap();
        assert!((psi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let mut u = UsageModel::new(2);
        u.set_sojourn(0, Seconds::new(2.0));
        u.set_transition_weight(0, 1, 1.0);
        u.set_transition_weight(1, 0, 1.0);
        let json = serde_json::to_string(&u).unwrap();
        assert_eq!(serde_json::from_str::<UsageModel>(&json).unwrap(), u);
    }
}
