//! The complete co-synthesis problem instance.
//!
//! A [`System`] bundles the functional specification ([`Omsm`]), the
//! allocated target architecture ([`Architecture`]) and the technology
//! library ([`TechLibrary`]), and performs the cross-validation that none
//! of the three can do alone: every task type used by any mode must have at
//! least one implementation on an existing PE, implementation rows must
//! reference valid PEs, and execution characteristics must be physically
//! meaningful.
//!
//! # Examples
//!
//! See [`crate`]-level documentation for a complete worked example.

use serde::{Deserialize, Serialize};

use crate::arch::Architecture;
use crate::error::ModelError;
use crate::ids::{GlobalTaskId, ModeId, PeId, TaskId, TaskTypeId};
use crate::omsm::Omsm;
use crate::tech::TechLibrary;
use crate::units::Cells;

/// A validated co-synthesis problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    name: String,
    omsm: Omsm,
    arch: Architecture,
    tech: TechLibrary,
}

impl System {
    /// Assembles and cross-validates a system.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTaskType`] if a task references a type
    /// missing from the library, [`ModelError::UnknownPe`] if an
    /// implementation references a PE outside the architecture,
    /// [`ModelError::InvalidImplementation`] for non-positive execution
    /// times, negative powers, area on software PEs or missing area on
    /// hardware PEs, [`ModelError::UnimplementableType`] if a used type
    /// has no implementation at all, and [`ModelError::Unreachable`] if a
    /// communication edge has no connected candidate PE pair (a fully
    /// disconnected architecture).
    pub fn new(
        name: impl Into<String>,
        omsm: Omsm,
        arch: Architecture,
        tech: TechLibrary,
    ) -> Result<Self, ModelError> {
        // Implementation rows must reference valid PEs and be physically
        // meaningful.
        for ty in tech.type_ids() {
            for (pe, imp) in tech.impls_of(ty) {
                if pe.index() >= arch.pe_count() {
                    return Err(ModelError::UnknownPe { pe });
                }
                let invalid = |reason: &str| ModelError::InvalidImplementation {
                    task_type: ty,
                    pe,
                    reason: reason.to_owned(),
                };
                if !(imp.exec_time().value() > 0.0 && imp.exec_time().is_finite()) {
                    return Err(invalid("execution time must be positive"));
                }
                if !(imp.dyn_power().value() >= 0.0 && imp.dyn_power().is_finite()) {
                    return Err(invalid("dynamic power must be non-negative"));
                }
                let kind = arch.pe(pe).kind();
                if kind.is_software() && imp.area() != Cells::ZERO {
                    return Err(invalid("software implementations must not occupy area"));
                }
                if kind.is_hardware() && imp.area() == Cells::ZERO {
                    return Err(invalid("hardware implementations must declare core area"));
                }
            }
        }
        // Every used type must exist and be implementable somewhere.
        for (_, mode) in omsm.modes() {
            for (_, task) in mode.graph().tasks() {
                let ty = task.task_type();
                if !tech.contains_type(ty) {
                    return Err(ModelError::UnknownTaskType { task_type: ty });
                }
                if tech.pes_supporting(ty).next().is_none() {
                    return Err(ModelError::UnimplementableType { task_type: ty });
                }
            }
        }
        // Every communication edge needs at least one connected candidate
        // PE pair, or no mapping can ever route it. (Joint routability of
        // a *complete* mapping is the synthesiser's problem; a single
        // fully disconnected edge is a specification error.)
        for (_, mode) in omsm.modes() {
            let graph = mode.graph();
            for (_, comm) in graph.comms() {
                let src_ty = graph.task(comm.src()).task_type();
                let dst_ty = graph.task(comm.dst()).task_type();
                let routable = tech.pes_supporting(src_ty).any(|a| {
                    tech.pes_supporting(dst_ty).any(|b| arch.connected(a, b))
                });
                if !routable {
                    return Err(ModelError::Unreachable {
                        from: tech.pes_supporting(src_ty).next().expect("checked above"),
                        to: tech.pes_supporting(dst_ty).next().expect("checked above"),
                    });
                }
            }
        }
        Ok(Self { name: name.into(), omsm, arch, tech })
    }

    /// Returns the system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the functional specification.
    pub fn omsm(&self) -> &Omsm {
        &self.omsm
    }

    /// Returns the target architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// Returns the technology library.
    pub fn tech(&self) -> &TechLibrary {
        &self.tech
    }

    /// Returns the task type of a globally addressed task.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this system.
    pub fn task_type_of(&self, id: GlobalTaskId) -> TaskTypeId {
        self.omsm.mode(id.mode).graph().task(id.task).task_type()
    }

    /// Returns the PEs able to execute the given task, ascending.
    pub fn candidate_pes(&self, id: GlobalTaskId) -> Vec<PeId> {
        self.tech.pes_supporting(self.task_type_of(id)).collect()
    }

    /// Iterates over all tasks of all modes in `(mode, task)` order.
    pub fn global_tasks(&self) -> impl Iterator<Item = GlobalTaskId> + '_ {
        self.omsm.modes().flat_map(|(mode, m)| {
            m.graph().task_ids().map(move |task| GlobalTaskId::new(mode, task))
        })
    }

    /// Returns the distinct task types shared by two or more modes — the
    /// hardware-sharing opportunities the paper highlights.
    pub fn shared_types(&self) -> Vec<TaskTypeId> {
        let mut counts = vec![0usize; self.tech.type_count()];
        for (_, mode) in self.omsm.modes() {
            for ty in mode.graph().used_types() {
                counts[ty.index()] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= 2)
            .map(|(i, _)| TaskTypeId::new(i))
            .collect()
    }

    /// Formats a short human-readable summary (modes, tasks, PEs, links).
    pub fn summary(&self) -> String {
        format!(
            "{}: {} modes, {} tasks, {} comms, {} PEs, {} CLs, {} task types",
            self.name,
            self.omsm.mode_count(),
            self.omsm.total_task_count(),
            self.omsm.total_comm_count(),
            self.arch.pe_count(),
            self.arch.cl_count(),
            self.tech.type_count(),
        )
    }
}

/// Convenience handle naming one mode of a system; used pervasively by the
/// scheduling and power layers.
#[derive(Debug, Clone, Copy)]
pub struct ModeRef<'a> {
    system: &'a System,
    mode: ModeId,
}

impl<'a> ModeRef<'a> {
    /// Creates a handle for `mode` of `system`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` does not belong to `system`.
    pub fn new(system: &'a System, mode: ModeId) -> Self {
        assert!(
            mode.index() < system.omsm().mode_count(),
            "mode {mode} out of range for system `{}`",
            system.name()
        );
        Self { system, mode }
    }

    /// Returns the owning system.
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// Returns the mode identifier.
    pub fn id(&self) -> ModeId {
        self.mode
    }

    /// Returns the mode's task graph.
    pub fn graph(&self) -> &'a crate::task_graph::TaskGraph {
        self.system.omsm().mode(self.mode).graph()
    }

    /// Returns the mode's execution probability.
    pub fn probability(&self) -> f64 {
        self.system.omsm().mode(self.mode).probability()
    }

    /// Returns the global identifier of a mode-local task.
    pub fn global(&self, task: TaskId) -> GlobalTaskId {
        GlobalTaskId::new(self.mode, task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchitectureBuilder, Cl, Pe, PeKind};
    use crate::omsm::OmsmBuilder;
    use crate::task_graph::TaskGraphBuilder;
    use crate::tech::{Implementation, TechLibraryBuilder};
    use crate::units::{Seconds, Watts};

    fn build_parts(
        sw_time: Seconds,
    ) -> (Omsm, Architecture, TechLibrary, TaskTypeId, TaskTypeId) {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");

        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let asic = arch.add_pe(Pe::hardware(
            "asic",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, asic],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();

        tech.set_impl(ta, cpu, Implementation::software(sw_time, Watts::from_milli(500.0)));
        tech.set_impl(
            ta,
            asic,
            Implementation::hardware(
                Seconds::from_millis(2.0),
                Watts::from_milli(5.0),
                Cells::new(240),
            ),
        );
        tech.set_impl(tb, cpu, Implementation::software(sw_time, Watts::from_milli(700.0)));

        let mut g0 = TaskGraphBuilder::new("m0", Seconds::from_millis(100.0));
        let t0 = g0.add_task("x", ta);
        let t1 = g0.add_task("y", tb);
        g0.add_comm(t0, t1, 64.0).unwrap();
        let mut g1 = TaskGraphBuilder::new("m1", Seconds::from_millis(100.0));
        g1.add_task("z", ta);

        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("m0", 0.4, g0.build().unwrap());
        let m1 = omsm.add_mode("m1", 0.6, g1.build().unwrap());
        omsm.add_transition(m0, m1, Seconds::from_millis(10.0)).unwrap();

        (omsm.build().unwrap(), arch.build().unwrap(), tech.build(), ta, tb)
    }

    fn sample_system() -> System {
        let (omsm, arch, tech, ..) = build_parts(Seconds::from_millis(20.0));
        System::new("sample", omsm, arch, tech).unwrap()
    }

    #[test]
    fn valid_system_builds_and_summarises() {
        let sys = sample_system();
        assert_eq!(sys.name(), "sample");
        let s = sys.summary();
        assert!(s.contains("2 modes"));
        assert!(s.contains("3 tasks"));
        assert!(s.contains("2 PEs"));
    }

    #[test]
    fn global_tasks_enumerates_all_modes() {
        let sys = sample_system();
        let all: Vec<_> = sys.global_tasks().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], GlobalTaskId::new(ModeId::new(0), TaskId::new(0)));
        assert_eq!(all[2], GlobalTaskId::new(ModeId::new(1), TaskId::new(0)));
    }

    #[test]
    fn candidate_pes_follow_library_support() {
        let sys = sample_system();
        let g0t0 = GlobalTaskId::new(ModeId::new(0), TaskId::new(0)); // type A
        let g0t1 = GlobalTaskId::new(ModeId::new(0), TaskId::new(1)); // type B
        assert_eq!(sys.candidate_pes(g0t0), vec![PeId::new(0), PeId::new(1)]);
        assert_eq!(sys.candidate_pes(g0t1), vec![PeId::new(0)]);
    }

    #[test]
    fn shared_types_are_detected() {
        let sys = sample_system();
        // Type A appears in both modes; type B only in mode 0.
        assert_eq!(sys.shared_types(), vec![TaskTypeId::new(0)]);
    }

    #[test]
    fn rejects_unimplementable_or_unknown_types() {
        let (omsm, arch, ..) = build_parts(Seconds::from_millis(20.0));
        // Library without any types: tasks reference unknown types.
        let empty = TechLibraryBuilder::new().build();
        assert!(matches!(
            System::new("bad", omsm.clone(), arch.clone(), empty),
            Err(ModelError::UnknownTaskType { .. })
        ));
        // Library with the types declared but no implementations.
        let mut b = TechLibraryBuilder::new();
        b.add_type("A");
        b.add_type("B");
        assert!(matches!(
            System::new("bad", omsm, arch, b.build()),
            Err(ModelError::UnimplementableType { .. })
        ));
    }

    #[test]
    fn rejects_invalid_execution_time() {
        let (omsm, arch, ..) = build_parts(Seconds::ZERO);
        let (_, _, tech, ..) = build_parts(Seconds::ZERO);
        assert!(matches!(
            System::new("bad", omsm, arch, tech),
            Err(ModelError::InvalidImplementation { .. })
        ));
    }

    #[test]
    fn rejects_impl_on_unknown_pe() {
        let (omsm, arch, _, ta, _) = build_parts(Seconds::from_millis(20.0));
        let mut tech = TechLibraryBuilder::new();
        let a2 = tech.add_type("A");
        tech.add_type("B");
        assert_eq!(a2, ta);
        tech.set_impl(
            a2,
            PeId::new(9),
            Implementation::software(Seconds::new(1.0), Watts::ZERO),
        );
        assert!(matches!(
            System::new("bad", omsm, arch, tech.build()),
            Err(ModelError::UnknownPe { .. })
        ));
    }

    #[test]
    fn rejects_area_on_software_pe_and_missing_area_on_hardware() {
        let (omsm, arch, _, ta, tb) = build_parts(Seconds::from_millis(20.0));
        // Area on software PE.
        let mut tech = TechLibraryBuilder::new();
        let a2 = tech.add_type("A");
        let b2 = tech.add_type("B");
        assert_eq!((a2, b2), (ta, tb));
        tech.set_impl(
            a2,
            PeId::new(0),
            Implementation::hardware(Seconds::new(1.0), Watts::ZERO, Cells::new(10)),
        );
        tech.set_impl(b2, PeId::new(0), Implementation::software(Seconds::new(1.0), Watts::ZERO));
        assert!(matches!(
            System::new("bad", omsm.clone(), arch.clone(), tech.build()),
            Err(ModelError::InvalidImplementation { .. })
        ));
        // Missing area on hardware PE.
        let mut tech = TechLibraryBuilder::new();
        let a3 = tech.add_type("A");
        let b3 = tech.add_type("B");
        tech.set_impl(a3, PeId::new(1), Implementation::software(Seconds::new(1.0), Watts::ZERO));
        tech.set_impl(b3, PeId::new(0), Implementation::software(Seconds::new(1.0), Watts::ZERO));
        assert!(matches!(
            System::new("bad", omsm, arch, tech.build()),
            Err(ModelError::InvalidImplementation { .. })
        ));
    }

    #[test]
    fn rejects_edges_with_no_connected_candidate_pair() {
        // cpu0 and asic1 share a bus; cpu2 is isolated. An edge between a
        // type pinned to cpu0 and a type pinned to cpu2 can never route.
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tc = tech.add_type("C");
        let mut arch = ArchitectureBuilder::new();
        let cpu0 = arch.add_pe(Pe::software("cpu0", PeKind::Gpp, Watts::from_milli(0.1)));
        let asic1 = arch.add_pe(Pe::hardware(
            "asic1",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        let cpu2 = arch.add_pe(Pe::software("cpu2", PeKind::Gpp, Watts::from_milli(0.1)));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu0, asic1],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();
        tech.set_impl(
            ta,
            cpu0,
            Implementation::software(Seconds::from_millis(1.0), Watts::from_milli(10.0)),
        );
        tech.set_impl(
            tc,
            cpu2,
            Implementation::software(Seconds::from_millis(1.0), Watts::from_milli(10.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        let x = g.add_task("x", ta);
        let w = g.add_task("w", tc);
        g.add_comm(x, w, 8.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let err = System::new("split", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap_err();
        match err {
            ModelError::Unreachable { from, to } => {
                assert_eq!(from, cpu0);
                assert_eq!(to, cpu2);
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn accepts_self_communication_without_any_cl() {
        // Both endpoints can land on the same PE: no CL is required.
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(1.0), Watts::from_milli(10.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        let x = g.add_task("x", ta);
        let y = g.add_task("y", ta);
        g.add_comm(x, y, 8.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        assert!(System::new(
            "solo",
            omsm.build().unwrap(),
            arch.build().unwrap(),
            tech.build()
        )
        .is_ok());
    }

    #[test]
    fn mode_ref_accessors() {
        let sys = sample_system();
        let m0 = ModeRef::new(&sys, ModeId::new(0));
        assert_eq!(m0.id(), ModeId::new(0));
        assert!((m0.probability() - 0.4).abs() < 1e-12);
        assert_eq!(m0.graph().task_count(), 2);
        assert_eq!(
            m0.global(TaskId::new(1)),
            GlobalTaskId::new(ModeId::new(0), TaskId::new(1))
        );
        assert!(std::ptr::eq(m0.system(), &sys));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mode_ref_rejects_out_of_range_mode() {
        let sys = sample_system();
        let _ = ModeRef::new(&sys, ModeId::new(9));
    }

    #[test]
    fn serde_round_trip_preserves_system() {
        let sys = sample_system();
        let json = serde_json::to_string(&sys).unwrap();
        let back: System = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sys);
    }
}
