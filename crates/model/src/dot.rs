//! Graphviz DOT export for task graphs, the OMSM and architectures.
//!
//! The exports are intended for inspection and documentation: render with
//! `dot -Tsvg`. Node labels carry the information a designer needs to read
//! the specification (task types, probabilities, transition limits, PE
//! kinds and areas).
//!
//! # Examples
//!
//! ```
//! use momsynth_model::{dot, TaskGraphBuilder};
//! use momsynth_model::ids::TaskTypeId;
//! use momsynth_model::units::Seconds;
//!
//! # fn main() -> Result<(), momsynth_model::ModelError> {
//! let mut b = TaskGraphBuilder::new("g", Seconds::new(1.0));
//! let a = b.add_task("src", TaskTypeId::new(0));
//! let c = b.add_task("dst", TaskTypeId::new(1));
//! b.add_comm(a, c, 64.0)?;
//! let text = dot::task_graph_to_dot(&b.build()?);
//! assert!(text.starts_with("digraph"));
//! assert!(text.contains("src"));
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::arch::Architecture;
use crate::omsm::Omsm;
use crate::task_graph::TaskGraph;

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Renders a task graph as a DOT digraph (tasks as boxes, data volumes as
/// edge labels).
pub fn task_graph_to_dot(graph: &TaskGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(graph.name()));
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=10];");
    let _ = writeln!(
        out,
        "  label=\"{} (period {:.3} ms)\";",
        escape(graph.name()),
        graph.period().as_millis()
    );
    for (id, task) in graph.tasks() {
        let deadline = match task.deadline() {
            Some(d) => format!("\\nθ={:.3} ms", d.as_millis()),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  t{} [label=\"{}\\n{}{}\"];",
            id.index(),
            escape(task.name()),
            task.task_type(),
            deadline
        );
    }
    for (_, comm) in graph.comms() {
        let _ = writeln!(
            out,
            "  t{} -> t{} [label=\"{}\"];",
            comm.src().index(),
            comm.dst().index(),
            comm.data_units()
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the top-level mode state machine as a DOT digraph (modes as
/// ellipses sized by probability, transition-time limits as edge labels).
pub fn omsm_to_dot(omsm: &Omsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph omsm {{");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=10];");
    for (id, mode) in omsm.modes() {
        let _ = writeln!(
            out,
            "  m{} [label=\"{}\\nΨ={:.2}\\n{} tasks\"];",
            id.index(),
            escape(mode.name()),
            mode.probability(),
            mode.graph().task_count()
        );
    }
    for (_, t) in omsm.transitions() {
        let _ = writeln!(
            out,
            "  m{} -> m{} [label=\"{:.1} ms\"];",
            t.from().index(),
            t.to().index(),
            t.max_time().as_millis()
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the architecture as a DOT graph (PEs as boxes, links as
/// diamond nodes connecting their endpoints).
pub fn architecture_to_dot(arch: &Architecture) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph architecture {{");
    let _ = writeln!(out, "  node [fontsize=10];");
    for (id, pe) in arch.pes() {
        let area = match pe.area() {
            Some(a) => format!("\\n{a}"),
            None => String::new(),
        };
        let dvs = if pe.dvs().is_some() { "\\nDVS" } else { "" };
        let _ = writeln!(
            out,
            "  pe{} [shape=box, label=\"{} ({}){}{}\"];",
            id.index(),
            escape(pe.name()),
            pe.kind(),
            area,
            dvs
        );
    }
    for (id, cl) in arch.cls() {
        let _ = writeln!(
            out,
            "  cl{} [shape=diamond, label=\"{}\"];",
            id.index(),
            escape(cl.name())
        );
        for pe in cl.endpoints() {
            let _ = writeln!(out, "  pe{} -- cl{};", pe.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchitectureBuilder, Cl, Pe, PeKind};
    use crate::ids::TaskTypeId;
    use crate::omsm::OmsmBuilder;
    use crate::task_graph::TaskGraphBuilder;
    use crate::units::{Cells, Seconds, Watts};

    fn graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("demo", Seconds::from_millis(20.0));
        let a = b.add_task_with_deadline("alpha", TaskTypeId::new(0), Seconds::from_millis(9.0));
        let c = b.add_task("beta \"quoted\"", TaskTypeId::new(1));
        b.add_comm(a, c, 42.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn task_graph_dot_contains_tasks_edges_and_deadlines() {
        let text = task_graph_to_dot(&graph());
        assert!(text.starts_with("digraph"));
        assert!(text.contains("alpha"));
        assert!(text.contains("θ=9.000 ms"));
        assert!(text.contains("t0 -> t1"));
        assert!(text.contains("42"));
        // Quotes must be escaped.
        assert!(text.contains("beta \\\"quoted\\\""));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn omsm_dot_contains_modes_and_transition_limits() {
        let mut b = OmsmBuilder::new();
        let m0 = b.add_mode("idle", 0.8, graph());
        let m1 = b.add_mode("busy", 0.2, graph());
        b.add_transition(m0, m1, Seconds::from_millis(5.0)).unwrap();
        let text = omsm_to_dot(&b.build().unwrap());
        assert!(text.contains("idle"));
        assert!(text.contains("Ψ=0.80"));
        assert!(text.contains("m0 -> m1"));
        assert!(text.contains("5.0 ms"));
    }

    #[test]
    fn architecture_dot_marks_dvs_and_area() {
        let mut b = ArchitectureBuilder::new();
        let cpu = b.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = b.add_pe(Pe::hardware("acc", PeKind::Fpga, Cells::new(500), Watts::ZERO));
        b.add_cl(Cl::bus("bus", vec![cpu, hw], Seconds::ZERO, Watts::ZERO, Watts::ZERO))
            .unwrap();
        let text = architecture_to_dot(&b.build().unwrap());
        assert!(text.starts_with("graph"));
        assert!(text.contains("cpu (GPP)"));
        assert!(text.contains("acc (FPGA)"));
        assert!(text.contains("500 cells"));
        assert!(text.contains("pe0 -- cl0"));
        assert!(text.contains("pe1 -- cl0"));
    }
}
