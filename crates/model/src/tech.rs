//! The technology library: implementation alternatives per task type.
//!
//! Every task type may be implemented on several PEs; each alternative is
//! an [`Implementation`] with a nominal execution time `t_min`, a dynamic
//! power `P_max` (both at the PE's nominal supply voltage) and — for
//! hardware PEs — the silicon area of the corresponding core. The paper's
//! motivational table (Section 2.3) is exactly such a library.
//!
//! # Examples
//!
//! ```
//! use momsynth_model::{Implementation, TechLibraryBuilder};
//! use momsynth_model::ids::PeId;
//! use momsynth_model::units::{Cells, Seconds, Watts};
//!
//! let mut b = TechLibraryBuilder::new();
//! let fft = b.add_type("FFT");
//! b.set_impl(
//!     fft,
//!     PeId::new(0),
//!     Implementation::software(Seconds::from_millis(20.0), Watts::from_milli(500.0)),
//! );
//! b.set_impl(
//!     fft,
//!     PeId::new(1),
//!     Implementation::hardware(
//!         Seconds::from_millis(2.0),
//!         Watts::from_milli(5.0),
//!         Cells::new(240),
//!     ),
//! );
//! let lib = b.build();
//! assert_eq!(lib.pes_supporting(fft).count(), 2);
//! assert!(lib.impl_of(fft, PeId::new(0)).is_some());
//! ```

use serde::{Deserialize, Serialize};

use crate::ids::{PeId, TaskTypeId};
use crate::units::{Cells, Joules, Seconds, Watts};

/// One implementation alternative of a task type on a specific PE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Implementation {
    exec_time: Seconds,
    dyn_power: Watts,
    area: Cells,
}

impl Implementation {
    /// Creates a software implementation (no core area).
    pub fn software(exec_time: Seconds, dyn_power: Watts) -> Self {
        Self { exec_time, dyn_power, area: Cells::ZERO }
    }

    /// Creates a hardware implementation with the given core area.
    pub fn hardware(exec_time: Seconds, dyn_power: Watts, area: Cells) -> Self {
        Self { exec_time, dyn_power, area }
    }

    /// Returns the nominal execution time `t_min` (at `V_max`).
    pub fn exec_time(&self) -> Seconds {
        self.exec_time
    }

    /// Returns the nominal dynamic power `P_max` (at `V_max`).
    pub fn dyn_power(&self) -> Watts {
        self.dyn_power
    }

    /// Returns the core area (zero for software implementations).
    pub fn area(&self) -> Cells {
        self.area
    }

    /// Returns the nominal dynamic energy `P_max · t_min`.
    pub fn energy(&self) -> Joules {
        self.dyn_power * self.exec_time
    }
}

/// A technology library mapping `(task type, PE)` to implementations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechLibrary {
    type_names: Vec<String>,
    /// `impls[type]` is a sparse, sorted list of `(pe, implementation)`.
    impls: Vec<Vec<(PeId, Implementation)>>,
}

impl TechLibrary {
    /// Returns the number of task types.
    pub fn type_count(&self) -> usize {
        self.type_names.len()
    }

    /// Returns the name of a task type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` does not belong to this library.
    pub fn type_name(&self, ty: TaskTypeId) -> &str {
        &self.type_names[ty.index()]
    }

    /// Returns all task type identifiers.
    pub fn type_ids(&self) -> impl Iterator<Item = TaskTypeId> + '_ {
        (0..self.type_names.len()).map(TaskTypeId::new)
    }

    /// Returns `true` if `ty` is a valid type of this library.
    pub fn contains_type(&self, ty: TaskTypeId) -> bool {
        ty.index() < self.type_names.len()
    }

    /// Returns the implementation of `ty` on `pe`, if one exists.
    pub fn impl_of(&self, ty: TaskTypeId, pe: PeId) -> Option<&Implementation> {
        let row = self.impls.get(ty.index())?;
        row.binary_search_by_key(&pe, |&(p, _)| p)
            .ok()
            .map(|i| &row[i].1)
    }

    /// Returns the PEs on which `ty` can be implemented, ascending.
    pub fn pes_supporting(&self, ty: TaskTypeId) -> impl Iterator<Item = PeId> + '_ {
        self.impls
            .get(ty.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|&(p, _)| p)
    }

    /// Iterates over all `(pe, implementation)` alternatives for `ty`.
    pub fn impls_of(&self, ty: TaskTypeId) -> impl Iterator<Item = (PeId, &Implementation)> + '_ {
        self.impls
            .get(ty.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|(p, imp)| (*p, imp))
    }

    /// Returns the fastest available execution time for `ty` across all PEs.
    pub fn fastest_exec_time(&self, ty: TaskTypeId) -> Option<Seconds> {
        self.impls_of(ty)
            .map(|(_, imp)| imp.exec_time())
            .min_by(|a, b| a.value().total_cmp(&b.value()))
    }

    /// Returns the lowest-energy implementation for `ty` across all PEs.
    pub fn min_energy(&self, ty: TaskTypeId) -> Option<Joules> {
        self.impls_of(ty)
            .map(|(_, imp)| imp.energy())
            .min_by(|a, b| a.value().total_cmp(&b.value()))
    }
}

/// Incremental builder for [`TechLibrary`].
///
/// Structural validation against a concrete architecture and OMSM happens
/// in [`System::new`](crate::System::new); the builder alone only keeps
/// rows sorted and replaces duplicates.
#[derive(Debug, Clone, Default)]
pub struct TechLibraryBuilder {
    type_names: Vec<String>,
    impls: Vec<Vec<(PeId, Implementation)>>,
}

impl TechLibraryBuilder {
    /// Starts an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a task type and returns its identifier.
    pub fn add_type(&mut self, name: impl Into<String>) -> TaskTypeId {
        let id = TaskTypeId::new(self.type_names.len());
        self.type_names.push(name.into());
        self.impls.push(Vec::new());
        id
    }

    /// Registers (or replaces) the implementation of `ty` on `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` was not added to this builder.
    pub fn set_impl(&mut self, ty: TaskTypeId, pe: PeId, implementation: Implementation) {
        let row = &mut self.impls[ty.index()];
        match row.binary_search_by_key(&pe, |&(p, _)| p) {
            Ok(i) => row[i].1 = implementation,
            Err(i) => row.insert(i, (pe, implementation)),
        }
    }

    /// Returns the number of task types registered so far.
    pub fn type_count(&self) -> usize {
        self.type_names.len()
    }

    /// Freezes the library.
    pub fn build(self) -> TechLibrary {
        TechLibrary { type_names: self.type_names, impls: self.impls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (TechLibrary, TaskTypeId, TaskTypeId) {
        let mut b = TechLibraryBuilder::new();
        let a = b.add_type("A");
        let c = b.add_type("C");
        b.set_impl(
            a,
            PeId::new(0),
            Implementation::software(Seconds::from_millis(20.0), Watts::from_milli(500.0)),
        );
        b.set_impl(
            a,
            PeId::new(1),
            Implementation::hardware(
                Seconds::from_millis(2.0),
                Watts::from_milli(5.0),
                Cells::new(240),
            ),
        );
        b.set_impl(
            c,
            PeId::new(1),
            Implementation::hardware(
                Seconds::from_millis(1.6),
                Watts::from_milli(14.375),
                Cells::new(275),
            ),
        );
        (b.build(), a, c)
    }

    #[test]
    fn lookup_and_support_queries() {
        let (lib, a, c) = sample();
        assert_eq!(lib.type_count(), 2);
        assert_eq!(lib.type_name(a), "A");
        assert!(lib.contains_type(c));
        assert!(!lib.contains_type(TaskTypeId::new(7)));
        assert!(lib.impl_of(a, PeId::new(0)).is_some());
        assert!(lib.impl_of(c, PeId::new(0)).is_none());
        assert_eq!(lib.pes_supporting(a).collect::<Vec<_>>(), vec![PeId::new(0), PeId::new(1)]);
        assert_eq!(lib.pes_supporting(c).collect::<Vec<_>>(), vec![PeId::new(1)]);
        assert_eq!(lib.pes_supporting(TaskTypeId::new(9)).count(), 0);
    }

    #[test]
    fn implementation_energy_is_power_times_time() {
        // Task type A on PE0 in the paper: 20 ms at 500 mW = 10 mWs.
        let (lib, a, _) = sample();
        let imp = lib.impl_of(a, PeId::new(0)).unwrap();
        assert!((imp.energy().as_milli_joules() - 10.0).abs() < 1e-9);
        // HW alternative: 2 ms at 5 mW = 0.010 mWs, as in the paper's table.
        let hw = lib.impl_of(a, PeId::new(1)).unwrap();
        assert!((hw.energy().as_milli_joules() - 0.010).abs() < 1e-9);
        assert_eq!(hw.area(), Cells::new(240));
    }

    #[test]
    fn set_impl_replaces_existing_entry() {
        let (_, a, _) = sample();
        let mut b = TechLibraryBuilder::new();
        let a2 = b.add_type("A");
        assert_eq!(a, a2);
        b.set_impl(a2, PeId::new(0), Implementation::software(Seconds::new(1.0), Watts::ZERO));
        b.set_impl(a2, PeId::new(0), Implementation::software(Seconds::new(2.0), Watts::ZERO));
        let lib = b.build();
        assert_eq!(lib.impl_of(a2, PeId::new(0)).unwrap().exec_time(), Seconds::new(2.0));
        assert_eq!(lib.pes_supporting(a2).count(), 1);
    }

    #[test]
    fn fastest_and_min_energy_queries() {
        let (lib, a, _) = sample();
        assert_eq!(lib.fastest_exec_time(a), Some(Seconds::from_millis(2.0)));
        assert!((lib.min_energy(a).unwrap().as_milli_joules() - 0.010).abs() < 1e-9);
        assert_eq!(lib.fastest_exec_time(TaskTypeId::new(9)), None);
        assert_eq!(lib.min_energy(TaskTypeId::new(9)), None);
    }

    #[test]
    fn software_impl_has_zero_area() {
        let imp = Implementation::software(Seconds::new(1.0), Watts::new(1.0));
        assert_eq!(imp.area(), Cells::ZERO);
    }

    #[test]
    fn serde_round_trip_preserves_library() {
        let (lib, ..) = sample();
        let json = serde_json::to_string(&lib).unwrap();
        let back: TechLibrary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lib);
    }
}
