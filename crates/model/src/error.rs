//! Error types for model construction and validation.

use std::fmt;

use crate::ids::{ModeId, PeId, TaskId, TaskTypeId, TransitionId};

/// Error produced while building or validating a model.
///
/// # Examples
///
/// ```
/// use momsynth_model::{ModelError, TaskGraphBuilder};
/// use momsynth_model::ids::{TaskId, TaskTypeId};
/// use momsynth_model::units::Seconds;
///
/// let mut b = TaskGraphBuilder::new("m", Seconds::new(1.0));
/// let t = b.add_task("t0", TaskTypeId::new(0));
/// let err = b.add_comm(t, TaskId::new(99), 1.0).unwrap_err();
/// assert!(matches!(err, ModelError::UnknownTask { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A task graph contains a dependency cycle.
    CycleDetected {
        /// Name of the offending task graph.
        graph: String,
    },
    /// An edge references a task that does not exist.
    UnknownTask {
        /// The missing task.
        task: TaskId,
        /// Name of the offending task graph.
        graph: String,
    },
    /// An edge connects a task to itself.
    SelfLoop {
        /// The offending task.
        task: TaskId,
        /// Name of the offending task graph.
        graph: String,
    },
    /// A task graph repetition period must be positive and finite.
    InvalidPeriod {
        /// Name of the offending task graph.
        graph: String,
        /// The rejected period value in seconds.
        period: f64,
    },
    /// A task deadline must be positive and finite.
    InvalidDeadline {
        /// The offending task.
        task: TaskId,
        /// Name of the offending task graph.
        graph: String,
    },
    /// A task graph has no tasks.
    EmptyGraph {
        /// Name of the offending task graph.
        graph: String,
    },
    /// An OMSM has no modes.
    NoModes,
    /// Mode execution probabilities must be non-negative and sum to one.
    InvalidProbabilities {
        /// The actual sum of all mode probabilities.
        sum: f64,
    },
    /// A single mode probability is negative or non-finite.
    InvalidProbability {
        /// The offending mode.
        mode: ModeId,
        /// The rejected probability.
        probability: f64,
    },
    /// A transition references a mode that does not exist.
    UnknownMode {
        /// The missing mode.
        mode: ModeId,
    },
    /// A transition connects a mode to itself.
    SelfTransition {
        /// The offending transition.
        transition: TransitionId,
    },
    /// A transition time limit must be positive and finite.
    InvalidTransitionTime {
        /// The offending transition.
        transition: TransitionId,
    },
    /// An architecture has no processing elements.
    NoPes,
    /// A communication link references a processing element that does not exist.
    UnknownPe {
        /// The missing processing element.
        pe: PeId,
    },
    /// A communication link must connect at least two processing elements.
    DegenerateLink {
        /// Name of the offending link.
        link: String,
    },
    /// A DVS capability is malformed (empty levels, levels above `v_max`,
    /// or threshold voltage not below the lowest level).
    InvalidDvs {
        /// Name of the offending processing element.
        pe: String,
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A task type has no implementation on any processing element.
    UnimplementableType {
        /// The offending task type.
        task_type: TaskTypeId,
    },
    /// A technology-library entry is malformed (non-positive time, negative
    /// power, or area on a software processing element).
    InvalidImplementation {
        /// The offending task type.
        task_type: TaskTypeId,
        /// The target processing element.
        pe: PeId,
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A task references a task type outside the technology library.
    UnknownTaskType {
        /// The missing task type.
        task_type: TaskTypeId,
    },
    /// Two processing elements host tasks that must communicate but share no
    /// communication link.
    Unreachable {
        /// Source processing element.
        from: PeId,
        /// Destination processing element.
        to: PeId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CycleDetected { graph } => {
                write!(f, "task graph `{graph}` contains a dependency cycle")
            }
            Self::UnknownTask { task, graph } => {
                write!(f, "task graph `{graph}` references unknown task {task}")
            }
            Self::SelfLoop { task, graph } => {
                write!(f, "task graph `{graph}` contains a self-loop on {task}")
            }
            Self::InvalidPeriod { graph, period } => {
                write!(f, "task graph `{graph}` has invalid period {period} s")
            }
            Self::InvalidDeadline { task, graph } => {
                write!(f, "task {task} in graph `{graph}` has an invalid deadline")
            }
            Self::EmptyGraph { graph } => write!(f, "task graph `{graph}` has no tasks"),
            Self::NoModes => write!(f, "operational mode state machine has no modes"),
            Self::InvalidProbabilities { sum } => {
                write!(f, "mode execution probabilities sum to {sum}, expected 1")
            }
            Self::InvalidProbability { mode, probability } => {
                write!(f, "mode {mode} has invalid execution probability {probability}")
            }
            Self::UnknownMode { mode } => write!(f, "reference to unknown mode {mode}"),
            Self::SelfTransition { transition } => {
                write!(f, "transition {transition} connects a mode to itself")
            }
            Self::InvalidTransitionTime { transition } => {
                write!(f, "transition {transition} has an invalid time limit")
            }
            Self::NoPes => write!(f, "architecture has no processing elements"),
            Self::UnknownPe { pe } => write!(f, "reference to unknown processing element {pe}"),
            Self::DegenerateLink { link } => {
                write!(f, "communication link `{link}` connects fewer than two PEs")
            }
            Self::InvalidDvs { pe, reason } => {
                write!(f, "processing element `{pe}` has invalid DVS capability: {reason}")
            }
            Self::UnimplementableType { task_type } => {
                write!(f, "task type {task_type} has no implementation on any PE")
            }
            Self::InvalidImplementation { task_type, pe, reason } => {
                write!(f, "implementation of {task_type} on {pe} is invalid: {reason}")
            }
            Self::UnknownTaskType { task_type } => {
                write!(f, "reference to unknown task type {task_type}")
            }
            Self::Unreachable { from, to } => {
                write!(f, "no communication link connects {from} and {to}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::CycleDetected { graph: "gsm".into() };
        let msg = e.to_string();
        assert!(msg.contains("gsm"));
        assert!(msg.contains("cycle"));

        let e = ModelError::InvalidProbabilities { sum: 0.5 };
        assert!(e.to_string().contains("0.5"));

        let e = ModelError::Unreachable { from: PeId::new(0), to: PeId::new(2) };
        assert!(e.to_string().contains("PE0"));
        assert!(e.to_string().contains("PE2"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }
}
