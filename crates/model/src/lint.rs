//! Specification linting: non-fatal diagnostics for system models.
//!
//! [`System::new`](crate::System::new) rejects structurally broken models;
//! this module finds *suspicious but legal* specifications — the mistakes
//! a designer actually makes: unreachable modes, probability mass on modes
//! with no work, deadlines longer than periods, task types that can never
//! leave software, hardware that nothing can use, and periods too tight
//! for even the fastest implementations.
//!
//! All diagnostics here are flat, advisory warnings. The
//! `momsynth-analyze` crate promotes the *provable* subset — probability
//! mass drift, transition limits below the reconfiguration floor,
//! critical-path and area infeasibility — into typed findings with
//! error/warning/info severities, bound values, and a fail-fast hook in
//! the synthesis driver; prefer it when a machine decision (rather than a
//! human read) hangs on the outcome.
//!
//! # Examples
//!
//! ```
//! use momsynth_model::lint::lint_system;
//! # use momsynth_model::{ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind,
//! #     System, TaskGraphBuilder, TechLibraryBuilder};
//! # use momsynth_model::units::{Seconds, Watts};
//! # let mut tech = TechLibraryBuilder::new();
//! # let t = tech.add_type("T");
//! # let mut arch = ArchitectureBuilder::new();
//! # let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
//! # tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
//! # let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
//! # g.add_task("t", t);
//! # let mut omsm = OmsmBuilder::new();
//! # omsm.add_mode("m", 1.0, g.build().unwrap());
//! # let system = System::new("s", omsm.build().unwrap(), arch.build().unwrap(),
//! #     tech.build()).unwrap();
//! let warnings = lint_system(&system);
//! for w in &warnings {
//!     eprintln!("warning: {w}");
//! }
//! ```

use std::fmt;

use crate::ids::{ModeId, PeId, TaskId, TaskTypeId, TransitionId};
use crate::omsm::PROBABILITY_SUM_TOLERANCE;
use crate::system::System;
use crate::units::{Cells, Seconds};

/// A non-fatal specification diagnostic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LintWarning {
    /// A mode cannot be entered from any other mode.
    UnreachableMode {
        /// The unreachable mode.
        mode: ModeId,
    },
    /// A mode has no outgoing transition; the system can never leave it.
    TrappingMode {
        /// The trapping mode.
        mode: ModeId,
    },
    /// A mode with meaningful probability mass (`> 1 %`) whose task graph
    /// is trivial (a single task) — probably an unfinished specification.
    ProbableStub {
        /// The suspicious mode.
        mode: ModeId,
    },
    /// A task's deadline exceeds its mode's period and is therefore
    /// ignored (the effective deadline is `min(θ, φ)`).
    DeadlineBeyondPeriod {
        /// The mode containing the task.
        mode: ModeId,
        /// The task with the oversized deadline.
        task: TaskId,
    },
    /// A mode's period is shorter than its critical path even with the
    /// fastest implementation of every task — no mapping can meet it.
    PeriodTighterThanCriticalPath {
        /// The over-constrained mode.
        mode: ModeId,
        /// The lower bound on the critical path.
        critical_path: Seconds,
        /// The mode's period.
        period: Seconds,
    },
    /// A task type used by some mode has only software implementations,
    /// although hardware PEs exist — a possible library gap.
    SoftwareOnlyType {
        /// The affected type.
        task_type: TaskTypeId,
    },
    /// A hardware PE that no task type can be implemented on.
    UnusableHardware {
        /// The unusable PE.
        pe: PeId,
    },
    /// A DVS-enabled PE with a single supply level — scaling can never
    /// change anything.
    DegenerateDvs {
        /// The affected PE.
        pe: PeId,
    },
    /// The mode execution probabilities do not sum to 1. The builder
    /// rejects this, but deserialised specifications bypass it — and Eq. 1
    /// silently mis-weights every average computed from such a profile.
    ProbabilityMassDrift {
        /// The actual probability sum `Σ Ψ_O`.
        sum: f64,
    },
    /// A transition's time limit `t_T^max` is shorter than the fastest
    /// possible reconfiguration of even the smallest loadable core on some
    /// FPGA — any mapping that reconfigures that PE at this transition is
    /// doomed to violate constraint (c).
    TransitionTimeBelowReconfigFloor {
        /// The over-constrained transition.
        transition: TransitionId,
        /// The reconfigurable PE whose smallest core cannot be loaded in
        /// time.
        pe: PeId,
        /// The reconfiguration time of that PE's smallest loadable core.
        floor: Seconds,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnreachableMode { mode } => {
                write!(f, "mode {mode} is unreachable from every other mode")
            }
            Self::TrappingMode { mode } => {
                write!(f, "mode {mode} has no outgoing transition")
            }
            Self::ProbableStub { mode } => write!(
                f,
                "mode {mode} carries probability mass but contains a single task"
            ),
            Self::DeadlineBeyondPeriod { mode, task } => write!(
                f,
                "task {task} of mode {mode} has a deadline beyond the period (ignored)"
            ),
            Self::PeriodTighterThanCriticalPath { mode, critical_path, period } => write!(
                f,
                "mode {mode}: period {period:.6} is below the critical-path lower bound {critical_path:.6}"
            ),
            Self::SoftwareOnlyType { task_type } => write!(
                f,
                "task type {task_type} has no hardware implementation although hardware PEs exist"
            ),
            Self::UnusableHardware { pe } => {
                write!(f, "hardware PE {pe} cannot implement any task type")
            }
            Self::DegenerateDvs { pe } => {
                write!(f, "PE {pe} is DVS-enabled but offers a single supply level")
            }
            Self::ProbabilityMassDrift { sum } => write!(
                f,
                "mode execution probabilities sum to {sum:.9} instead of 1 — Eq. 1 averages will be mis-weighted"
            ),
            Self::TransitionTimeBelowReconfigFloor { transition, pe, floor } => write!(
                f,
                "transition {transition}: t_T^max is below {floor:.6}, the time to reconfigure even the smallest loadable core of {pe}"
            ),
        }
    }
}

/// Lints `system` and returns all diagnostics found.
pub fn lint_system(system: &System) -> Vec<LintWarning> {
    let mut warnings = Vec::new();
    let omsm = system.omsm();
    let arch = system.arch();
    let tech = system.tech();

    // Reachability over the transition graph (multi-mode systems only).
    if omsm.mode_count() > 1 {
        for mode in omsm.mode_ids() {
            if !omsm.transitions().any(|(_, t)| t.to() == mode) {
                warnings.push(LintWarning::UnreachableMode { mode });
            }
            if omsm.transitions_from(mode).next().is_none() {
                warnings.push(LintWarning::TrappingMode { mode });
            }
        }
    }

    for (mode, m) in omsm.modes() {
        let graph = m.graph();
        if m.probability() > 0.01 && graph.task_count() == 1 && omsm.mode_count() > 1 {
            warnings.push(LintWarning::ProbableStub { mode });
        }
        for (task, t) in graph.tasks() {
            if let Some(d) = t.deadline() {
                if d > graph.period() {
                    warnings.push(LintWarning::DeadlineBeyondPeriod { mode, task });
                }
            }
        }
        // Critical path with every task at its fastest implementation and
        // free communication is a lower bound on any schedule.
        let cp = graph.critical_path(
            |task| {
                tech.fastest_exec_time(graph.task(task).task_type())
                    .unwrap_or(Seconds::ZERO)
            },
            |_| Seconds::ZERO,
        );
        if cp > graph.period() {
            warnings.push(LintWarning::PeriodTighterThanCriticalPath {
                mode,
                critical_path: cp,
                period: graph.period(),
            });
        }
    }

    let has_hardware = arch.hardware_pes().next().is_some();
    if has_hardware {
        let mut used_types: Vec<TaskTypeId> = omsm
            .modes()
            .flat_map(|(_, m)| m.graph().used_types())
            .collect();
        used_types.sort_unstable();
        used_types.dedup();
        for ty in used_types {
            let hw_impl = tech
                .pes_supporting(ty)
                .any(|pe| arch.pe(pe).kind().is_hardware());
            if !hw_impl {
                warnings.push(LintWarning::SoftwareOnlyType { task_type: ty });
            }
        }
        for pe in arch.hardware_pes() {
            let usable = tech.type_ids().any(|ty| tech.impl_of(ty, pe).is_some());
            if !usable {
                warnings.push(LintWarning::UnusableHardware { pe });
            }
        }
    }

    for (pe, info) in arch.pes() {
        if let Some(dvs) = info.dvs() {
            if dvs.levels().len() < 2 {
                warnings.push(LintWarning::DegenerateDvs { pe });
            }
        }
    }

    // Probability mass: the builder enforces Σ Ψ_O ≈ 1, but systems
    // deserialised from JSON arrive unchecked.
    let sum: f64 = omsm.modes().map(|(_, m)| m.probability()).sum();
    if (sum - 1.0).abs() > PROBABILITY_SUM_TOLERANCE {
        warnings.push(LintWarning::ProbabilityMassDrift { sum });
    }

    // Transition-time floors: on every reconfigurable PE, loading even the
    // smallest loadable core takes `reconfig_time_per_cell · min area`; a
    // transition limit below that makes constraint (c) unmeetable for any
    // mapping that touches the FPGA at this transition.
    for pe in arch.hardware_pes() {
        let info = arch.pe(pe);
        if !info.kind().is_reconfigurable() || info.reconfig_time_per_cell() <= Seconds::ZERO {
            continue;
        }
        let floor = tech
            .type_ids()
            .filter_map(|ty| tech.impl_of(ty, pe))
            .filter(|imp| imp.area() > Cells::ZERO)
            .map(|imp| info.reconfig_time_per_cell() * imp.area().value() as f64)
            .min_by(|a, b| a.partial_cmp(b).expect("finite reconfiguration times"));
        let Some(floor) = floor else { continue };
        for (transition, t) in omsm.transitions() {
            if t.max_time() < floor {
                warnings.push(LintWarning::TransitionTimeBelowReconfigFloor {
                    transition,
                    pe,
                    floor,
                });
            }
        }
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchitectureBuilder, Cl, DvsCapability, Pe, PeKind};
    use crate::omsm::OmsmBuilder;
    use crate::task_graph::{TaskGraph, TaskGraphBuilder};
    use crate::tech::{Implementation, TechLibraryBuilder};
    use crate::units::{Volts, Watts};

    fn graph(name: &str, n: usize, period: Seconds) -> TaskGraph {
        let mut b = TaskGraphBuilder::new(name, period);
        for i in 0..n {
            b.add_task(format!("t{i}"), TaskTypeId::new(0));
        }
        b.build().unwrap()
    }

    /// A clean two-mode system that should lint without warnings.
    fn clean_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        arch.add_cl(Cl::bus("bus", vec![cpu, hw], Seconds::ZERO, Watts::ZERO, Watts::ZERO))
            .unwrap();
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        tech.set_impl(
            t,
            hw,
            Implementation::hardware(Seconds::new(0.001), Watts::ZERO, Cells::new(50)),
        );
        let mut omsm = OmsmBuilder::new();
        let a = omsm.add_mode("a", 0.5, graph("a", 3, Seconds::new(1.0)));
        let b = omsm.add_mode("b", 0.5, graph("b", 3, Seconds::new(1.0)));
        omsm.add_transition(a, b, Seconds::new(0.1)).unwrap();
        omsm.add_transition(b, a, Seconds::new(0.1)).unwrap();
        System::new("clean", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    #[test]
    fn clean_system_has_no_warnings() {
        assert_eq!(lint_system(&clean_system()), vec![]);
    }

    #[test]
    fn detects_unreachable_and_trapping_modes() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut omsm = OmsmBuilder::new();
        let a = omsm.add_mode("a", 0.5, graph("a", 2, Seconds::new(1.0)));
        let b = omsm.add_mode("b", 0.5, graph("b", 2, Seconds::new(1.0)));
        omsm.add_transition(a, b, Seconds::new(0.1)).unwrap();
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings.contains(&LintWarning::UnreachableMode { mode: a }));
        assert!(warnings.contains(&LintWarning::TrappingMode { mode: b }));
    }

    #[test]
    fn detects_impossible_period_and_big_deadline() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.5), Watts::ZERO));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(0.4));
        let a = g.add_task_with_deadline("a", t, Seconds::new(2.0));
        let b = g.add_task("b", t);
        g.add_comm(a, b, 1.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        let mode = omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::PeriodTighterThanCriticalPath { mode: m, .. } if *m == mode)));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::DeadlineBeyondPeriod { .. })));
    }

    #[test]
    fn detects_software_only_types_and_unusable_hardware() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, graph("m", 2, Seconds::new(1.0)));
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings.contains(&LintWarning::SoftwareOnlyType { task_type: t }));
        assert!(warnings.contains(&LintWarning::UnusableHardware { pe: hw }));
    }

    #[test]
    fn detects_degenerate_dvs_and_stub_modes() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(3.3)],
            )),
        );
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut omsm = OmsmBuilder::new();
        let a = omsm.add_mode("a", 0.9, graph("a", 1, Seconds::new(1.0)));
        let b = omsm.add_mode("b", 0.1, graph("b", 3, Seconds::new(1.0)));
        omsm.add_transition(a, b, Seconds::new(0.1)).unwrap();
        omsm.add_transition(b, a, Seconds::new(0.1)).unwrap();
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings.contains(&LintWarning::DegenerateDvs { pe: cpu }));
        assert!(warnings.contains(&LintWarning::ProbableStub { mode: a }));
    }

    #[test]
    fn detects_probability_mass_drift_after_deserialisation() {
        let system = clean_system();
        // The builder guarantees Σ Ψ = 1, so force drift the way it
        // happens in the wild: edit the serialised form and reload.
        let json = serde_json::to_string(&system).unwrap();
        let hacked = json.replacen("0.5", "0.75", 1);
        assert_ne!(json, hacked, "probability field not found");
        let drifted: System = serde_json::from_str(&hacked).unwrap();
        let warnings = lint_system(&drifted);
        assert!(
            warnings
                .iter()
                .any(|w| matches!(w, LintWarning::ProbabilityMassDrift { sum } if (sum - 1.25).abs() < 1e-9)),
            "{warnings:?}"
        );
        // Sub-tolerance drift stays silent: the builder itself accepts it.
        assert!(!lint_system(&clean_system())
            .iter()
            .any(|w| matches!(w, LintWarning::ProbabilityMassDrift { .. })));
    }

    #[test]
    fn detects_transition_limits_below_the_reconfiguration_floor() {
        let build = |kind: PeKind, limit: Seconds| {
            let mut tech = TechLibraryBuilder::new();
            let t = tech.add_type("T");
            let u = tech.add_type("U");
            let mut arch = ArchitectureBuilder::new();
            let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
            let hw = arch.add_pe(
                Pe::hardware("hw", kind, Cells::new(200), Watts::ZERO)
                    .with_reconfig_time_per_cell(Seconds::new(0.01)),
            );
            arch.add_cl(Cl::bus("bus", vec![cpu, hw], Seconds::ZERO, Watts::ZERO, Watts::ZERO))
                .unwrap();
            for ty in [t, u] {
                tech.set_impl(ty, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
            }
            // Two loadable cores: the floor is the smaller one (50 cells
            // at 10 ms/cell = 0.5 s), not the larger.
            tech.set_impl(t, hw, Implementation::hardware(Seconds::new(0.001), Watts::ZERO, Cells::new(80)));
            tech.set_impl(u, hw, Implementation::hardware(Seconds::new(0.001), Watts::ZERO, Cells::new(50)));
            let mut omsm = OmsmBuilder::new();
            let a = omsm.add_mode("a", 0.5, graph("a", 3, Seconds::new(1.0)));
            let b = omsm.add_mode("b", 0.5, graph("b", 3, Seconds::new(1.0)));
            omsm.add_transition(a, b, limit).unwrap();
            omsm.add_transition(b, a, Seconds::new(10.0)).unwrap();
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
        };

        let tight = build(PeKind::Fpga, Seconds::new(0.1));
        let floors: Vec<LintWarning> = lint_system(&tight)
            .into_iter()
            .filter(|w| matches!(w, LintWarning::TransitionTimeBelowReconfigFloor { .. }))
            .collect();
        assert_eq!(floors.len(), 1, "{floors:?}");
        assert!(matches!(
            &floors[0],
            LintWarning::TransitionTimeBelowReconfigFloor { transition, floor, .. }
                if transition.index() == 0 && (floor.value() - 0.5).abs() < 1e-12
        ));

        // A generous limit, or a non-reconfigurable ASIC, stays silent.
        for system in [build(PeKind::Fpga, Seconds::new(10.0)), build(PeKind::Asic, Seconds::new(0.1))] {
            assert!(!lint_system(&system)
                .iter()
                .any(|w| matches!(w, LintWarning::TransitionTimeBelowReconfigFloor { .. })));
        }
    }

    #[test]
    fn warning_display_is_informative() {
        let w = LintWarning::PeriodTighterThanCriticalPath {
            mode: ModeId::new(2),
            critical_path: Seconds::new(0.5),
            period: Seconds::new(0.4),
        };
        let text = w.to_string();
        assert!(text.contains("O2"));
        assert!(text.contains("critical-path"));
    }
}
