//! Specification linting: non-fatal diagnostics for system models.
//!
//! [`System::new`](crate::System::new) rejects structurally broken models;
//! this module finds *suspicious but legal* specifications — the mistakes
//! a designer actually makes: unreachable modes, probability mass on modes
//! with no work, deadlines longer than periods, task types that can never
//! leave software, hardware that nothing can use, and periods too tight
//! for even the fastest implementations.
//!
//! # Examples
//!
//! ```
//! use momsynth_model::lint::lint_system;
//! # use momsynth_model::{ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind,
//! #     System, TaskGraphBuilder, TechLibraryBuilder};
//! # use momsynth_model::units::{Seconds, Watts};
//! # let mut tech = TechLibraryBuilder::new();
//! # let t = tech.add_type("T");
//! # let mut arch = ArchitectureBuilder::new();
//! # let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
//! # tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
//! # let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
//! # g.add_task("t", t);
//! # let mut omsm = OmsmBuilder::new();
//! # omsm.add_mode("m", 1.0, g.build().unwrap());
//! # let system = System::new("s", omsm.build().unwrap(), arch.build().unwrap(),
//! #     tech.build()).unwrap();
//! let warnings = lint_system(&system);
//! for w in &warnings {
//!     eprintln!("warning: {w}");
//! }
//! ```

use std::fmt;

use crate::ids::{ModeId, PeId, TaskId, TaskTypeId};
use crate::system::System;
use crate::units::Seconds;

/// A non-fatal specification diagnostic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LintWarning {
    /// A mode cannot be entered from any other mode.
    UnreachableMode {
        /// The unreachable mode.
        mode: ModeId,
    },
    /// A mode has no outgoing transition; the system can never leave it.
    TrappingMode {
        /// The trapping mode.
        mode: ModeId,
    },
    /// A mode with meaningful probability mass (`> 1 %`) whose task graph
    /// is trivial (a single task) — probably an unfinished specification.
    ProbableStub {
        /// The suspicious mode.
        mode: ModeId,
    },
    /// A task's deadline exceeds its mode's period and is therefore
    /// ignored (the effective deadline is `min(θ, φ)`).
    DeadlineBeyondPeriod {
        /// The mode containing the task.
        mode: ModeId,
        /// The task with the oversized deadline.
        task: TaskId,
    },
    /// A mode's period is shorter than its critical path even with the
    /// fastest implementation of every task — no mapping can meet it.
    PeriodTighterThanCriticalPath {
        /// The over-constrained mode.
        mode: ModeId,
        /// The lower bound on the critical path.
        critical_path: Seconds,
        /// The mode's period.
        period: Seconds,
    },
    /// A task type used by some mode has only software implementations,
    /// although hardware PEs exist — a possible library gap.
    SoftwareOnlyType {
        /// The affected type.
        task_type: TaskTypeId,
    },
    /// A hardware PE that no task type can be implemented on.
    UnusableHardware {
        /// The unusable PE.
        pe: PeId,
    },
    /// A DVS-enabled PE with a single supply level — scaling can never
    /// change anything.
    DegenerateDvs {
        /// The affected PE.
        pe: PeId,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnreachableMode { mode } => {
                write!(f, "mode {mode} is unreachable from every other mode")
            }
            Self::TrappingMode { mode } => {
                write!(f, "mode {mode} has no outgoing transition")
            }
            Self::ProbableStub { mode } => write!(
                f,
                "mode {mode} carries probability mass but contains a single task"
            ),
            Self::DeadlineBeyondPeriod { mode, task } => write!(
                f,
                "task {task} of mode {mode} has a deadline beyond the period (ignored)"
            ),
            Self::PeriodTighterThanCriticalPath { mode, critical_path, period } => write!(
                f,
                "mode {mode}: period {period:.6} is below the critical-path lower bound {critical_path:.6}"
            ),
            Self::SoftwareOnlyType { task_type } => write!(
                f,
                "task type {task_type} has no hardware implementation although hardware PEs exist"
            ),
            Self::UnusableHardware { pe } => {
                write!(f, "hardware PE {pe} cannot implement any task type")
            }
            Self::DegenerateDvs { pe } => {
                write!(f, "PE {pe} is DVS-enabled but offers a single supply level")
            }
        }
    }
}

/// Lints `system` and returns all diagnostics found.
pub fn lint_system(system: &System) -> Vec<LintWarning> {
    let mut warnings = Vec::new();
    let omsm = system.omsm();
    let arch = system.arch();
    let tech = system.tech();

    // Reachability over the transition graph (multi-mode systems only).
    if omsm.mode_count() > 1 {
        for mode in omsm.mode_ids() {
            if !omsm.transitions().any(|(_, t)| t.to() == mode) {
                warnings.push(LintWarning::UnreachableMode { mode });
            }
            if omsm.transitions_from(mode).next().is_none() {
                warnings.push(LintWarning::TrappingMode { mode });
            }
        }
    }

    for (mode, m) in omsm.modes() {
        let graph = m.graph();
        if m.probability() > 0.01 && graph.task_count() == 1 && omsm.mode_count() > 1 {
            warnings.push(LintWarning::ProbableStub { mode });
        }
        for (task, t) in graph.tasks() {
            if let Some(d) = t.deadline() {
                if d > graph.period() {
                    warnings.push(LintWarning::DeadlineBeyondPeriod { mode, task });
                }
            }
        }
        // Critical path with every task at its fastest implementation and
        // free communication is a lower bound on any schedule.
        let cp = graph.critical_path(
            |task| {
                tech.fastest_exec_time(graph.task(task).task_type())
                    .unwrap_or(Seconds::ZERO)
            },
            |_| Seconds::ZERO,
        );
        if cp > graph.period() {
            warnings.push(LintWarning::PeriodTighterThanCriticalPath {
                mode,
                critical_path: cp,
                period: graph.period(),
            });
        }
    }

    let has_hardware = arch.hardware_pes().next().is_some();
    if has_hardware {
        let mut used_types: Vec<TaskTypeId> = omsm
            .modes()
            .flat_map(|(_, m)| m.graph().used_types())
            .collect();
        used_types.sort_unstable();
        used_types.dedup();
        for ty in used_types {
            let hw_impl = tech
                .pes_supporting(ty)
                .any(|pe| arch.pe(pe).kind().is_hardware());
            if !hw_impl {
                warnings.push(LintWarning::SoftwareOnlyType { task_type: ty });
            }
        }
        for pe in arch.hardware_pes() {
            let usable = tech.type_ids().any(|ty| tech.impl_of(ty, pe).is_some());
            if !usable {
                warnings.push(LintWarning::UnusableHardware { pe });
            }
        }
    }

    for (pe, info) in arch.pes() {
        if let Some(dvs) = info.dvs() {
            if dvs.levels().len() < 2 {
                warnings.push(LintWarning::DegenerateDvs { pe });
            }
        }
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchitectureBuilder, Cl, DvsCapability, Pe, PeKind};
    use crate::omsm::OmsmBuilder;
    use crate::task_graph::{TaskGraph, TaskGraphBuilder};
    use crate::tech::{Implementation, TechLibraryBuilder};
    use crate::units::{Cells, Volts, Watts};

    fn graph(name: &str, n: usize, period: Seconds) -> TaskGraph {
        let mut b = TaskGraphBuilder::new(name, period);
        for i in 0..n {
            b.add_task(format!("t{i}"), TaskTypeId::new(0));
        }
        b.build().unwrap()
    }

    /// A clean two-mode system that should lint without warnings.
    fn clean_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        arch.add_cl(Cl::bus("bus", vec![cpu, hw], Seconds::ZERO, Watts::ZERO, Watts::ZERO))
            .unwrap();
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        tech.set_impl(
            t,
            hw,
            Implementation::hardware(Seconds::new(0.001), Watts::ZERO, Cells::new(50)),
        );
        let mut omsm = OmsmBuilder::new();
        let a = omsm.add_mode("a", 0.5, graph("a", 3, Seconds::new(1.0)));
        let b = omsm.add_mode("b", 0.5, graph("b", 3, Seconds::new(1.0)));
        omsm.add_transition(a, b, Seconds::new(0.1)).unwrap();
        omsm.add_transition(b, a, Seconds::new(0.1)).unwrap();
        System::new("clean", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    #[test]
    fn clean_system_has_no_warnings() {
        assert_eq!(lint_system(&clean_system()), vec![]);
    }

    #[test]
    fn detects_unreachable_and_trapping_modes() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut omsm = OmsmBuilder::new();
        let a = omsm.add_mode("a", 0.5, graph("a", 2, Seconds::new(1.0)));
        let b = omsm.add_mode("b", 0.5, graph("b", 2, Seconds::new(1.0)));
        omsm.add_transition(a, b, Seconds::new(0.1)).unwrap();
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings.contains(&LintWarning::UnreachableMode { mode: a }));
        assert!(warnings.contains(&LintWarning::TrappingMode { mode: b }));
    }

    #[test]
    fn detects_impossible_period_and_big_deadline() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.5), Watts::ZERO));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(0.4));
        let a = g.add_task_with_deadline("a", t, Seconds::new(2.0));
        let b = g.add_task("b", t);
        g.add_comm(a, b, 1.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        let mode = omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::PeriodTighterThanCriticalPath { mode: m, .. } if *m == mode)));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, LintWarning::DeadlineBeyondPeriod { .. })));
    }

    #[test]
    fn detects_software_only_types_and_unusable_hardware() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, graph("m", 2, Seconds::new(1.0)));
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings.contains(&LintWarning::SoftwareOnlyType { task_type: t }));
        assert!(warnings.contains(&LintWarning::UnusableHardware { pe: hw }));
    }

    #[test]
    fn detects_degenerate_dvs_and_stub_modes() {
        let mut tech = TechLibraryBuilder::new();
        let t = tech.add_type("T");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(3.3)],
            )),
        );
        tech.set_impl(t, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut omsm = OmsmBuilder::new();
        let a = omsm.add_mode("a", 0.9, graph("a", 1, Seconds::new(1.0)));
        let b = omsm.add_mode("b", 0.1, graph("b", 3, Seconds::new(1.0)));
        omsm.add_transition(a, b, Seconds::new(0.1)).unwrap();
        omsm.add_transition(b, a, Seconds::new(0.1)).unwrap();
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let warnings = lint_system(&system);
        assert!(warnings.contains(&LintWarning::DegenerateDvs { pe: cpu }));
        assert!(warnings.contains(&LintWarning::ProbableStub { mode: a }));
    }

    #[test]
    fn warning_display_is_informative() {
        let w = LintWarning::PeriodTighterThanCriticalPath {
            mode: ModeId::new(2),
            critical_path: Seconds::new(0.5),
            period: Seconds::new(0.4),
        };
        let text = w.to_string();
        assert!(text.contains("O2"));
        assert!(text.contains("critical-path"));
    }
}
