//! Specification and architecture models for multi-mode embedded co-synthesis.
//!
//! This crate provides the data model of the DATE 2003 paper *“A Co-Design
//! Methodology for Energy-Efficient Multi-Mode Embedded Systems with
//! Consideration of Mode Execution Probabilities”* (Schmitz, Al-Hashimi,
//! Eles):
//!
//! * [`TaskGraph`] — the functional specification of one operational mode:
//!   a DAG of coarse-grained tasks with data-carrying precedence edges, a
//!   repetition period and optional per-task deadlines;
//! * [`Omsm`] — the *operational mode state machine*: the top-level finite
//!   state machine over modes, annotated with execution probabilities
//!   `Ψ_O` and maximal mode-transition times `t_T^max`;
//! * [`Architecture`] — heterogeneous PEs (GPP/ASIP/ASIC/FPGA, optionally
//!   DVS-enabled) connected by bus-style communication links;
//! * [`TechLibrary`] — per-(task type, PE) implementation alternatives
//!   (execution time, dynamic power, core area);
//! * [`System`] — the cross-validated bundle of the three.
//!
//! # Examples
//!
//! Building the skeleton of a two-mode system:
//!
//! ```
//! use momsynth_model::{
//!     ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, System,
//!     TaskGraphBuilder, TechLibraryBuilder,
//! };
//! use momsynth_model::units::{Cells, Seconds, Watts};
//!
//! # fn main() -> Result<(), momsynth_model::ModelError> {
//! // Technology library with one task type, implementable in SW and HW.
//! let mut tech = TechLibraryBuilder::new();
//! let fft = tech.add_type("FFT");
//!
//! // Architecture: one CPU and one ASIC on a bus.
//! let mut arch = ArchitectureBuilder::new();
//! let cpu = arch.add_pe(Pe::software("CPU", PeKind::Gpp, Watts::from_milli(0.2)));
//! let asic = arch.add_pe(Pe::hardware(
//!     "ASIC", PeKind::Asic, Cells::new(600), Watts::from_milli(0.1)));
//! arch.add_cl(Cl::bus("BUS", vec![cpu, asic],
//!     Seconds::from_micros(1.0), Watts::from_milli(1.0), Watts::from_milli(0.05)))?;
//!
//! tech.set_impl(fft, cpu,
//!     Implementation::software(Seconds::from_millis(20.0), Watts::from_milli(500.0)));
//! tech.set_impl(fft, asic,
//!     Implementation::hardware(Seconds::from_millis(2.0), Watts::from_milli(5.0),
//!         Cells::new(240)));
//!
//! // Two modes, each running one FFT per 100 ms frame.
//! let mut active = TaskGraphBuilder::new("active", Seconds::from_millis(100.0));
//! active.add_task("fft", fft);
//! let mut idle = TaskGraphBuilder::new("idle", Seconds::from_millis(100.0));
//! idle.add_task("fft", fft);
//!
//! let mut omsm = OmsmBuilder::new();
//! let m_active = omsm.add_mode("active", 0.1, active.build()?);
//! let m_idle = omsm.add_mode("idle", 0.9, idle.build()?);
//! omsm.add_transition(m_active, m_idle, Seconds::from_millis(10.0))?;
//! omsm.add_transition(m_idle, m_active, Seconds::from_millis(10.0))?;
//!
//! let system = System::new("demo", omsm.build()?, arch.build()?, tech.build())?;
//! assert_eq!(system.omsm().mode_count(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod dot;
pub mod error;
pub mod ids;
pub mod lint;
pub mod omsm;
pub mod system;
pub mod task_graph;
pub mod tech;
pub mod units;
pub mod usage;

pub use arch::{Architecture, ArchitectureBuilder, Cl, DvsCapability, Pe, PeKind};
pub use error::ModelError;
pub use lint::{lint_system, LintWarning};
pub use omsm::{Mode, Omsm, OmsmBuilder, Transition, PROBABILITY_SUM_TOLERANCE};
pub use system::{ModeRef, System};
pub use task_graph::{Comm, Task, TaskGraph, TaskGraphBuilder};
pub use tech::{Implementation, TechLibrary, TechLibraryBuilder};
pub use usage::{UsageError, UsageModel};
