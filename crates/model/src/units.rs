//! Strongly typed physical quantities used throughout the workspace.
//!
//! The co-synthesis flow mixes times, powers, energies, voltages and silicon
//! area in a single optimisation loop; newtypes keep those dimensions from
//! being accidentally confused ([C-NEWTYPE]). All quantities are stored in SI
//! base units (seconds, watts, joules, volts) while the reporting layer
//! formats them in the paper's units (ms, mW, mWs).
//!
//! # Examples
//!
//! ```
//! use momsynth_model::units::{Seconds, Watts};
//!
//! let exec_time = Seconds::from_millis(20.0);
//! let power = Watts::from_milli(10.0);
//! let energy = power * exec_time;
//! assert!((energy.as_milli_joules() - 0.2).abs() < 1e-9);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! float_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value in SI base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in SI base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` if the quantity is a finite number.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Clamps negative values to zero.
            #[inline]
            pub fn clamp_non_negative(self) -> Self {
                Self(self.0.max(0.0))
            }

            /// Absolute difference between two quantities.
            #[inline]
            pub fn abs_diff(self, other: Self) -> Self {
                Self((self.0 - other.0).abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a $name>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

float_unit!(
    /// A time duration in seconds.
    Seconds,
    "s"
);

float_unit!(
    /// A power in watts.
    Watts,
    "W"
);

float_unit!(
    /// An energy in joules.
    Joules,
    "J"
);

float_unit!(
    /// An electric potential in volts.
    Volts,
    "V"
);

impl Seconds {
    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: f64) -> Self {
        Self(ms / 1000.0)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: f64) -> Self {
        Self(us / 1_000_000.0)
    }

    /// Returns the duration in milliseconds.
    #[inline]
    pub const fn as_millis(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    #[inline]
    pub const fn from_milli(mw: f64) -> Self {
        Self(mw / 1000.0)
    }

    /// Creates a power from microwatts.
    #[inline]
    pub const fn from_micro(uw: f64) -> Self {
        Self(uw / 1_000_000.0)
    }

    /// Returns the power in milliwatts.
    #[inline]
    pub const fn as_milli(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Joules {
    /// Creates an energy from the paper's `mWs` (milliwatt-seconds).
    #[inline]
    pub const fn from_milli_watt_seconds(mws: f64) -> Self {
        Self(mws / 1000.0)
    }

    /// Returns the energy in millijoules (equivalently `mWs`).
    #[inline]
    pub const fn as_milli_joules(self) -> f64 {
        self.0 * 1000.0
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

/// Silicon area measured in abstract cells, as in the paper's examples.
///
/// Area is integral and never negative; arithmetic saturates rather than
/// wrapping so that an over-subscribed hardware component reports a large
/// deficit instead of panicking.
///
/// # Examples
///
/// ```
/// use momsynth_model::units::Cells;
///
/// let asic = Cells::new(600);
/// let used = Cells::new(240) + Cells::new(300);
/// assert!(used <= asic);
/// assert_eq!(asic.saturating_sub(used), Cells::new(60));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cells(u64);

impl Cells {
    /// Zero cells.
    pub const ZERO: Self = Self(0);

    /// Creates an area from a cell count.
    #[inline]
    pub const fn new(cells: u64) -> Self {
        Self(cells)
    }

    /// Returns the raw cell count.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: returns zero when `rhs` exceeds `self`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Ratio of this area to `other`, as used by area penalties.
    #[inline]
    pub fn ratio_to(self, other: Self) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl Add for Cells {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cells {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Mul<u64> for Cells {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0.saturating_mul(rhs))
    }
}

impl Sum for Cells {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, v| acc + v)
    }
}

impl<'a> Sum<&'a Cells> for Cells {
    fn sum<I: Iterator<Item = &'a Cells>>(iter: I) -> Self {
        iter.copied().sum()
    }
}

impl fmt::Display for Cells {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cells", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversions_round_trip() {
        let s = Seconds::from_millis(20.0);
        assert!((s.value() - 0.02).abs() < 1e-12);
        assert!((s.as_millis() - 20.0).abs() < 1e-12);
        let u = Seconds::from_micros(1500.0);
        assert!((u.as_millis() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts::from_milli(10.0) * Seconds::from_millis(20.0);
        assert!((e.as_milli_joules() - 0.2).abs() < 1e-12);
        let e2 = Seconds::from_millis(20.0) * Watts::from_milli(10.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn joules_divided_by_time_is_power() {
        let p = Joules::from_milli_watt_seconds(200.0) / Seconds::new(2.0);
        assert!((p.as_milli() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn joules_divided_by_power_is_time() {
        let t = Joules::new(0.5) / Watts::new(0.25);
        assert!((t.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unit_arithmetic_and_comparisons() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a + b, Seconds::new(3.0));
        assert_eq!(b - a, Seconds::new(1.0));
        assert_eq!(b * 2.0, Seconds::new(4.0));
        assert_eq!(2.0 * b, Seconds::new(4.0));
        assert_eq!(b / 2.0, Seconds::new(1.0));
        assert!((b / a - 2.0).abs() < 1e-12);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(-a, Seconds::new(-1.0));
        assert_eq!((-a).clamp_non_negative(), Seconds::ZERO);
    }

    #[test]
    fn unit_sum_over_iterators() {
        let total: Seconds = [Seconds::new(1.0), Seconds::new(2.5)].iter().sum();
        assert_eq!(total, Seconds::new(3.5));
        let total2: Seconds = [Seconds::new(1.0), Seconds::new(2.5)].into_iter().sum();
        assert_eq!(total2, Seconds::new(3.5));
    }

    #[test]
    fn unit_display_formats_with_suffix_and_precision() {
        assert_eq!(format!("{:.3}", Watts::new(0.0104)), "0.010 W");
        assert_eq!(format!("{}", Volts::new(3.3)), "3.3 V");
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Volts::new(1.2);
        let b = Volts::new(3.3);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert!((a.abs_diff(b).value() - 2.1).abs() < 1e-12);
    }

    #[test]
    fn cells_saturating_arithmetic() {
        let a = Cells::new(u64::MAX);
        assert_eq!(a + Cells::new(10), Cells::new(u64::MAX));
        assert_eq!(Cells::new(5).saturating_sub(Cells::new(10)), Cells::ZERO);
        assert_eq!(Cells::new(10).checked_sub(Cells::new(5)), Some(Cells::new(5)));
        assert_eq!(Cells::new(5).checked_sub(Cells::new(10)), None);
        assert_eq!(Cells::new(3) * 4, Cells::new(12));
    }

    #[test]
    fn cells_sum_and_ratio() {
        let used: Cells = [Cells::new(240), Cells::new(300)].iter().sum();
        assert_eq!(used, Cells::new(540));
        assert!((used.ratio_to(Cells::new(600)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let s = Seconds::new(0.025);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "0.025");
        let back: Seconds = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);

        let c = Cells::new(600);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(json, "600");
        let back: Cells = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
