//! The top-level specification: the operational mode state machine (OMSM).
//!
//! An [`Omsm`] `ϒ(Ω, Θ)` is a directed cyclic graph whose nodes are
//! [`Mode`]s and whose edges are [`Transition`]s. At any time exactly one
//! mode is active (modes are mutually exclusive). Each mode carries its
//! execution probability `Ψ_O` — the fraction of operational time the
//! device spends in it — and a [`TaskGraph`] describing its functionality.
//! Each transition carries a maximal transition time `t_T^max` that any
//! implementation (e.g. FPGA reconfiguration) must respect.
//!
//! # Examples
//!
//! ```
//! use momsynth_model::{OmsmBuilder, TaskGraphBuilder};
//! use momsynth_model::ids::TaskTypeId;
//! use momsynth_model::units::Seconds;
//!
//! # fn main() -> Result<(), momsynth_model::ModelError> {
//! let mut g1 = TaskGraphBuilder::new("standby", Seconds::from_millis(20.0));
//! g1.add_task("rlc", TaskTypeId::new(0));
//! let mut g2 = TaskGraphBuilder::new("call", Seconds::from_millis(20.0));
//! g2.add_task("codec", TaskTypeId::new(1));
//!
//! let mut b = OmsmBuilder::new();
//! let standby = b.add_mode("standby", 0.9, g1.build()?);
//! let call = b.add_mode("call", 0.1, g2.build()?);
//! b.add_transition(standby, call, Seconds::from_millis(5.0))?;
//! b.add_transition(call, standby, Seconds::from_millis(5.0))?;
//! let omsm = b.build()?;
//! assert_eq!(omsm.mode_count(), 2);
//! assert!((omsm.mode(standby).probability() - 0.9).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{ModeId, TransitionId};
use crate::task_graph::TaskGraph;
use crate::units::Seconds;

/// Tolerance accepted when checking that mode probabilities sum to one.
pub const PROBABILITY_SUM_TOLERANCE: f64 = 1e-6;

/// One operational mode: a name, an execution probability and a task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mode {
    name: String,
    probability: f64,
    graph: TaskGraph,
}

impl Mode {
    /// Returns the mode's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the execution probability `Ψ_O` of this mode.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Returns the mode's functional specification.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }
}

/// A mode change with its maximal allowed transition time `t_T^max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    from: ModeId,
    to: ModeId,
    max_time: Seconds,
}

impl Transition {
    /// Returns the source mode.
    pub fn from(&self) -> ModeId {
        self.from
    }

    /// Returns the destination mode.
    pub fn to(&self) -> ModeId {
        self.to
    }

    /// Returns the maximal allowed transition time.
    pub fn max_time(&self) -> Seconds {
        self.max_time
    }
}

/// A validated operational mode state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Omsm {
    modes: Vec<Mode>,
    transitions: Vec<Transition>,
}

impl Omsm {
    /// Returns the number of modes.
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// Returns the number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Returns the mode with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this OMSM.
    pub fn mode(&self, id: ModeId) -> &Mode {
        &self.modes[id.index()]
    }

    /// Iterates over `(id, mode)` pairs in identifier order.
    pub fn modes(&self) -> impl Iterator<Item = (ModeId, &Mode)> + '_ {
        self.modes.iter().enumerate().map(|(i, m)| (ModeId::new(i), m))
    }

    /// Returns all mode identifiers.
    pub fn mode_ids(&self) -> impl Iterator<Item = ModeId> + '_ {
        (0..self.modes.len()).map(ModeId::new)
    }

    /// Returns the transition with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this OMSM.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Iterates over `(id, transition)` pairs in identifier order.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> + '_ {
        self.transitions.iter().enumerate().map(|(i, t)| (TransitionId::new(i), t))
    }

    /// Iterates over transitions leaving `mode`.
    pub fn transitions_from(&self, mode: ModeId) -> impl Iterator<Item = &Transition> + '_ {
        self.transitions.iter().filter(move |t| t.from == mode)
    }

    /// Total number of tasks across all modes.
    pub fn total_task_count(&self) -> usize {
        self.modes.iter().map(|m| m.graph.task_count()).sum()
    }

    /// Total number of communication edges across all modes.
    pub fn total_comm_count(&self) -> usize {
        self.modes.iter().map(|m| m.graph.comm_count()).sum()
    }

    /// Returns a copy of this machine with replaced execution
    /// probabilities — the tool for per-user-profile sensitivity studies
    /// (see [`crate::usage`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbabilities`] or
    /// [`ModelError::InvalidProbability`] under the same rules as
    /// [`OmsmBuilder::build`], and [`ModelError::NoModes`] when
    /// `probabilities` has the wrong length.
    ///
    /// # Examples
    ///
    /// ```
    /// # use momsynth_model::{OmsmBuilder, TaskGraphBuilder};
    /// # use momsynth_model::ids::{ModeId, TaskTypeId};
    /// # use momsynth_model::units::Seconds;
    /// # fn graph(name: &str) -> momsynth_model::TaskGraph {
    /// #     let mut b = TaskGraphBuilder::new(name, Seconds::new(1.0));
    /// #     b.add_task("t", TaskTypeId::new(0));
    /// #     b.build().unwrap()
    /// # }
    /// let mut b = OmsmBuilder::new();
    /// b.add_mode("a", 0.5, graph("a"));
    /// b.add_mode("b", 0.5, graph("b"));
    /// let omsm = b.build().unwrap();
    /// let skewed = omsm.with_probabilities(&[0.9, 0.1]).unwrap();
    /// assert!((skewed.mode(ModeId::new(0)).probability() - 0.9).abs() < 1e-12);
    /// ```
    pub fn with_probabilities(&self, probabilities: &[f64]) -> Result<Self, ModelError> {
        if probabilities.len() != self.modes.len() {
            return Err(ModelError::NoModes);
        }
        let mut builder = OmsmBuilder::new();
        for (mode, &p) in self.modes.iter().zip(probabilities) {
            builder.add_mode(mode.name.clone(), p, mode.graph.clone());
        }
        for t in &self.transitions {
            builder.add_transition(t.from, t.to, t.max_time)?;
        }
        builder.build()
    }
}

/// Incremental builder for [`Omsm`].
#[derive(Debug, Clone, Default)]
pub struct OmsmBuilder {
    modes: Vec<Mode>,
    transitions: Vec<Transition>,
}

impl OmsmBuilder {
    /// Starts an empty OMSM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a mode and returns its identifier.
    pub fn add_mode(
        &mut self,
        name: impl Into<String>,
        probability: f64,
        graph: TaskGraph,
    ) -> ModeId {
        let id = ModeId::new(self.modes.len());
        self.modes.push(Mode { name: name.into(), probability, graph });
        id
    }

    /// Adds a transition between two distinct modes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownMode`] if either endpoint was not added,
    /// [`ModelError::SelfTransition`] if `from == to`, and
    /// [`ModelError::InvalidTransitionTime`] for a non-positive or
    /// non-finite `max_time`.
    pub fn add_transition(
        &mut self,
        from: ModeId,
        to: ModeId,
        max_time: Seconds,
    ) -> Result<TransitionId, ModelError> {
        for &m in &[from, to] {
            if m.index() >= self.modes.len() {
                return Err(ModelError::UnknownMode { mode: m });
            }
        }
        let id = TransitionId::new(self.transitions.len());
        if from == to {
            return Err(ModelError::SelfTransition { transition: id });
        }
        if !(max_time.value() > 0.0 && max_time.is_finite()) {
            return Err(ModelError::InvalidTransitionTime { transition: id });
        }
        self.transitions.push(Transition { from, to, max_time });
        Ok(id)
    }

    /// Validates the state machine and freezes it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoModes`] for an empty machine,
    /// [`ModelError::InvalidProbability`] for a negative or non-finite mode
    /// probability, and [`ModelError::InvalidProbabilities`] when the
    /// probabilities do not sum to one (within
    /// [`PROBABILITY_SUM_TOLERANCE`]).
    pub fn build(self) -> Result<Omsm, ModelError> {
        if self.modes.is_empty() {
            return Err(ModelError::NoModes);
        }
        let mut sum = 0.0;
        for (i, m) in self.modes.iter().enumerate() {
            if !(m.probability >= 0.0 && m.probability.is_finite()) {
                return Err(ModelError::InvalidProbability {
                    mode: ModeId::new(i),
                    probability: m.probability,
                });
            }
            sum += m.probability;
        }
        if (sum - 1.0).abs() > PROBABILITY_SUM_TOLERANCE {
            return Err(ModelError::InvalidProbabilities { sum });
        }
        Ok(Omsm { modes: self.modes, transitions: self.transitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskTypeId;
    use crate::task_graph::TaskGraphBuilder;

    fn tiny_graph(name: &str) -> TaskGraph {
        let mut b = TaskGraphBuilder::new(name, Seconds::new(1.0));
        b.add_task("t", TaskTypeId::new(0));
        b.build().unwrap()
    }

    fn two_mode_builder() -> (OmsmBuilder, ModeId, ModeId) {
        let mut b = OmsmBuilder::new();
        let m0 = b.add_mode("a", 0.25, tiny_graph("a"));
        let m1 = b.add_mode("b", 0.75, tiny_graph("b"));
        (b, m0, m1)
    }

    #[test]
    fn builds_valid_machine() {
        let (mut b, m0, m1) = two_mode_builder();
        b.add_transition(m0, m1, Seconds::new(0.01)).unwrap();
        b.add_transition(m1, m0, Seconds::new(0.02)).unwrap();
        let omsm = b.build().unwrap();
        assert_eq!(omsm.mode_count(), 2);
        assert_eq!(omsm.transition_count(), 2);
        assert_eq!(omsm.mode(m1).name(), "b");
        assert_eq!(omsm.transitions_from(m0).count(), 1);
        assert_eq!(omsm.total_task_count(), 2);
        assert_eq!(omsm.total_comm_count(), 0);
    }

    #[test]
    fn rejects_empty_machine() {
        assert!(matches!(OmsmBuilder::new().build(), Err(ModelError::NoModes)));
    }

    #[test]
    fn rejects_probability_sum_mismatch() {
        let mut b = OmsmBuilder::new();
        b.add_mode("a", 0.3, tiny_graph("a"));
        b.add_mode("b", 0.3, tiny_graph("b"));
        assert!(matches!(b.build(), Err(ModelError::InvalidProbabilities { .. })));
    }

    #[test]
    fn accepts_probability_sum_within_tolerance() {
        let mut b = OmsmBuilder::new();
        b.add_mode("a", 0.3 + 1e-9, tiny_graph("a"));
        b.add_mode("b", 0.7, tiny_graph("b"));
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_negative_or_nan_probability() {
        let mut b = OmsmBuilder::new();
        b.add_mode("a", -0.1, tiny_graph("a"));
        b.add_mode("b", 1.1, tiny_graph("b"));
        assert!(matches!(b.build(), Err(ModelError::InvalidProbability { .. })));

        let mut b = OmsmBuilder::new();
        b.add_mode("a", f64::NAN, tiny_graph("a"));
        assert!(matches!(b.build(), Err(ModelError::InvalidProbability { .. })));
    }

    #[test]
    fn zero_probability_mode_is_allowed() {
        let mut b = OmsmBuilder::new();
        b.add_mode("init", 0.0, tiny_graph("init"));
        b.add_mode("run", 1.0, tiny_graph("run"));
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_bad_transitions() {
        let (mut b, m0, _) = two_mode_builder();
        assert!(matches!(
            b.add_transition(m0, m0, Seconds::new(0.01)),
            Err(ModelError::SelfTransition { .. })
        ));
        assert!(matches!(
            b.add_transition(m0, ModeId::new(9), Seconds::new(0.01)),
            Err(ModelError::UnknownMode { .. })
        ));
        assert!(matches!(
            b.add_transition(m0, ModeId::new(1), Seconds::ZERO),
            Err(ModelError::InvalidTransitionTime { .. })
        ));
    }

    #[test]
    fn serde_round_trip_preserves_machine() {
        let (mut b, m0, m1) = two_mode_builder();
        b.add_transition(m0, m1, Seconds::new(0.01)).unwrap();
        let omsm = b.build().unwrap();
        let json = serde_json::to_string(&omsm).unwrap();
        let back: Omsm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, omsm);
    }
}
