//! Property-based tests of the model crate: unit algebra, task-graph
//! invariants and OMSM validation.

use proptest::prelude::*;

use momsynth_model::ids::{TaskId, TaskTypeId};
use momsynth_model::units::{Cells, Joules, Seconds, Watts};
use momsynth_model::{OmsmBuilder, TaskGraph, TaskGraphBuilder};

fn finite_positive() -> impl Strategy<Value = f64> {
    (1e-6f64..1e6).prop_filter("finite", |v| v.is_finite())
}

/// A random DAG built by only adding forward edges (i < j).
fn random_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..24, proptest::collection::vec((0usize..1000, 0usize..1000), 0..60), finite_positive())
        .prop_map(|(n, raw_edges, period)| {
            let mut b = TaskGraphBuilder::new("prop", Seconds::new(period));
            let tasks: Vec<TaskId> =
                (0..n).map(|i| b.add_task(format!("t{i}"), TaskTypeId::new(i % 5))).collect();
            for (a, c) in raw_edges {
                let i = a % n;
                let j = c % n;
                if i < j {
                    let _ = b.add_comm(tasks[i], tasks[j], (a % 100) as f64);
                }
            }
            b.build().expect("forward edges cannot form cycles")
        })
}

proptest! {
    #[test]
    fn unit_addition_is_commutative_and_associative(a in -1e9f64..1e9, b in -1e9f64..1e9, c in -1e9f64..1e9) {
        let (x, y, z) = (Seconds::new(a), Seconds::new(b), Seconds::new(c));
        prop_assert_eq!(x + y, y + x);
        prop_assert!((((x + y) + z) - (x + (y + z))).value().abs() <= 1e-6 * (a.abs() + b.abs() + c.abs() + 1.0));
    }

    #[test]
    fn energy_power_time_triangle(p in finite_positive(), t in finite_positive()) {
        let power = Watts::new(p);
        let time = Seconds::new(t);
        let energy: Joules = power * time;
        prop_assert!((energy / time - power).value().abs() <= 1e-9 * p);
        prop_assert!((energy / power - time).value().abs() <= 1e-9 * t);
    }

    #[test]
    fn cells_addition_never_panics_and_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let sum = Cells::new(a) + Cells::new(b);
        prop_assert!(sum >= Cells::new(a).min(Cells::new(b)));
        prop_assert_eq!(Cells::new(a).saturating_sub(Cells::new(b)) , Cells::new(a.saturating_sub(b)));
    }

    #[test]
    fn topological_order_is_a_valid_permutation(graph in random_dag()) {
        let topo = graph.topological_order();
        prop_assert_eq!(topo.len(), graph.task_count());
        let mut seen = vec![false; graph.task_count()];
        for &t in topo {
            for &(_, pred) in graph.predecessors(t) {
                prop_assert!(seen[pred.index()], "{pred} not before {t}");
            }
            seen[t.index()] = true;
        }
    }

    #[test]
    fn successors_and_predecessors_are_mirrors(graph in random_dag()) {
        for t in graph.task_ids() {
            for &(comm, succ) in graph.successors(t) {
                prop_assert!(graph.predecessors(succ).contains(&(comm, t)));
            }
            for &(comm, pred) in graph.predecessors(t) {
                prop_assert!(graph.successors(pred).contains(&(comm, t)));
            }
        }
    }

    #[test]
    fn critical_path_dominates_every_single_task(graph in random_dag(), w in finite_positive()) {
        let weight = Seconds::new(w);
        let cp = graph.critical_path(|_| weight, |_| Seconds::ZERO);
        prop_assert!(cp >= weight);
        // And is at most the serial sum.
        prop_assert!(cp.value() <= weight.value() * graph.task_count() as f64 + 1e-9);
    }

    #[test]
    fn critical_path_is_monotone_in_task_weights(graph in random_dag(), w in finite_positive()) {
        let short = graph.critical_path(|_| Seconds::new(w), |_| Seconds::ZERO);
        let long = graph.critical_path(|_| Seconds::new(w * 2.0), |_| Seconds::ZERO);
        prop_assert!(long >= short);
    }

    #[test]
    fn effective_deadline_never_exceeds_period(graph in random_dag()) {
        for t in graph.task_ids() {
            prop_assert!(graph.effective_deadline(t) <= graph.period());
            prop_assert!(graph.effective_deadline(t).value() > 0.0);
        }
    }

    #[test]
    fn used_types_are_sorted_and_unique(graph in random_dag()) {
        let types = graph.used_types();
        for pair in types.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        let count: usize = types.iter().map(|&ty| graph.count_of_type(ty)).sum();
        prop_assert_eq!(count, graph.task_count());
    }

    #[test]
    fn omsm_accepts_any_normalised_distribution(raw in proptest::collection::vec(0.01f64..1.0, 1..6)) {
        let total: f64 = raw.iter().sum();
        let mut b = OmsmBuilder::new();
        for (i, &w) in raw.iter().enumerate() {
            let mut g = TaskGraphBuilder::new(format!("m{i}"), Seconds::new(1.0));
            g.add_task("t", TaskTypeId::new(0));
            b.add_mode(format!("m{i}"), w / total, g.build().expect("valid graph"));
        }
        prop_assert!(b.build().is_ok());
    }

    #[test]
    fn graph_serde_round_trips(graph in random_dag()) {
        let json = serde_json::to_string(&graph).expect("serialises");
        let back: TaskGraph = serde_json::from_str(&json).expect("deserialises");
        prop_assert_eq!(back, graph);
    }
}
