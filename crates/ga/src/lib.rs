//! A generic genetic-algorithm engine.
//!
//! Implements the optimisation skeleton of the paper's Fig. 4: an initial
//! random population, cost-ranked tournament selection, two-point
//! crossover, per-gene mutation, elitism, problem-specific *improvement
//! operators* (hooks applied to a few individuals per generation, like the
//! paper's shut-down/area/timing/transition strategies) and a convergence
//! criterion based on stagnation.
//!
//! The engine is domain-agnostic: a [`GaProblem`] supplies the gene type,
//! the per-locus random gene distribution, the cost function (lower is
//! better) and optionally the improvement hook. The multi-mode mapping
//! problem in `momsynth-core` is one instance; the unit tests here use
//! simple numeric problems.
//!
//! # Examples
//!
//! ```
//! use momsynth_ga::{run, GaConfig, GaProblem};
//! use rand::Rng;
//!
//! /// Minimise the number of non-zero genes.
//! struct AllZeros;
//!
//! impl GaProblem for AllZeros {
//!     type Gene = u8;
//!     fn genome_len(&self) -> usize { 16 }
//!     fn random_gene(&self, _locus: usize, rng: &mut dyn rand::RngCore) -> u8 {
//!         rand::Rng::gen_range(rng, 0..4)
//!     }
//!     fn cost(&self, genome: &[u8]) -> f64 {
//!         genome.iter().filter(|&&g| g != 0).count() as f64
//!     }
//! }
//!
//! let outcome = run(&AllZeros, &GaConfig { seed: 7, ..GaConfig::default() });
//! assert_eq!(outcome.best_cost, 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// An optimisation problem over fixed-length genomes.
pub trait GaProblem {
    /// The gene type at every locus.
    type Gene: Clone;

    /// Number of genes in a genome.
    fn genome_len(&self) -> usize;

    /// Samples a random gene for the given locus; used for initialisation
    /// and mutation. Loci may have different domains (e.g. per-task
    /// candidate PE lists).
    fn random_gene(&self, locus: usize, rng: &mut dyn RngCore) -> Self::Gene;

    /// The cost of a genome; lower is better. Infeasibility is expressed
    /// through penalty terms, not through rejection.
    fn cost(&self, genome: &[Self::Gene]) -> f64;

    /// Problem-specific improvement operator, applied to a few individuals
    /// per generation. The default does nothing.
    fn improve(&self, genome: &mut [Self::Gene], rng: &mut dyn RngCore) {
        let _ = (genome, rng);
    }

    /// Genomes injected into the initial population (e.g. known trivial
    /// feasible solutions). The default seeds nothing; the engine fills
    /// the rest of the population randomly.
    fn seeds(&self) -> Vec<Vec<Self::Gene>> {
        Vec::new()
    }
}

/// Parent-selection scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// Tournament over the cost-sorted population: sample `k` individuals,
    /// take the best.
    Tournament {
        /// Tournament size (≥ 1; larger = more selection pressure).
        k: usize,
    },
    /// Linear-ranking roulette (the paper's line 15–16 combination):
    /// individual at rank `r` (0 = best) is selected with probability
    /// proportional to `2 − s + 2·(s − 1)·(N − 1 − r)/(N − 1)`, where the
    /// pressure `s ∈ [1, 2]` interpolates between uniform (`1`) and
    /// strongly elitist (`2`) selection.
    LinearRanking {
        /// Selection pressure `s ∈ [1, 2]`.
        pressure: f64,
    },
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Number of individuals kept each generation.
    pub population_size: usize,
    /// Probability that an offspring is produced by crossover (otherwise
    /// it is a mutated copy of one parent).
    pub crossover_rate: f64,
    /// Per-gene probability of random reset in offspring.
    pub mutation_rate: f64,
    /// Parent-selection scheme.
    pub selection: Selection,
    /// Number of best individuals copied unchanged into the next
    /// generation.
    pub elitism: usize,
    /// Fraction of offspring handed to [`GaProblem::improve`] each
    /// generation (the paper found a small rate effective).
    pub improvement_rate: f64,
    /// Hard cap on generations.
    pub max_generations: usize,
    /// Stop after this many generations without improvement of the best
    /// cost (the convergence criterion).
    pub stagnation_limit: usize,
    /// Additional diversity-based convergence (the paper combines both
    /// criteria): stop once the relative cost spread of the population,
    /// `(worst − best) / |best|`, stays below this threshold for a few
    /// generations. `0.0` disables the check.
    pub diversity_epsilon: f64,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population_size: 50,
            crossover_rate: 0.9,
            mutation_rate: 0.06,
            selection: Selection::Tournament { k: 2 },
            elitism: 2,
            improvement_rate: 0.08,
            max_generations: 300,
            stagnation_limit: 40,
            diversity_epsilon: 0.0,
            seed: 0,
        }
    }
}

/// The result of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOutcome<G> {
    /// The best genome found.
    pub best: Vec<G>,
    /// Its cost.
    pub best_cost: f64,
    /// Generations executed.
    pub generations: usize,
    /// Cost evaluations performed.
    pub evaluations: usize,
    /// Best cost after each generation (index 0 = initial population).
    pub history: Vec<f64>,
}

#[derive(Clone)]
struct Individual<G> {
    genome: Vec<G>,
    cost: f64,
}

/// Runs the genetic algorithm on `problem` under `config`.
///
/// Deterministic for a fixed seed. Returns the best individual ever seen
/// (with elitism this is also the best of the final generation).
///
/// # Panics
///
/// Panics if `config.population_size == 0`, the selection scheme is
/// degenerate (tournament size 0, ranking pressure outside `[1, 2]`) or
/// `problem.genome_len() == 0`.
pub fn run<P: GaProblem>(problem: &P, config: &GaConfig) -> GaOutcome<P::Gene> {
    assert!(config.population_size > 0, "population must be non-empty");
    match config.selection {
        Selection::Tournament { k } => {
            assert!(k > 0, "tournament size must be positive");
        }
        Selection::LinearRanking { pressure } => {
            assert!(
                (1.0..=2.0).contains(&pressure),
                "ranking pressure must be in [1, 2]"
            );
        }
    }
    let len = problem.genome_len();
    assert!(len > 0, "genome must be non-empty");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut evaluations = 0usize;

    let mut population: Vec<Individual<P::Gene>> = Vec::with_capacity(config.population_size);
    for genome in problem.seeds().into_iter().take(config.population_size) {
        assert_eq!(genome.len(), len, "seed genome has wrong length");
        evaluations += 1;
        let cost = problem.cost(&genome);
        population.push(Individual { genome, cost });
    }
    while population.len() < config.population_size {
        let genome: Vec<P::Gene> =
            (0..len).map(|l| problem.random_gene(l, &mut rng)).collect();
        evaluations += 1;
        let cost = problem.cost(&genome);
        population.push(Individual { genome, cost });
    }
    population.sort_by(|a, b| a.cost.total_cmp(&b.cost));

    let mut best = population[0].clone();
    let mut history = vec![best.cost];
    let mut stagnation = 0usize;
    let mut generations = 0usize;
    let mut low_diversity_generations = 0usize;

    while generations < config.max_generations && stagnation < config.stagnation_limit {
        if config.diversity_epsilon > 0.0 {
            let best_cost = population[0].cost;
            let worst_cost = population[population.len() - 1].cost;
            let spread = if best_cost.abs() > 0.0 {
                (worst_cost - best_cost) / best_cost.abs()
            } else {
                worst_cost - best_cost
            };
            if spread.is_finite() && spread < config.diversity_epsilon {
                low_diversity_generations += 1;
                if low_diversity_generations >= 3 {
                    break;
                }
            } else {
                low_diversity_generations = 0;
            }
        }
        generations += 1;
        let mut next: Vec<Individual<P::Gene>> = Vec::with_capacity(config.population_size);
        // Elites survive unchanged (population is kept sorted).
        for elite in population.iter().take(config.elitism.min(population.len())) {
            next.push(elite.clone());
        }
        while next.len() < config.population_size {
            let mut child = if rng.gen_bool(config.crossover_rate.clamp(0.0, 1.0)) {
                let a = select(population.len(), config.selection, &mut rng);
                let b = select(population.len(), config.selection, &mut rng);
                two_point_crossover(&population[a].genome, &population[b].genome, &mut rng)
            } else {
                let a = select(population.len(), config.selection, &mut rng);
                population[a].genome.clone()
            };
            for (locus, gene) in child.iter_mut().enumerate() {
                if rng.gen_bool(config.mutation_rate.clamp(0.0, 1.0)) {
                    *gene = problem.random_gene(locus, &mut rng);
                }
            }
            if rng.gen_bool(config.improvement_rate.clamp(0.0, 1.0)) {
                problem.improve(&mut child, &mut rng);
            }
            evaluations += 1;
            let cost = problem.cost(&child);
            next.push(Individual { genome: child, cost });
        }
        next.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        population = next;

        if population[0].cost < best.cost {
            best = population[0].clone();
            stagnation = 0;
        } else {
            stagnation += 1;
        }
        history.push(best.cost);
    }

    GaOutcome {
        best: best.genome,
        best_cost: best.cost,
        generations,
        evaluations,
        history,
    }
}

/// Selects a parent index from a cost-sorted population (index 0 = best).
fn select(len: usize, scheme: Selection, rng: &mut impl Rng) -> usize {
    match scheme {
        Selection::Tournament { k } => (0..k)
            .map(|_| rng.gen_range(0..len))
            .min()
            .expect("tournament size is positive"),
        Selection::LinearRanking { pressure } => {
            if len == 1 {
                return 0;
            }
            // Weight of rank r: 2 - s + 2(s-1)(len-1-r)/(len-1); total = len.
            let s = pressure;
            let mut ticket = rng.gen_range(0.0..len as f64);
            for r in 0..len {
                let weight =
                    2.0 - s + 2.0 * (s - 1.0) * (len - 1 - r) as f64 / (len - 1) as f64;
                if ticket < weight {
                    return r;
                }
                ticket -= weight;
            }
            len - 1
        }
    }
}

/// Classic two-point crossover; degenerates gracefully for short genomes.
fn two_point_crossover<G: Clone>(a: &[G], b: &[G], rng: &mut impl Rng) -> Vec<G> {
    let len = a.len();
    debug_assert_eq!(len, b.len());
    if len < 2 {
        return a.to_vec();
    }
    let mut p1 = rng.gen_range(0..len);
    let mut p2 = rng.gen_range(0..len);
    if p1 > p2 {
        std::mem::swap(&mut p1, &mut p2);
    }
    let mut child = a.to_vec();
    child[p1..p2].clone_from_slice(&b[p1..p2]);
    child
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise the squared distance of integer genes to a target vector.
    struct MatchTarget {
        target: Vec<i64>,
    }

    impl GaProblem for MatchTarget {
        type Gene = i64;
        fn genome_len(&self) -> usize {
            self.target.len()
        }
        fn random_gene(&self, _locus: usize, rng: &mut dyn RngCore) -> i64 {
            rng.gen_range(-10..=10)
        }
        fn cost(&self, genome: &[i64]) -> f64 {
            genome
                .iter()
                .zip(&self.target)
                .map(|(&g, &t)| ((g - t) * (g - t)) as f64)
                .sum()
        }
    }

    /// A problem whose improvement hook plants the known optimum — checks
    /// the hook is actually invoked.
    struct HookProblem;

    impl GaProblem for HookProblem {
        type Gene = u8;
        fn genome_len(&self) -> usize {
            8
        }
        fn random_gene(&self, _locus: usize, rng: &mut dyn RngCore) -> u8 {
            rng.gen_range(1..=9)
        }
        fn cost(&self, genome: &[u8]) -> f64 {
            genome.iter().map(|&g| g as f64).sum()
        }
        fn improve(&self, genome: &mut [u8], _rng: &mut dyn RngCore) {
            genome.fill(0);
        }
    }

    #[test]
    fn converges_on_simple_problem() {
        let problem = MatchTarget { target: vec![3, -7, 0, 5, 5, -2] };
        let outcome = run(
            &problem,
            &GaConfig {
                max_generations: 500,
                stagnation_limit: 100,
                seed: 42,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.best_cost, 0.0, "best genome {:?}", outcome.best);
        assert_eq!(outcome.best, vec![3, -7, 0, 5, 5, -2]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let problem = MatchTarget { target: vec![1, 2, 3, 4] };
        let cfg = GaConfig { seed: 9, ..GaConfig::default() };
        let a = run(&problem, &cfg);
        let b = run(&problem, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let problem = MatchTarget { target: vec![1, 2, 3, 4, 5, 6, 7, 8] };
        let a = run(&problem, &GaConfig { seed: 1, max_generations: 3, ..GaConfig::default() });
        let b = run(&problem, &GaConfig { seed: 2, max_generations: 3, ..GaConfig::default() });
        // Early histories from different seeds should differ.
        assert_ne!(a.history, b.history);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let problem = MatchTarget { target: vec![4; 10] };
        let outcome = run(&problem, &GaConfig { seed: 3, ..GaConfig::default() });
        for pair in outcome.history.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert_eq!(outcome.history.len(), outcome.generations + 1);
    }

    #[test]
    fn stagnation_stops_early() {
        // A constant cost function stagnates immediately.
        struct Flat;
        impl GaProblem for Flat {
            type Gene = u8;
            fn genome_len(&self) -> usize {
                4
            }
            fn random_gene(&self, _l: usize, rng: &mut dyn RngCore) -> u8 {
                rng.gen_range(0..2)
            }
            fn cost(&self, _genome: &[u8]) -> f64 {
                1.0
            }
        }
        let outcome = run(
            &Flat,
            &GaConfig {
                stagnation_limit: 5,
                max_generations: 1000,
                seed: 0,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.generations, 5);
    }

    #[test]
    fn improvement_hook_is_used() {
        let outcome = run(
            &HookProblem,
            &GaConfig {
                improvement_rate: 0.5,
                max_generations: 10,
                stagnation_limit: 10,
                seed: 0,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.best_cost, 0.0);
    }

    #[test]
    fn elites_preserve_best_cost() {
        let problem = MatchTarget { target: vec![0; 12] };
        let outcome = run(
            &problem,
            &GaConfig { elitism: 4, seed: 11, max_generations: 50, ..GaConfig::default() },
        );
        // With elitism the final best equals the minimum of the history.
        let min = outcome.history.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(outcome.best_cost, min);
    }

    #[test]
    fn crossover_preserves_locus_alleles() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = vec![0; 10];
        let b = vec![1; 10];
        for _ in 0..50 {
            let child = two_point_crossover(&a, &b, &mut rng);
            assert_eq!(child.len(), 10);
            // Every gene comes from one of the parents at the same locus.
            assert!(child.iter().all(|&g| g == 0 || g == 1));
        }
    }

    #[test]
    fn single_gene_genomes_work() {
        let problem = MatchTarget { target: vec![7] };
        let outcome = run(&problem, &GaConfig { seed: 0, ..GaConfig::default() });
        assert_eq!(outcome.best, vec![7]);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_empty_population() {
        let problem = MatchTarget { target: vec![1] };
        let _ = run(&problem, &GaConfig { population_size: 0, ..GaConfig::default() });
    }

    #[test]
    fn linear_ranking_selection_also_converges() {
        let problem = MatchTarget { target: vec![2, -3, 4, 0, 1, -1] };
        let outcome = run(
            &problem,
            &GaConfig {
                selection: Selection::LinearRanking { pressure: 1.8 },
                max_generations: 500,
                stagnation_limit: 120,
                seed: 21,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.best_cost, 0.0, "best {:?}", outcome.best);
    }

    #[test]
    fn linear_ranking_prefers_better_ranks() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[select(10, Selection::LinearRanking { pressure: 2.0 }, &mut rng)] += 1;
        }
        // With s = 2 the best rank is selected ~2/N of the time and the
        // worst almost never.
        assert!(counts[0] > counts[9] * 5, "{counts:?}");
        assert!(counts[0] > counts[4], "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "pressure")]
    fn invalid_ranking_pressure_is_rejected() {
        let problem = MatchTarget { target: vec![1] };
        let _ = run(
            &problem,
            &GaConfig {
                selection: Selection::LinearRanking { pressure: 3.0 },
                ..GaConfig::default()
            },
        );
    }

    #[test]
    fn diversity_convergence_stops_homogeneous_populations() {
        // A two-valued cost landscape collapses diversity almost instantly.
        struct NearFlat;
        impl GaProblem for NearFlat {
            type Gene = u8;
            fn genome_len(&self) -> usize {
                4
            }
            fn random_gene(&self, _l: usize, rng: &mut dyn RngCore) -> u8 {
                rng.gen_range(0..2)
            }
            fn cost(&self, genome: &[u8]) -> f64 {
                1.0 + f64::from(genome[0]) * 1e-9
            }
        }
        let with_diversity = run(
            &NearFlat,
            &GaConfig {
                diversity_epsilon: 1e-6,
                stagnation_limit: 1000,
                max_generations: 1000,
                seed: 0,
                ..GaConfig::default()
            },
        );
        assert!(
            with_diversity.generations < 1000,
            "diversity criterion should stop early, ran {} generations",
            with_diversity.generations
        );
    }

    #[test]
    fn evaluations_are_counted() {
        let problem = MatchTarget { target: vec![1, 2] };
        let cfg = GaConfig { max_generations: 5, stagnation_limit: 99, ..GaConfig::default() };
        let outcome = run(&problem, &cfg);
        // Initial pop + (pop - elites) per generation.
        let expected =
            cfg.population_size + outcome.generations * (cfg.population_size - cfg.elitism);
        assert_eq!(outcome.evaluations, expected);
    }
}
