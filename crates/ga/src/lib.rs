//! A generic genetic-algorithm engine.
//!
//! Implements the optimisation skeleton of the paper's Fig. 4: an initial
//! random population, cost-ranked tournament selection, two-point
//! crossover, per-gene mutation, elitism, problem-specific *improvement
//! operators* (hooks applied to a few individuals per generation, like the
//! paper's shut-down/area/timing/transition strategies) and a convergence
//! criterion based on stagnation.
//!
//! The engine is domain-agnostic: a [`GaProblem`] supplies the gene type,
//! the per-locus random gene distribution, the cost function (lower is
//! better) and optionally the improvement hook. The multi-mode mapping
//! problem in `momsynth-core` is one instance; the unit tests here use
//! simple numeric problems.
//!
//! # Robustness
//!
//! Every run terminates with the best individual seen so far and a
//! [`StopReason`] saying why. Beyond the paper's convergence criteria
//! (stagnation, diversity collapse, generation cap), [`GaConfig`] carries
//! optional wall-clock and evaluation budgets, and [`run_controlled`]
//! accepts a cooperative cancellation flag plus a per-generation snapshot
//! hook / resume point for checkpointing. Randomness is re-seeded per
//! generation from `(seed, generation)`, so a run resumed from a
//! [`GaSnapshot`] replays exactly the generations an uninterrupted run
//! would have produced.
//!
//! Non-finite costs returned by a problem (NaN, ±∞) are clamped to
//! [`REJECTED_COST`] so they can never win the cost-sorted ranking.
//!
//! # Batch evaluation
//!
//! Each generation's unevaluated genomes are priced through a single
//! [`GaProblem::cost_batch`] call and the results written back by index.
//! The default implementation maps [`GaProblem::cost`] serially;
//! overriding it lets a problem evaluate the batch on worker threads or
//! serve repeats from a cache, with a bit-identical trajectory for a
//! fixed seed because the engine's randomness never depends on how a
//! batch was priced. Elites keep their known cost and are never
//! re-evaluated.
//!
//! # Examples
//!
//! ```
//! use momsynth_ga::{run, GaConfig, GaProblem, StopReason};
//! use rand::Rng;
//!
//! /// Minimise the number of non-zero genes.
//! struct AllZeros;
//!
//! impl GaProblem for AllZeros {
//!     type Gene = u8;
//!     fn genome_len(&self) -> usize { 16 }
//!     fn random_gene(&self, _locus: usize, rng: &mut dyn rand::RngCore) -> u8 {
//!         rand::Rng::gen_range(rng, 0..4)
//!     }
//!     fn cost(&self, genome: &[u8]) -> f64 {
//!         genome.iter().filter(|&&g| g != 0).count() as f64
//!     }
//! }
//!
//! let outcome = run(&AllZeros, &GaConfig { seed: 7, ..GaConfig::default() });
//! assert_eq!(outcome.best_cost, 0.0);
//! assert_eq!(outcome.stop_reason, StopReason::Stalled);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bnb;

use std::fmt;
use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use momsynth_telemetry::{Counters, Event, GenerationEvent, Sink};

/// Sentinel cost for rejected individuals (evaluation failed, panicked or
/// produced a non-finite fitness). Far above any real cost, but far enough
/// from `f64::MAX` that penalty arithmetic cannot overflow to infinity.
pub const REJECTED_COST: f64 = f64::MAX / 4.0;

/// An optimisation problem over fixed-length genomes.
pub trait GaProblem {
    /// The gene type at every locus.
    type Gene: Clone;

    /// Number of genes in a genome.
    fn genome_len(&self) -> usize;

    /// Samples a random gene for the given locus; used for initialisation
    /// and mutation. Loci may have different domains (e.g. per-task
    /// candidate PE lists, possibly pruned by a static pre-analysis).
    ///
    /// Contract: the engine itself never invents gene values — it only
    /// recombines genes produced by this method, [`GaProblem::seeds`]
    /// and [`GaProblem::improve`]. A problem that draws all three from
    /// the same per-locus candidate list therefore confines the whole
    /// search to that domain; narrowing the list (as `momsynth-core`'s
    /// statically pruned genome layouts do) soundly restricts the
    /// search space without any engine-side changes.
    fn random_gene(&self, locus: usize, rng: &mut dyn RngCore) -> Self::Gene;

    /// The cost of a genome; lower is better. Infeasibility is expressed
    /// through penalty terms, not through rejection. Non-finite values are
    /// clamped to [`REJECTED_COST`] by the engine.
    fn cost(&self, genome: &[Self::Gene]) -> f64;

    /// Prices a batch of genomes, returning exactly one cost per genome,
    /// index-aligned with the input. The default maps [`GaProblem::cost`]
    /// serially, in order.
    ///
    /// The engine routes every unevaluated genome of a generation through
    /// this method in one call and writes the results back by index, so an
    /// implementation is free to evaluate out of order — in parallel
    /// worker threads, through a memoisation cache — without perturbing
    /// the evolution trajectory: for a fixed seed the outcome is
    /// bit-identical at any thread count as long as each returned cost is
    /// a pure function of its genome.
    fn cost_batch(&self, genomes: &[Vec<Self::Gene>]) -> Vec<f64> {
        genomes.iter().map(|g| self.cost(g)).collect()
    }

    /// Problem-specific improvement operator, applied to a few individuals
    /// per generation. The default does nothing.
    fn improve(&self, genome: &mut [Self::Gene], rng: &mut dyn RngCore) {
        let _ = (genome, rng);
    }

    /// Genomes injected into the initial population (e.g. known trivial
    /// feasible solutions). The default seeds nothing; the engine fills
    /// the rest of the population randomly.
    fn seeds(&self) -> Vec<Vec<Self::Gene>> {
        Vec::new()
    }

    /// Cumulative problem-side counters (rejections, penalty classes,
    /// operator efficacy) attached to every telemetry
    /// [`GenerationEvent`]. Called only when the attached sink is
    /// enabled. The default reports zeroes.
    fn counters(&self) -> Counters {
        Counters::default()
    }
}

/// Parent-selection scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// Tournament over the cost-sorted population: sample `k` individuals,
    /// take the best.
    Tournament {
        /// Tournament size (≥ 1; larger = more selection pressure).
        k: usize,
    },
    /// Linear-ranking roulette (the paper's line 15–16 combination):
    /// individual at rank `r` (0 = best) is selected with probability
    /// proportional to `2 − s + 2·(s − 1)·(N − 1 − r)/(N − 1)`, where the
    /// pressure `s ∈ [1, 2]` interpolates between uniform (`1`) and
    /// strongly elitist (`2`) selection.
    LinearRanking {
        /// Selection pressure `s ∈ [1, 2]`.
        pressure: f64,
    },
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Number of individuals kept each generation.
    pub population_size: usize,
    /// Probability that an offspring is produced by crossover (otherwise
    /// it is a mutated copy of one parent).
    pub crossover_rate: f64,
    /// Per-gene probability of random reset in offspring.
    pub mutation_rate: f64,
    /// Parent-selection scheme.
    pub selection: Selection,
    /// Number of best individuals copied unchanged into the next
    /// generation.
    pub elitism: usize,
    /// Fraction of offspring handed to [`GaProblem::improve`] each
    /// generation (the paper found a small rate effective).
    pub improvement_rate: f64,
    /// Hard cap on generations.
    pub max_generations: usize,
    /// Stop after this many generations without improvement of the best
    /// cost (the convergence criterion).
    pub stagnation_limit: usize,
    /// Additional diversity-based convergence (the paper combines both
    /// criteria): stop once the relative cost spread of the population,
    /// `(worst − best) / |best|`, stays below this threshold for a few
    /// generations. `0.0` disables the check.
    pub diversity_epsilon: f64,
    /// Optional wall-clock budget in seconds, measured from the start of
    /// this call (a resumed run gets a fresh timer). Checked between
    /// offspring while a generation is produced, so the engine overruns
    /// by at most one evaluation batch (one generation's offspring).
    pub max_seconds: Option<f64>,
    /// Optional cap on cost evaluations (cumulative across resume: the
    /// snapshot's evaluation count carries over). At least one individual
    /// is always evaluated so a best solution exists.
    pub max_evaluations: Option<usize>,
    /// RNG seed; equal seeds give identical runs. Each generation draws
    /// from a generator re-seeded with `(seed, generation)`.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population_size: 50,
            crossover_rate: 0.9,
            mutation_rate: 0.06,
            selection: Selection::Tournament { k: 2 },
            elitism: 2,
            improvement_rate: 0.08,
            max_generations: 300,
            stagnation_limit: 40,
            diversity_epsilon: 0.0,
            max_seconds: None,
            max_evaluations: None,
            seed: 0,
        }
    }
}

/// Why a GA run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The population's cost spread stayed below `diversity_epsilon`.
    Converged,
    /// No improvement for `stagnation_limit` generations.
    Stalled,
    /// `max_generations` reached.
    GenerationLimit,
    /// `max_seconds` elapsed.
    WallClock,
    /// `max_evaluations` spent.
    EvaluationBudget,
    /// The cancellation flag was raised (e.g. Ctrl-C).
    Cancelled,
}

impl StopReason {
    /// `true` for reasons that cut the search short rather than letting it
    /// converge (budget exhaustion or cancellation).
    pub fn is_interrupted(self) -> bool {
        matches!(
            self,
            StopReason::WallClock | StopReason::EvaluationBudget | StopReason::Cancelled
        )
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            StopReason::Converged => "converged (diversity collapsed)",
            StopReason::Stalled => "stalled (no improvement)",
            StopReason::GenerationLimit => "generation limit reached",
            StopReason::WallClock => "wall-clock budget exhausted",
            StopReason::EvaluationBudget => "evaluation budget exhausted",
            StopReason::Cancelled => "cancelled",
        };
        f.write_str(text)
    }
}

/// The result of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOutcome<G> {
    /// The best genome found.
    pub best: Vec<G>,
    /// Its cost.
    pub best_cost: f64,
    /// Generations executed.
    pub generations: usize,
    /// Cost evaluations performed.
    pub evaluations: usize,
    /// Best cost after each generation (index 0 = initial population).
    pub history: Vec<f64>,
    /// Why the run stopped.
    pub stop_reason: StopReason,
}

/// Complete engine state between generations: enough to resume a run so
/// that it replays exactly what the uninterrupted run would have done.
#[derive(Debug, Clone, PartialEq)]
pub struct GaSnapshot<G> {
    /// Generations completed when the snapshot was taken (0 = after the
    /// initial population).
    pub generation: usize,
    /// Cost evaluations spent so far.
    pub evaluations: usize,
    /// Generations without improvement so far.
    pub stagnation: usize,
    /// Consecutive low-diversity generations so far.
    pub low_diversity_generations: usize,
    /// Best cost after each generation so far.
    pub history: Vec<f64>,
    /// Best genome and cost seen so far.
    pub best: (Vec<G>, f64),
    /// The population, cost-sorted: `(genome, cost)` pairs.
    pub population: Vec<(Vec<G>, f64)>,
}

/// Cooperative controls for [`run_controlled`]: cancellation, resume and
/// checkpoint observation. `RunControl::default()` behaves like [`run`].
pub struct RunControl<'a, G> {
    /// Checked between offspring; when it becomes `true` the run returns
    /// the best-so-far with [`StopReason::Cancelled`].
    pub stop: Option<&'a AtomicBool>,
    /// Restart from this snapshot instead of a fresh population.
    pub resume: Option<GaSnapshot<G>>,
    /// Called after the initial population and after every completed
    /// generation with the current engine state.
    #[allow(clippy::type_complexity)]
    pub on_generation: Option<Box<dyn FnMut(&GaSnapshot<G>) + 'a>>,
    /// Telemetry sink receiving one [`GenerationEvent`] per completed
    /// generation (and for the initial population). Events are built only
    /// when [`Sink::enabled`] returns `true`; `None` behaves like a
    /// disabled sink.
    pub sink: Option<&'a dyn Sink>,
}

impl<G> Default for RunControl<'_, G> {
    fn default() -> Self {
        Self { stop: None, resume: None, on_generation: None, sink: None }
    }
}

impl<G> fmt::Debug for RunControl<'_, G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("stop", &self.stop.map(|s| s.load(Ordering::Acquire)))
            .field("resume", &self.resume.as_ref().map(|s| s.generation))
            .field("on_generation", &self.on_generation.is_some())
            .field("sink", &self.sink.map(|s| s.enabled()))
            .finish()
    }
}

#[derive(Clone)]
struct Individual<G> {
    genome: Vec<G>,
    cost: f64,
}

/// Clamps a problem cost so that NaN and infinities can never win the
/// cost-sorted ranking (`total_cmp` would otherwise order NaN above all
/// finite costs or let an errant -∞ become "best").
#[inline]
fn sanitize_cost(cost: f64) -> f64 {
    if cost.is_finite() {
        cost
    } else {
        REJECTED_COST
    }
}

/// Derives the RNG seed for one generation (0 = initialisation) so resumed
/// runs replay the same randomness. SplitMix64 over `(seed, generation)`.
fn generation_seed(seed: u64, generation: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((generation as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the genetic algorithm on `problem` under `config`.
///
/// Deterministic for a fixed seed. Returns the best individual ever seen
/// (with elitism this is also the best of the final generation).
///
/// # Panics
///
/// Panics if `config.population_size == 0`, the selection scheme is
/// degenerate (tournament size 0, ranking pressure outside `[1, 2]`) or
/// `problem.genome_len() == 0`.
pub fn run<P: GaProblem>(problem: &P, config: &GaConfig) -> GaOutcome<P::Gene> {
    run_controlled(problem, config, RunControl::default())
}

/// Like [`run`], with cooperative cancellation, resume and a snapshot hook.
///
/// The engine checks the budgets and the stop flag between offspring while
/// a generation is generated; a raised flag or an expired budget discards
/// the partial generation unpriced, so cancellation costs at most one
/// batch evaluation before the best-so-far is returned. Resuming from a
/// [`GaSnapshot`] of generation `g` replays generations `g+1..` with the
/// same randomness an uninterrupted run would have used, so the final best
/// is identical.
///
/// # Panics
///
/// As [`run`]; additionally if a resume snapshot's genome lengths do not
/// match `problem.genome_len()`.
pub fn run_controlled<P: GaProblem>(
    problem: &P,
    config: &GaConfig,
    mut control: RunControl<'_, P::Gene>,
) -> GaOutcome<P::Gene> {
    assert!(config.population_size > 0, "population must be non-empty");
    match config.selection {
        Selection::Tournament { k } => {
            assert!(k > 0, "tournament size must be positive");
        }
        Selection::LinearRanking { pressure } => {
            assert!(
                (1.0..=2.0).contains(&pressure),
                "ranking pressure must be in [1, 2]"
            );
        }
    }
    let len = problem.genome_len();
    assert!(len > 0, "genome must be non-empty");

    let start = Instant::now();
    // Events are built lazily: a missing or disabled sink costs a branch.
    let sink = control.sink;
    let emit_generation = |generation: usize,
                           evaluations: usize,
                           stagnation: usize,
                           best: &Individual<P::Gene>,
                           population: &[Individual<P::Gene>]| {
        let Some(sink) = sink else { return };
        if !sink.enabled() {
            return;
        }
        let mean =
            population.iter().map(|i| i.cost).sum::<f64>() / population.len().max(1) as f64;
        let worst = population.last().map_or(best.cost, |i| i.cost);
        let counters = problem.counters();
        let elapsed = start.elapsed().as_secs_f64();
        let evals_per_sec = if elapsed > 0.0 { evaluations as f64 / elapsed } else { 0.0 };
        sink.record(&Event::Generation(GenerationEvent {
            generation: generation as u64,
            evaluations: evaluations as u64,
            best: best.cost,
            mean,
            worst,
            stagnation: stagnation as u64,
            evals_per_sec,
            cache_hit_rate: counters.cache_hit_rate(),
            counters,
        }));
    };
    // Acquire pairs with the raiser's Release store (serve stop path,
    // CLI Ctrl-C handler): observing the cancellation must also show
    // the state written before it was raised.
    let stop_requested =
        |flag: Option<&AtomicBool>| flag.is_some_and(|f| f.load(Ordering::Acquire));
    let out_of_time = |start: &Instant| {
        config
            .max_seconds
            .is_some_and(|limit| start.elapsed().as_secs_f64() >= limit)
    };
    let out_of_evaluations =
        |evaluations: usize| config.max_evaluations.is_some_and(|limit| evaluations >= limit);

    let mut evaluations = 0usize;
    let mut interrupted: Option<StopReason> = None;

    let mut population: Vec<Individual<P::Gene>>;
    let mut best: Individual<P::Gene>;
    let mut history: Vec<f64>;
    let mut stagnation: usize;
    let mut generations: usize;
    let mut low_diversity_generations: usize;

    if let Some(snapshot) = control.resume.take() {
        for (genome, _) in &snapshot.population {
            assert_eq!(genome.len(), len, "resume snapshot genome has wrong length");
        }
        assert_eq!(snapshot.best.0.len(), len, "resume snapshot best has wrong length");
        population = snapshot
            .population
            .into_iter()
            .map(|(genome, cost)| Individual { genome, cost: sanitize_cost(cost) })
            .collect();
        assert!(!population.is_empty(), "resume snapshot population is empty");
        population.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        best = Individual { genome: snapshot.best.0, cost: sanitize_cost(snapshot.best.1) };
        history = snapshot.history;
        stagnation = snapshot.stagnation;
        generations = snapshot.generation;
        low_diversity_generations = snapshot.low_diversity_generations;
        evaluations = snapshot.evaluations;
    } else {
        let mut rng = StdRng::seed_from_u64(generation_seed(config.seed, 0));
        // The initial population is generated first — budget checks and
        // evaluation accounting exactly as if each genome were priced on
        // the spot — then priced as one batch, so a parallel or caching
        // `cost_batch` sees the whole population at once.
        let mut genomes: Vec<Vec<P::Gene>> = Vec::with_capacity(config.population_size);
        for genome in problem.seeds().into_iter().take(config.population_size) {
            assert_eq!(genome.len(), len, "seed genome has wrong length");
            if interrupted.is_none() && !genomes.is_empty() {
                if stop_requested(control.stop) {
                    interrupted = Some(StopReason::Cancelled);
                } else if out_of_time(&start) {
                    interrupted = Some(StopReason::WallClock);
                } else if out_of_evaluations(evaluations) {
                    interrupted = Some(StopReason::EvaluationBudget);
                }
            }
            if interrupted.is_some() {
                break;
            }
            evaluations += 1;
            genomes.push(genome);
        }
        while interrupted.is_none() && genomes.len() < config.population_size {
            if !genomes.is_empty() {
                if stop_requested(control.stop) {
                    interrupted = Some(StopReason::Cancelled);
                    break;
                } else if out_of_time(&start) {
                    interrupted = Some(StopReason::WallClock);
                    break;
                } else if out_of_evaluations(evaluations) {
                    interrupted = Some(StopReason::EvaluationBudget);
                    break;
                }
            }
            let genome: Vec<P::Gene> =
                (0..len).map(|l| problem.random_gene(l, &mut rng)).collect();
            evaluations += 1;
            genomes.push(genome);
        }
        population = evaluate_batch(problem, genomes);
        population.sort_by(|a, b| a.cost.total_cmp(&b.cost));

        best = population[0].clone();
        history = vec![best.cost];
        stagnation = 0;
        generations = 0;
        low_diversity_generations = 0;

        if interrupted.is_none() {
            emit_generation(generations, evaluations, stagnation, &best, &population);
            if let Some(hook) = control.on_generation.as_mut() {
                hook(&make_snapshot(
                    generations,
                    evaluations,
                    stagnation,
                    low_diversity_generations,
                    &history,
                    &best,
                    &population,
                ));
            }
        }
    }

    let stop_reason = loop {
        if let Some(reason) = interrupted {
            break reason;
        }
        if stop_requested(control.stop) {
            break StopReason::Cancelled;
        }
        if out_of_time(&start) {
            break StopReason::WallClock;
        }
        if out_of_evaluations(evaluations) {
            break StopReason::EvaluationBudget;
        }
        if generations >= config.max_generations {
            break StopReason::GenerationLimit;
        }
        if stagnation >= config.stagnation_limit {
            break StopReason::Stalled;
        }
        if config.diversity_epsilon > 0.0 {
            let best_cost = population[0].cost;
            let worst_cost = population[population.len() - 1].cost;
            let spread = if best_cost.abs() > 0.0 {
                (worst_cost - best_cost) / best_cost.abs()
            } else {
                worst_cost - best_cost
            };
            if spread.is_finite() && spread < config.diversity_epsilon {
                low_diversity_generations += 1;
                if low_diversity_generations >= 3 {
                    break StopReason::Converged;
                }
            } else {
                low_diversity_generations = 0;
            }
        }

        generations += 1;
        let mut rng = StdRng::seed_from_u64(generation_seed(config.seed, generations));
        let mut next: Vec<Individual<P::Gene>> = Vec::with_capacity(config.population_size);
        // Elites survive unchanged (population is kept sorted).
        for elite in population.iter().take(config.elitism.min(population.len())) {
            next.push(elite.clone());
        }
        // Offspring are generated first — consuming this generation's RNG
        // and checking budgets exactly as the serial engine did — and
        // priced as one batch afterwards. Elites keep their known cost
        // and are never re-priced.
        let mut pending: Vec<Vec<P::Gene>> =
            Vec::with_capacity(config.population_size.saturating_sub(next.len()));
        while next.len() + pending.len() < config.population_size {
            if stop_requested(control.stop) {
                interrupted = Some(StopReason::Cancelled);
                break;
            }
            if out_of_time(&start) {
                interrupted = Some(StopReason::WallClock);
                break;
            }
            if out_of_evaluations(evaluations) {
                interrupted = Some(StopReason::EvaluationBudget);
                break;
            }
            let mut child = if rng.gen_bool(config.crossover_rate.clamp(0.0, 1.0)) {
                let a = select(population.len(), config.selection, &mut rng);
                let b = select(population.len(), config.selection, &mut rng);
                two_point_crossover(&population[a].genome, &population[b].genome, &mut rng)
            } else {
                let a = select(population.len(), config.selection, &mut rng);
                population[a].genome.clone()
            };
            for (locus, gene) in child.iter_mut().enumerate() {
                if rng.gen_bool(config.mutation_rate.clamp(0.0, 1.0)) {
                    *gene = problem.random_gene(locus, &mut rng);
                }
            }
            if rng.gen_bool(config.improvement_rate.clamp(0.0, 1.0)) {
                problem.improve(&mut child, &mut rng);
            }
            evaluations += 1;
            pending.push(child);
        }
        if let Some(reason) = interrupted {
            // The generation was cut short: discard the partial offspring
            // without pricing them (they are already counted against the
            // evaluation budget, exactly like the serial engine; their
            // costs would be thrown away with them). The current
            // population and best-so-far remain valid. A later resume
            // replays this generation in full from the last snapshot.
            generations -= 1;
            break reason;
        }
        next.extend(evaluate_batch(problem, pending));
        next.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        population = next;

        if population[0].cost < best.cost {
            best = population[0].clone();
            stagnation = 0;
        } else {
            stagnation += 1;
        }
        history.push(best.cost);

        emit_generation(generations, evaluations, stagnation, &best, &population);
        if let Some(hook) = control.on_generation.as_mut() {
            hook(&make_snapshot(
                generations,
                evaluations,
                stagnation,
                low_diversity_generations,
                &history,
                &best,
                &population,
            ));
        }
    };

    GaOutcome {
        best: best.genome,
        best_cost: best.cost,
        generations,
        evaluations,
        history,
        stop_reason,
    }
}

/// Prices `genomes` through [`GaProblem::cost_batch`] and pairs each
/// genome with its sanitised cost, preserving order.
fn evaluate_batch<P: GaProblem>(
    problem: &P,
    genomes: Vec<Vec<P::Gene>>,
) -> Vec<Individual<P::Gene>> {
    let costs = problem.cost_batch(&genomes);
    assert_eq!(
        costs.len(),
        genomes.len(),
        "cost_batch must return exactly one cost per genome"
    );
    genomes
        .into_iter()
        .zip(costs)
        .map(|(genome, cost)| Individual { genome, cost: sanitize_cost(cost) })
        .collect()
}

fn make_snapshot<G: Clone>(
    generation: usize,
    evaluations: usize,
    stagnation: usize,
    low_diversity_generations: usize,
    history: &[f64],
    best: &Individual<G>,
    population: &[Individual<G>],
) -> GaSnapshot<G> {
    GaSnapshot {
        generation,
        evaluations,
        stagnation,
        low_diversity_generations,
        history: history.to_vec(),
        best: (best.genome.clone(), best.cost),
        population: population.iter().map(|i| (i.genome.clone(), i.cost)).collect(),
    }
}

/// Selects a parent index from a cost-sorted population (index 0 = best).
fn select(len: usize, scheme: Selection, rng: &mut impl Rng) -> usize {
    match scheme {
        Selection::Tournament { k } => (0..k)
            .map(|_| rng.gen_range(0..len))
            .min()
            .expect("tournament size is positive"),
        Selection::LinearRanking { pressure } => {
            if len == 1 {
                return 0;
            }
            // Weight of rank r: 2 - s + 2(s-1)(len-1-r)/(len-1); total = len.
            let s = pressure;
            let mut ticket = rng.gen_range(0.0..len as f64);
            for r in 0..len {
                let weight =
                    2.0 - s + 2.0 * (s - 1.0) * (len - 1 - r) as f64 / (len - 1) as f64;
                if ticket < weight {
                    return r;
                }
                ticket -= weight;
            }
            len - 1
        }
    }
}

/// Classic two-point crossover; degenerates gracefully for short genomes.
fn two_point_crossover<G: Clone>(a: &[G], b: &[G], rng: &mut impl Rng) -> Vec<G> {
    let len = a.len();
    debug_assert_eq!(len, b.len());
    if len < 2 {
        return a.to_vec();
    }
    let mut p1 = rng.gen_range(0..len);
    let mut p2 = rng.gen_range(0..len);
    if p1 > p2 {
        std::mem::swap(&mut p1, &mut p2);
    }
    let mut child = a.to_vec();
    child[p1..p2].clone_from_slice(&b[p1..p2]);
    child
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise the squared distance of integer genes to a target vector.
    struct MatchTarget {
        target: Vec<i64>,
    }

    impl GaProblem for MatchTarget {
        type Gene = i64;
        fn genome_len(&self) -> usize {
            self.target.len()
        }
        fn random_gene(&self, _locus: usize, rng: &mut dyn RngCore) -> i64 {
            rng.gen_range(-10..=10)
        }
        fn cost(&self, genome: &[i64]) -> f64 {
            genome
                .iter()
                .zip(&self.target)
                .map(|(&g, &t)| ((g - t) * (g - t)) as f64)
                .sum()
        }
    }

    /// A problem whose improvement hook plants the known optimum — checks
    /// the hook is actually invoked.
    struct HookProblem;

    impl GaProblem for HookProblem {
        type Gene = u8;
        fn genome_len(&self) -> usize {
            8
        }
        fn random_gene(&self, _locus: usize, rng: &mut dyn RngCore) -> u8 {
            rng.gen_range(1..=9)
        }
        fn cost(&self, genome: &[u8]) -> f64 {
            genome.iter().map(|&g| g as f64).sum()
        }
        fn improve(&self, genome: &mut [u8], _rng: &mut dyn RngCore) {
            genome.fill(0);
        }
    }

    #[test]
    fn converges_on_simple_problem() {
        let problem = MatchTarget { target: vec![3, -7, 0, 5, 5, -2] };
        let outcome = run(
            &problem,
            &GaConfig {
                max_generations: 500,
                stagnation_limit: 100,
                seed: 42,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.best_cost, 0.0, "best genome {:?}", outcome.best);
        assert_eq!(outcome.best, vec![3, -7, 0, 5, 5, -2]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let problem = MatchTarget { target: vec![1, 2, 3, 4] };
        let cfg = GaConfig { seed: 9, ..GaConfig::default() };
        let a = run(&problem, &cfg);
        let b = run(&problem, &cfg);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.history, b.history);
    }

    /// Wraps a problem, prices batches in reverse order and records every
    /// batch size plus the total number of genomes priced.
    struct ReversedBatch<P> {
        inner: P,
        batches: std::cell::RefCell<Vec<usize>>,
        priced: std::cell::Cell<usize>,
    }

    impl<P> ReversedBatch<P> {
        fn new(inner: P) -> Self {
            Self {
                inner,
                batches: std::cell::RefCell::new(Vec::new()),
                priced: std::cell::Cell::new(0),
            }
        }
    }

    impl<P: GaProblem> GaProblem for ReversedBatch<P> {
        type Gene = P::Gene;
        fn genome_len(&self) -> usize {
            self.inner.genome_len()
        }
        fn random_gene(&self, locus: usize, rng: &mut dyn RngCore) -> Self::Gene {
            self.inner.random_gene(locus, rng)
        }
        fn cost(&self, genome: &[Self::Gene]) -> f64 {
            self.priced.set(self.priced.get() + 1);
            self.inner.cost(genome)
        }
        fn improve(&self, genome: &mut [Self::Gene], rng: &mut dyn RngCore) {
            self.inner.improve(genome, rng);
        }
        fn seeds(&self) -> Vec<Vec<Self::Gene>> {
            self.inner.seeds()
        }
        fn cost_batch(&self, genomes: &[Vec<Self::Gene>]) -> Vec<f64> {
            self.batches.borrow_mut().push(genomes.len());
            let mut costs = vec![0.0; genomes.len()];
            for i in (0..genomes.len()).rev() {
                costs[i] = self.cost(&genomes[i]);
            }
            costs
        }
    }

    #[test]
    fn out_of_order_cost_batch_preserves_the_trajectory() {
        let cfg = GaConfig { seed: 11, max_generations: 30, ..GaConfig::default() };
        let serial = run(&MatchTarget { target: vec![5, -3, 2, 8] }, &cfg);
        let batched = ReversedBatch::new(MatchTarget { target: vec![5, -3, 2, 8] });
        let reversed = run(&batched, &cfg);
        assert_eq!(serial.best, reversed.best);
        assert_eq!(serial.best_cost, reversed.best_cost);
        assert_eq!(serial.history, reversed.history);
        assert_eq!(serial.evaluations, reversed.evaluations);
        assert_eq!(serial.stop_reason, reversed.stop_reason);
    }

    #[test]
    fn batches_cover_generations_and_elites_are_never_repriced() {
        let elitism = 3;
        let cfg = GaConfig {
            population_size: 12,
            elitism,
            max_generations: 7,
            stagnation_limit: 100,
            seed: 4,
            ..GaConfig::default()
        };
        let problem = ReversedBatch::new(MatchTarget { target: vec![1, 2, 3, 4, 5] });
        let outcome = run(&problem, &cfg);
        assert_eq!(outcome.generations, 7);

        // The problem priced exactly as many genomes as the engine
        // reports: elites carry their known cost and are never handed to
        // cost()/cost_batch() a second time.
        assert_eq!(problem.priced.get(), outcome.evaluations);
        assert_eq!(
            outcome.evaluations,
            cfg.population_size + outcome.generations * (cfg.population_size - elitism)
        );

        // One batch for the initial population, then one per generation
        // covering everything but the elites.
        let batches = problem.batches.borrow();
        assert_eq!(batches.len(), outcome.generations + 1);
        assert_eq!(batches[0], cfg.population_size);
        for &size in &batches[1..] {
            assert_eq!(size, cfg.population_size - elitism);
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        let problem = MatchTarget { target: vec![1, 2, 3, 4, 5, 6, 7, 8] };
        let a = run(&problem, &GaConfig { seed: 1, max_generations: 3, ..GaConfig::default() });
        let b = run(&problem, &GaConfig { seed: 2, max_generations: 3, ..GaConfig::default() });
        // Early histories from different seeds should differ.
        assert_ne!(a.history, b.history);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let problem = MatchTarget { target: vec![4; 10] };
        let outcome = run(&problem, &GaConfig { seed: 3, ..GaConfig::default() });
        for pair in outcome.history.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert_eq!(outcome.history.len(), outcome.generations + 1);
    }

    #[test]
    fn stagnation_stops_early() {
        // A constant cost function stagnates immediately.
        struct Flat;
        impl GaProblem for Flat {
            type Gene = u8;
            fn genome_len(&self) -> usize {
                4
            }
            fn random_gene(&self, _l: usize, rng: &mut dyn RngCore) -> u8 {
                rng.gen_range(0..2)
            }
            fn cost(&self, _genome: &[u8]) -> f64 {
                1.0
            }
        }
        let outcome = run(
            &Flat,
            &GaConfig {
                stagnation_limit: 5,
                max_generations: 1000,
                seed: 0,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.generations, 5);
        assert_eq!(outcome.stop_reason, StopReason::Stalled);
    }

    #[test]
    fn improvement_hook_is_used() {
        let outcome = run(
            &HookProblem,
            &GaConfig {
                improvement_rate: 0.5,
                max_generations: 10,
                stagnation_limit: 10,
                seed: 0,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.best_cost, 0.0);
    }

    #[test]
    fn elites_preserve_best_cost() {
        let problem = MatchTarget { target: vec![0; 12] };
        let outcome = run(
            &problem,
            &GaConfig { elitism: 4, seed: 11, max_generations: 50, ..GaConfig::default() },
        );
        // With elitism the final best equals the minimum of the history.
        let min = outcome.history.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(outcome.best_cost, min);
    }

    #[test]
    fn crossover_preserves_locus_alleles() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = vec![0; 10];
        let b = vec![1; 10];
        for _ in 0..50 {
            let child = two_point_crossover(&a, &b, &mut rng);
            assert_eq!(child.len(), 10);
            // Every gene comes from one of the parents at the same locus.
            assert!(child.iter().all(|&g| g == 0 || g == 1));
        }
    }

    #[test]
    fn single_gene_genomes_work() {
        let problem = MatchTarget { target: vec![7] };
        let outcome = run(&problem, &GaConfig { seed: 0, ..GaConfig::default() });
        assert_eq!(outcome.best, vec![7]);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_empty_population() {
        let problem = MatchTarget { target: vec![1] };
        let _ = run(&problem, &GaConfig { population_size: 0, ..GaConfig::default() });
    }

    #[test]
    fn linear_ranking_selection_also_converges() {
        let problem = MatchTarget { target: vec![2, -3, 4, 0, 1, -1] };
        let outcome = run(
            &problem,
            &GaConfig {
                selection: Selection::LinearRanking { pressure: 1.8 },
                max_generations: 500,
                stagnation_limit: 120,
                seed: 21,
                ..GaConfig::default()
            },
        );
        assert_eq!(outcome.best_cost, 0.0, "best {:?}", outcome.best);
    }

    #[test]
    fn linear_ranking_prefers_better_ranks() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[select(10, Selection::LinearRanking { pressure: 2.0 }, &mut rng)] += 1;
        }
        // With s = 2 the best rank is selected ~2/N of the time and the
        // worst almost never.
        assert!(counts[0] > counts[9] * 5, "{counts:?}");
        assert!(counts[0] > counts[4], "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "pressure")]
    fn invalid_ranking_pressure_is_rejected() {
        let problem = MatchTarget { target: vec![1] };
        let _ = run(
            &problem,
            &GaConfig {
                selection: Selection::LinearRanking { pressure: 3.0 },
                ..GaConfig::default()
            },
        );
    }

    #[test]
    fn diversity_convergence_stops_homogeneous_populations() {
        // A two-valued cost landscape collapses diversity almost instantly.
        struct NearFlat;
        impl GaProblem for NearFlat {
            type Gene = u8;
            fn genome_len(&self) -> usize {
                4
            }
            fn random_gene(&self, _l: usize, rng: &mut dyn RngCore) -> u8 {
                rng.gen_range(0..2)
            }
            fn cost(&self, genome: &[u8]) -> f64 {
                1.0 + f64::from(genome[0]) * 1e-9
            }
        }
        let with_diversity = run(
            &NearFlat,
            &GaConfig {
                diversity_epsilon: 1e-6,
                stagnation_limit: 1000,
                max_generations: 1000,
                seed: 0,
                ..GaConfig::default()
            },
        );
        assert!(
            with_diversity.generations < 1000,
            "diversity criterion should stop early, ran {} generations",
            with_diversity.generations
        );
        assert_eq!(with_diversity.stop_reason, StopReason::Converged);
    }

    #[test]
    fn evaluations_are_counted() {
        let problem = MatchTarget { target: vec![1, 2] };
        let cfg = GaConfig { max_generations: 5, stagnation_limit: 99, ..GaConfig::default() };
        let outcome = run(&problem, &cfg);
        // Initial pop + (pop - elites) per generation.
        let expected =
            cfg.population_size + outcome.generations * (cfg.population_size - cfg.elitism);
        assert_eq!(outcome.evaluations, expected);
        assert_eq!(outcome.stop_reason, StopReason::GenerationLimit);
    }

    #[test]
    fn non_finite_costs_are_clamped() {
        // NaN for most genomes; total_cmp would sort NaN *above* +inf, so
        // without clamping a NaN genome would be reported as "best".
        struct Poisoned;
        impl GaProblem for Poisoned {
            type Gene = u8;
            fn genome_len(&self) -> usize {
                4
            }
            fn random_gene(&self, _l: usize, rng: &mut dyn RngCore) -> u8 {
                rng.gen_range(0..4)
            }
            fn cost(&self, genome: &[u8]) -> f64 {
                match genome[0] {
                    0 => f64::NAN,
                    1 => f64::NEG_INFINITY,
                    2 => f64::INFINITY,
                    _ => genome.iter().map(|&g| g as f64).sum(),
                }
            }
        }
        let outcome = run(
            &Poisoned,
            &GaConfig { max_generations: 30, stagnation_limit: 30, seed: 2, ..GaConfig::default() },
        );
        assert!(outcome.best_cost.is_finite());
        assert!(outcome.best_cost < REJECTED_COST);
        assert_eq!(outcome.best[0], 3, "only genomes starting with 3 are valid");
    }

    #[test]
    fn evaluation_budget_stops_the_run() {
        let problem = MatchTarget { target: vec![1, 2, 3, 4, 5, 6] };
        let cfg = GaConfig {
            max_evaluations: Some(120),
            max_generations: 10_000,
            stagnation_limit: 10_000,
            seed: 4,
            ..GaConfig::default()
        };
        let outcome = run(&problem, &cfg);
        assert_eq!(outcome.stop_reason, StopReason::EvaluationBudget);
        assert!(outcome.evaluations <= 120, "spent {}", outcome.evaluations);
        assert!(!outcome.best.is_empty());
        assert!(outcome.best_cost.is_finite());
    }

    #[test]
    fn tiny_evaluation_budget_still_returns_a_solution() {
        let problem = MatchTarget { target: vec![1, 2, 3] };
        let outcome = run(
            &problem,
            &GaConfig { max_evaluations: Some(1), seed: 0, ..GaConfig::default() },
        );
        assert_eq!(outcome.stop_reason, StopReason::EvaluationBudget);
        assert_eq!(outcome.evaluations, 1);
        assert_eq!(outcome.best.len(), 3);
    }

    #[test]
    fn zero_wall_clock_budget_stops_immediately() {
        let problem = MatchTarget { target: vec![1, 2, 3] };
        let outcome = run(
            &problem,
            &GaConfig { max_seconds: Some(0.0), seed: 0, ..GaConfig::default() },
        );
        assert_eq!(outcome.stop_reason, StopReason::WallClock);
        // The engine always evaluates at least one individual.
        assert!(outcome.evaluations >= 1);
        assert_eq!(outcome.best.len(), 3);
    }

    #[test]
    fn stop_flag_cancels_mid_run() {
        let problem = MatchTarget { target: vec![5; 8] };
        let flag = AtomicBool::new(false);
        let outcome = run_controlled(
            &problem,
            &GaConfig {
                max_generations: 10_000,
                stagnation_limit: 10_000,
                seed: 1,
                ..GaConfig::default()
            },
            RunControl {
                stop: Some(&flag),
                on_generation: Some(Box::new(|snapshot: &GaSnapshot<i64>| {
                    if snapshot.generation >= 3 {
                        flag.store(true, Ordering::Release);
                    }
                })),
                ..RunControl::default()
            },
        );
        assert_eq!(outcome.stop_reason, StopReason::Cancelled);
        assert_eq!(outcome.generations, 3);
        assert!(outcome.best_cost.is_finite());
    }

    #[test]
    fn pre_raised_stop_flag_still_yields_a_best() {
        let problem = MatchTarget { target: vec![1, 2] };
        let flag = AtomicBool::new(true);
        let outcome = run_controlled(
            &problem,
            &GaConfig { seed: 0, ..GaConfig::default() },
            RunControl { stop: Some(&flag), ..RunControl::default() },
        );
        assert_eq!(outcome.stop_reason, StopReason::Cancelled);
        assert_eq!(outcome.best.len(), 2);
        assert!(outcome.best_cost.is_finite());
    }

    #[test]
    fn resume_replays_the_uninterrupted_run() {
        let problem = MatchTarget { target: vec![3, 1, -4, 1, -5, 9, 2, -6] };
        let cfg = GaConfig {
            max_generations: 40,
            stagnation_limit: 100,
            seed: 17,
            ..GaConfig::default()
        };

        // Uninterrupted run, capturing the snapshot after generation 12.
        let mut mid: Option<GaSnapshot<i64>> = None;
        let full = run_controlled(
            &problem,
            &cfg,
            RunControl {
                on_generation: Some(Box::new(|snapshot: &GaSnapshot<i64>| {
                    if snapshot.generation == 12 {
                        mid = Some(snapshot.clone());
                    }
                })),
                ..RunControl::default()
            },
        );
        let snapshot = mid.expect("run reached generation 12");

        let resumed = run_controlled(
            &problem,
            &cfg,
            RunControl { resume: Some(snapshot), ..RunControl::default() },
        );
        assert_eq!(resumed.best, full.best);
        assert_eq!(resumed.best_cost, full.best_cost);
        assert_eq!(resumed.history, full.history);
        assert_eq!(resumed.generations, full.generations);
        assert_eq!(resumed.evaluations, full.evaluations);
        assert_eq!(resumed.stop_reason, full.stop_reason);
    }

    #[test]
    fn sink_receives_one_generation_event_per_generation() {
        use momsynth_telemetry::MemorySink;
        let problem = MatchTarget { target: vec![1, 2, 3] };
        let sink = MemorySink::new();
        let cfg =
            GaConfig { max_generations: 4, stagnation_limit: 99, seed: 8, ..GaConfig::default() };
        let outcome = run_controlled(
            &problem,
            &cfg,
            RunControl { sink: Some(&sink), ..RunControl::default() },
        );
        let events = sink.events();
        assert_eq!(events.len(), outcome.generations + 1, "init population + generations");
        for (i, event) in events.iter().enumerate() {
            let Event::Generation(g) = event else { panic!("unexpected event {event:?}") };
            assert_eq!(g.generation as usize, i);
            assert!(g.best <= g.mean && g.mean <= g.worst, "{g:?}");
            assert_eq!(g.best, outcome.history[i]);
            assert_eq!(g.counters, Counters::default(), "default counters are zero");
        }
    }

    #[test]
    fn disabled_sink_never_sees_a_record_call() {
        struct PanicSink;
        impl Sink for PanicSink {
            fn enabled(&self) -> bool {
                false
            }
            fn record(&self, _event: &Event) {
                panic!("record must not be called through a disabled sink");
            }
        }
        let problem = MatchTarget { target: vec![1, 2] };
        let cfg =
            GaConfig { max_generations: 3, stagnation_limit: 99, seed: 0, ..GaConfig::default() };
        let outcome = run_controlled(
            &problem,
            &cfg,
            RunControl { sink: Some(&PanicSink), ..RunControl::default() },
        );
        assert_eq!(outcome.generations, 3);
    }

    #[test]
    fn resumed_runs_emit_exactly_the_remaining_generation_events() {
        use momsynth_telemetry::MemorySink;
        let problem = MatchTarget { target: vec![3, 1, -4, 1, -5, 9] };
        let cfg = GaConfig {
            max_generations: 20,
            stagnation_limit: 100,
            seed: 13,
            ..GaConfig::default()
        };

        let full_sink = MemorySink::new();
        let mut mid: Option<GaSnapshot<i64>> = None;
        let _ = run_controlled(
            &problem,
            &cfg,
            RunControl {
                sink: Some(&full_sink),
                on_generation: Some(Box::new(|snapshot: &GaSnapshot<i64>| {
                    if snapshot.generation == 7 {
                        mid = Some(snapshot.clone());
                    }
                })),
                ..RunControl::default()
            },
        );
        let snapshot = mid.expect("run reached generation 7");

        let resumed_sink = MemorySink::new();
        let _ = run_controlled(
            &problem,
            &cfg,
            RunControl {
                sink: Some(&resumed_sink),
                resume: Some(snapshot),
                ..RunControl::default()
            },
        );
        // Normalise away the only wall-clock field (evals_per_sec) before
        // comparing: everything else must replay bit for bit.
        let normalize = |events: Vec<Event>| -> Vec<Event> {
            events
                .into_iter()
                .filter_map(|e| match e {
                    Event::Generation(g) if g.generation > 7 => {
                        Some(Event::Generation(g.normalized()))
                    }
                    _ => None,
                })
                .collect()
        };
        let tail = normalize(full_sink.events());
        assert!(!tail.is_empty());
        assert_eq!(
            normalize(resumed_sink.events()),
            tail,
            "resumed trace must replay the tail exactly"
        );
    }

    #[test]
    fn snapshots_carry_consistent_state() {
        let problem = MatchTarget { target: vec![2; 6] };
        let cfg = GaConfig { max_generations: 5, stagnation_limit: 99, ..GaConfig::default() };
        let mut seen = 0usize;
        let _ = run_controlled(
            &problem,
            &cfg,
            RunControl {
                on_generation: Some(Box::new(|snapshot: &GaSnapshot<i64>| {
                    assert_eq!(snapshot.generation, seen);
                    seen += 1;
                    assert_eq!(snapshot.population.len(), cfg.population_size);
                    assert_eq!(snapshot.history.len(), snapshot.generation + 1);
                    assert_eq!(snapshot.best.1, *snapshot.history.last().unwrap());
                    // Population is cost-sorted.
                    for pair in snapshot.population.windows(2) {
                        assert!(pair[0].1 <= pair[1].1);
                    }
                })),
                ..RunControl::default()
            },
        );
        assert_eq!(seen, 6, "initial population + 5 generations");
    }
}
