//! A deterministic depth-first branch-and-bound engine.
//!
//! The GA in this crate finds good solutions fast but certifies nothing.
//! This module is its exact counterpart: an exhaustive depth-first
//! enumeration of a finite per-locus choice space, cut by an admissible
//! lower bound, that either *proves* the returned incumbent optimal or —
//! when an evaluation budget runs out first — returns the incumbent
//! together with a still-valid global lower bound, from which the caller
//! derives a gap certificate.
//!
//! The engine is domain-agnostic like [`GaProblem`](crate::GaProblem): a
//! [`BnbProblem`] supplies the per-locus domain sizes, an admissible
//! bound on every completion of a prefix, and the exact cost of a leaf.
//! Search order is fixed (locus 0 outermost, choices in domain order),
//! no randomness or wall clock is consulted, so a run is a pure function
//! of the problem — certificates are reproducible bit for bit.
//!
//! # Soundness
//!
//! With an admissible [`BnbProblem::prefix_bound`] (never above the cost
//! of any completion of the prefix):
//!
//! - a subtree is pruned only when its bound is at or above the
//!   incumbent's cost, so some optimum always survives enumeration and
//!   [`Outcome::proven`] implies the incumbent *is* an optimum;
//! - when the budget interrupts the search, every abandoned subtree's
//!   bound is folded into [`Outcome::lower_bound`], so the true optimum
//!   can never lie below it.

/// A finite assignment problem searchable by [`branch_and_bound`].
pub trait BnbProblem {
    /// Number of loci (depth of the search tree).
    fn len(&self) -> usize;

    /// `true` when the problem has no loci at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of choices at `locus`; must be at least 1.
    fn domain_size(&self, locus: usize) -> usize;

    /// Admissible lower bound on the cost of *every* completion of the
    /// prefix `choices[..depth]`. Need not be monotone in `depth`, but
    /// tighter bounds prune more. `depth == 0` bounds the whole space.
    fn prefix_bound(&self, choices: &[usize], depth: usize) -> f64;

    /// Exact cost of the complete assignment `choices` (lower is
    /// better). Counted against the evaluation budget.
    fn leaf_cost(&mut self, choices: &[usize]) -> f64;
}

/// The result of a [`branch_and_bound`] search.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The best complete assignment found, with its cost; `None` if the
    /// budget expired before the first leaf, the space is empty, or an
    /// external incumbent pruned every subtree.
    pub best: Option<(Vec<usize>, f64)>,
    /// `true` when the search space was exhausted: no assignment costs
    /// less than [`Outcome::lower_bound`], so the cheaper of `best` and
    /// any externally seeded incumbent is optimal.
    pub proven: bool,
    /// A valid lower bound on the optimal cost, whether or not the
    /// search finished: the minimum of the incumbent's cost and every
    /// abandoned subtree's bound.
    pub lower_bound: f64,
    /// Leaves priced through [`BnbProblem::leaf_cost`].
    pub explored: u64,
    /// Subtrees cut because their bound reached the incumbent.
    pub pruned_by_bound: u64,
}

impl Outcome {
    /// Relative optimality gap `(best − lower_bound) / lower_bound`
    /// certified by this outcome: `0` when proven optimal, positive when
    /// the budget left a gap, `None` without an incumbent or with a
    /// non-positive bound (the gap is then meaningless).
    pub fn gap(&self) -> Option<f64> {
        let (_, cost) = self.best.as_ref()?;
        if self.proven {
            return Some(0.0);
        }
        if self.lower_bound <= 0.0 {
            return None;
        }
        Some(((cost - self.lower_bound) / self.lower_bound).max(0.0))
    }
}

/// The resource budget of one [`branch_and_bound`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbBudget {
    /// Maximum leaves priced through [`BnbProblem::leaf_cost`].
    pub max_evals: u64,
    /// Optional wall-clock deadline. An expired deadline interrupts the
    /// search exactly like an exhausted evaluation budget: abandoned
    /// subtrees fold their bounds into [`Outcome::lower_bound`], so the
    /// certificate stays valid — only `proven` is lost. Runs with a
    /// deadline are *not* deterministic; evaluation-only budgets are.
    pub deadline: Option<std::time::Instant>,
}

impl BnbBudget {
    /// A deterministic budget of `max_evals` leaf evaluations.
    pub fn evals(max_evals: u64) -> Self {
        Self { max_evals, deadline: None }
    }

    /// An unlimited budget: the search always runs to a proof.
    pub fn unlimited() -> Self {
        Self::evals(u64::MAX)
    }
}

/// Exhausts `problem` depth-first within `budget`.
///
/// `incumbent` optionally seeds the search with an externally known cost
/// (e.g. the GA's best): subtrees at or above it are cut immediately,
/// which can only speed the proof up. The seed is *not* returned as
/// `best` — only genuinely explored leaves are.
pub fn branch_and_bound<P: BnbProblem>(
    problem: &mut P,
    budget: BnbBudget,
    incumbent: Option<f64>,
) -> Outcome {
    let n = problem.len();
    let mut outcome = Outcome {
        best: None,
        proven: true,
        lower_bound: f64::INFINITY,
        explored: 0,
        pruned_by_bound: 0,
    };
    if n == 0 {
        outcome.lower_bound = f64::NEG_INFINITY;
        return outcome;
    }

    let mut cutoff = incumbent.unwrap_or(f64::INFINITY);
    // Bound on costs no explored subtree can beat; folded into the final
    // lower bound. Starts at the externally seeded cutoff: if the seed
    // prunes everything, the seed's cost itself is the certified bound.
    let mut abandoned = incumbent.unwrap_or(f64::INFINITY);
    let mut choices = vec![0usize; n];
    let mut best_cost = f64::INFINITY;

    // The deadline is polled every 256 nodes: cheap against leaf pricing,
    // tight enough that an expired budget stops within a short burst.
    let mut node = 0u32;
    let mut expired = false;
    let mut out_of_budget = |explored: u64| {
        if explored >= budget.max_evals {
            return true;
        }
        if let Some(deadline) = budget.deadline {
            node = node.wrapping_add(1);
            if expired || (node & 0xFF == 0 && std::time::Instant::now() >= deadline) {
                expired = true;
                return true;
            }
        }
        false
    };

    // Iterative DFS: `depth` is the locus currently being assigned,
    // `choices[..depth]` the fixed prefix.
    let mut depth = 0usize;
    loop {
        if depth == n {
            // A complete assignment: price it.
            if out_of_budget(outcome.explored) {
                // Budget exhausted at a leaf that was never priced: its
                // subtree (itself) counts as abandoned at prefix bound.
                outcome.proven = false;
                let bound = problem.prefix_bound(&choices, n);
                abandoned = abandoned.min(bound);
            } else {
                outcome.explored += 1;
                let cost = problem.leaf_cost(&choices);
                if cost < best_cost {
                    best_cost = cost;
                    outcome.best = Some((choices.clone(), cost));
                    cutoff = cutoff.min(cost);
                }
            }
            // Backtrack to the deepest locus with an untried choice.
            match backtrack(problem, &mut choices, depth) {
                Some(d) => depth = d,
                None => break,
            }
            continue;
        }

        let bound = problem.prefix_bound(&choices, depth);
        let out_of_budget = out_of_budget(outcome.explored);
        if bound >= cutoff || out_of_budget {
            if out_of_budget && bound < cutoff {
                outcome.proven = false;
                abandoned = abandoned.min(bound);
            } else {
                outcome.pruned_by_bound += 1;
            }
            match backtrack(problem, &mut choices, depth) {
                Some(d) => depth = d,
                None => break,
            }
            continue;
        }

        // Descend with the first choice at this locus.
        choices[depth] = 0;
        depth += 1;
    }

    // Exhausted: the cheaper of the incumbent and the seed is optimal.
    // Interrupted: no abandoned subtree can beat `abandoned`, no explored
    // leaf beat `best_cost`, so their minimum still bounds the optimum.
    outcome.lower_bound = best_cost.min(abandoned);
    outcome
}

/// Advances `choices` to the next unvisited sibling at or above the
/// parent of `depth`, returning the new depth to expand, or `None` when
/// the whole tree has been visited. After the call, `choices[..returned
/// depth]` is the next prefix to consider.
fn backtrack<P: BnbProblem>(
    problem: &P,
    choices: &mut [usize],
    depth: usize,
) -> Option<usize> {
    let mut d = depth;
    while d > 0 {
        let locus = d - 1;
        if choices[locus] + 1 < problem.domain_size(locus) {
            choices[locus] += 1;
            return Some(d);
        }
        d -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cost = Σ table[locus][choice]; the prefix bound prices assigned
    /// loci exactly and unassigned loci at their row minimum — tight and
    /// admissible, so the optimum is the per-row minimum sum.
    struct Table {
        rows: Vec<Vec<f64>>,
        evals: u64,
    }

    impl Table {
        fn new(rows: Vec<Vec<f64>>) -> Self {
            Self { rows, evals: 0 }
        }

        fn optimum(&self) -> f64 {
            self.rows
                .iter()
                .map(|r| r.iter().cloned().fold(f64::INFINITY, f64::min))
                .sum()
        }
    }

    impl BnbProblem for Table {
        fn len(&self) -> usize {
            self.rows.len()
        }
        fn domain_size(&self, locus: usize) -> usize {
            self.rows[locus].len()
        }
        fn prefix_bound(&self, choices: &[usize], depth: usize) -> f64 {
            let assigned: f64 =
                (0..depth).map(|l| self.rows[l][choices[l]]).sum();
            let free: f64 = self.rows[depth..]
                .iter()
                .map(|r| r.iter().cloned().fold(f64::INFINITY, f64::min))
                .sum();
            assigned + free
        }
        fn leaf_cost(&mut self, choices: &[usize]) -> f64 {
            self.evals += 1;
            (0..self.rows.len()).map(|l| self.rows[l][choices[l]]).sum()
        }
    }

    fn rows() -> Vec<Vec<f64>> {
        vec![vec![3.0, 1.0, 2.0], vec![5.0, 4.0], vec![0.5, 0.25, 9.0, 1.0]]
    }

    #[test]
    fn finds_and_proves_the_optimum() {
        let mut p = Table::new(rows());
        let optimum = p.optimum();
        let outcome = branch_and_bound(&mut p, BnbBudget::unlimited(), None);
        assert!(outcome.proven);
        assert_eq!(outcome.gap(), Some(0.0));
        let (choices, cost) = outcome.best.expect("searched to completion");
        assert_eq!(choices, vec![1, 1, 1]);
        assert!((cost - optimum).abs() < 1e-12);
        assert!((outcome.lower_bound - optimum).abs() < 1e-12);
    }

    #[test]
    fn bound_prunes_but_never_cuts_the_optimum() {
        let mut with_bound = Table::new(rows());
        let full = branch_and_bound(&mut with_bound, BnbBudget::unlimited(), None);
        // The tight bound must visit far fewer than all 24 leaves.
        assert!(with_bound.evals < 24, "{} leaves priced", with_bound.evals);
        assert!(full.pruned_by_bound > 0);
        assert_eq!(full.best.unwrap().1, Table::new(rows()).optimum());
    }

    #[test]
    fn exhausted_budget_degrades_to_a_valid_gap_bound() {
        let mut p = Table::new(rows());
        let optimum = p.optimum();
        let outcome = branch_and_bound(&mut p, BnbBudget::evals(2), None);
        assert!(!outcome.proven);
        assert!(outcome.explored <= 2);
        // The bound stays below (or at) the true optimum…
        assert!(outcome.lower_bound <= optimum + 1e-12);
        // …and the incumbent above it, so the gap is non-negative.
        if let Some(gap) = outcome.gap() {
            assert!(gap >= 0.0);
        }
    }

    #[test]
    fn external_incumbent_only_accelerates_the_proof() {
        let optimum = Table::new(rows()).optimum();
        let mut seeded = Table::new(rows());
        let outcome = branch_and_bound(&mut seeded, BnbBudget::unlimited(), Some(optimum + 0.01));
        assert!(outcome.proven);
        assert_eq!(outcome.best.unwrap().1, optimum);

        // A seed at the optimum prunes everything; the certificate is
        // then the seed's own cost.
        let mut tight = Table::new(rows());
        let outcome = branch_and_bound(&mut tight, BnbBudget::unlimited(), Some(optimum));
        assert!(outcome.proven);
        assert!(outcome.best.is_none());
        assert!((outcome.lower_bound - optimum).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_still_returns_a_root_bound() {
        let mut p = Table::new(rows());
        let outcome = branch_and_bound(&mut p, BnbBudget::evals(0), None);
        assert!(!outcome.proven);
        assert!(outcome.best.is_none());
        assert!(outcome.lower_bound <= p.optimum());
        assert!(outcome.lower_bound.is_finite());
    }

    #[test]
    fn empty_problem_is_trivially_proven() {
        let mut p = Table::new(Vec::new());
        let outcome = branch_and_bound(&mut p, BnbBudget::unlimited(), None);
        assert!(outcome.proven);
        assert!(outcome.best.is_none());
    }

    #[test]
    fn search_is_deterministic() {
        let a = branch_and_bound(&mut Table::new(rows()), BnbBudget::evals(5), None);
        let b = branch_and_bound(&mut Table::new(rows()), BnbBudget::evals(5), None);
        assert_eq!(a, b);
    }
}
