//! Benchmark generators for multi-mode co-synthesis.
//!
//! Three workload families reproduce the DATE 2003 evaluation:
//!
//! * [`examples`] — the paper's motivational Examples 1 and 2 (Fig. 2 and
//!   Fig. 3) with the exact technology table of Section 2.3;
//! * [`suite`] — the seeded random `mul1`–`mul12` suite with the paper's
//!   published parameter ranges (3–5 modes, 8–32 tasks per mode, 2–4 PEs,
//!   1–3 links, skewed execution probabilities);
//! * [`smartphone`] — the eight-mode smart-phone system of Fig. 1a with
//!   GSM / MP3 / JPEG task pipelines and the published usage profile.
//!
//! # Examples
//!
//! ```
//! use momsynth_gen::{examples, smartphone, suite};
//!
//! let phone = smartphone::smartphone();
//! assert_eq!(phone.omsm().mode_count(), 8);
//!
//! let mul6 = suite::mul(6);
//! assert_eq!(mul6.name(), "mul6");
//!
//! let fig2 = examples::example1_system();
//! assert_eq!(fig2.omsm().mode_count(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod automotive;
pub mod examples;
pub mod smartphone;
pub mod suite;
pub mod tgff;

pub use suite::{generate, mul, mul_params, mul_suite, GeneratorParams};
pub use tgff::{parse_system, to_tgff, TgffError};
