//! The smart-phone real-life benchmark (paper Fig. 1a, Table 3).
//!
//! The device combines a GSM phone, an MP3 player and a digital camera:
//! eight operational modes built from five functional blocks — radio link
//! control (RLC), network search, the GSM 06.10 codec, MPEG-1 layer-III
//! decoding and JPEG decoding — with the paper's published execution
//! probabilities (74% RLC, 9% GSM call, 10% MP3 playback, …).
//!
//! The paper extracted the task graphs from public C sources and profiled
//! them on real hardware; here both the graph structure (frame/granule/
//! MCU pipelines of those codecs) and the execution characteristics are
//! synthesised to the paper's stated envelope: 5–88 tasks and up to 137
//! edges per mode, hardware implementations 5–100× faster than software,
//! and a target architecture of one DVS-enabled GPP plus two ASICs on a
//! single bus (see `DESIGN.md` for the substitution note).
//!
//! Task types are deliberately shared across modes — the Huffman decoder,
//! dequantiser and inverse DCT serve both the MP3 and the JPEG pipeline,
//! exactly the sharing opportunity the paper exploits.

use momsynth_model::ids::{TaskId, TaskTypeId};
use momsynth_model::units::{Cells, Seconds, Volts, Watts};
use momsynth_model::{
    ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind, System,
    TaskGraphBuilder, TechLibraryBuilder,
};

/// Task types of the smart phone, in technology-library order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum PhoneType {
    RlcMeasure = 0,
    RlcHandover,
    RlcPowerCtrl,
    RlcChannelDec,
    RlcChannelEnc,
    NsScan,
    NsCorrelate,
    NsSync,
    GsmPre,
    GsmLpc,
    GsmLtp,
    GsmRpe,
    GsmDec,
    GsmPost,
    Huffman,
    Dequant,
    Stereo,
    Idct,
    Synth,
    ColorTransform,
    Display,
    Camera,
    Ui,
}

impl PhoneType {
    /// The task-type id in the smart phone's technology library.
    pub fn id(self) -> TaskTypeId {
        TaskTypeId::new(self as usize)
    }
}

/// `(name, sw_ms, sw_mw, asic, hw_speedup, hw_mw, hw_area)` — `asic` is
/// which ASIC implements the type in hardware (0 = none, 1 = codec
/// accelerator, 2 = imaging accelerator).
const TYPES: [(&str, f64, f64, u8, f64, f64, u64); 23] = [
    ("rlc_measure", 0.8, 120.0, 0, 0.0, 0.0, 0),
    ("rlc_handover", 0.5, 100.0, 0, 0.0, 0.0, 0),
    ("rlc_power_ctrl", 0.3, 90.0, 0, 0.0, 0.0, 0),
    ("rlc_channel_dec", 1.2, 150.0, 2, 12.0, 6.0, 180),
    ("rlc_channel_enc", 0.9, 130.0, 2, 10.0, 5.0, 160),
    ("ns_scan", 2.0, 180.0, 2, 20.0, 8.0, 220),
    ("ns_correlate", 3.0, 220.0, 1, 40.0, 9.0, 260),
    ("ns_sync", 1.0, 140.0, 0, 0.0, 0.0, 0),
    ("gsm_pre", 0.6, 110.0, 0, 0.0, 0.0, 0),
    ("gsm_lpc", 2.2, 240.0, 1, 25.0, 10.0, 280),
    ("gsm_ltp", 2.8, 260.0, 1, 30.0, 11.0, 300),
    ("gsm_rpe", 2.4, 250.0, 1, 28.0, 10.0, 290),
    ("gsm_dec", 2.0, 230.0, 1, 22.0, 9.0, 270),
    ("gsm_post", 0.5, 100.0, 0, 0.0, 0.0, 0),
    ("huffman", 0.25, 160.0, 2, 8.0, 4.0, 150),
    ("dequant", 0.1, 120.0, 2, 6.0, 3.0, 120),
    ("stereo", 0.3, 140.0, 1, 10.0, 4.0, 140),
    ("idct", 0.4, 280.0, 2, 50.0, 7.0, 240),
    ("synth", 1.8, 260.0, 1, 35.0, 10.0, 310),
    ("color_transform", 0.15, 130.0, 2, 10.0, 4.0, 130),
    ("display", 1.0, 200.0, 0, 0.0, 0.0, 0),
    ("camera", 1.5, 180.0, 0, 0.0, 0.0, 0),
    ("ui", 0.4, 100.0, 0, 0.0, 0.0, 0),
];

fn ty(t: PhoneType) -> TaskTypeId {
    t.id()
}

/// Appends the radio-link-control frame pipeline; returns its sink.
fn rlc_block(g: &mut TaskGraphBuilder) -> TaskId {
    let dec = g.add_task("rlc_dec", ty(PhoneType::RlcChannelDec));
    let meas = g.add_task("rlc_meas", ty(PhoneType::RlcMeasure));
    let ho = g.add_task("rlc_ho", ty(PhoneType::RlcHandover));
    let pc = g.add_task("rlc_pc", ty(PhoneType::RlcPowerCtrl));
    let enc = g.add_task("rlc_enc", ty(PhoneType::RlcChannelEnc));
    g.add_comm(dec, meas, 64.0).expect("rlc edges are forward");
    g.add_comm(meas, ho, 32.0).expect("rlc edges are forward");
    g.add_comm(meas, pc, 32.0).expect("rlc edges are forward");
    g.add_comm(ho, enc, 32.0).expect("rlc edges are forward");
    g.add_comm(pc, enc, 32.0).expect("rlc edges are forward");
    enc
}

/// Appends `reps` network-search correlation chains.
fn ns_block(g: &mut TaskGraphBuilder, reps: usize) {
    for r in 0..reps {
        let scan = g.add_task(format!("ns_scan{r}"), ty(PhoneType::NsScan));
        let corr = g.add_task(format!("ns_corr{r}"), ty(PhoneType::NsCorrelate));
        let sync = g.add_task(format!("ns_sync{r}"), ty(PhoneType::NsSync));
        g.add_comm(scan, corr, 128.0).expect("ns edges are forward");
        g.add_comm(corr, sync, 64.0).expect("ns edges are forward");
    }
}

/// Appends the GSM 06.10 encoder + decoder frame pipeline.
fn gsm_block(g: &mut TaskGraphBuilder) {
    let pre = g.add_task("gsm_pre", ty(PhoneType::GsmPre));
    let lpc = g.add_task("gsm_lpc", ty(PhoneType::GsmLpc));
    let ltp = g.add_task("gsm_ltp", ty(PhoneType::GsmLtp));
    let rpe = g.add_task("gsm_rpe", ty(PhoneType::GsmRpe));
    g.add_comm(pre, lpc, 160.0).expect("gsm edges are forward");
    g.add_comm(lpc, ltp, 160.0).expect("gsm edges are forward");
    g.add_comm(ltp, rpe, 160.0).expect("gsm edges are forward");
    let dec = g.add_task("gsm_dec", ty(PhoneType::GsmDec));
    let post = g.add_task("gsm_post", ty(PhoneType::GsmPost));
    g.add_comm(dec, post, 160.0).expect("gsm edges are forward");
}

/// Appends the MP3 decoder (two granules × two channels) ending in an
/// audio-output task.
fn mp3_block(g: &mut TaskGraphBuilder) {
    let out = g.add_task("audio_out", ty(PhoneType::Ui));
    for granule in 0..2 {
        let huff = g.add_task(format!("mp3_huff{granule}"), ty(PhoneType::Huffman));
        let deq = g.add_task(format!("mp3_deq{granule}"), ty(PhoneType::Dequant));
        let stereo = g.add_task(format!("mp3_stereo{granule}"), ty(PhoneType::Stereo));
        g.add_comm(huff, deq, 192.0).expect("mp3 edges are forward");
        g.add_comm(deq, stereo, 192.0).expect("mp3 edges are forward");
        for channel in 0..2 {
            let idct =
                g.add_task(format!("mp3_imdct{granule}_{channel}"), ty(PhoneType::Idct));
            let synth =
                g.add_task(format!("mp3_synth{granule}_{channel}"), ty(PhoneType::Synth));
            g.add_comm(stereo, idct, 96.0).expect("mp3 edges are forward");
            g.add_comm(idct, synth, 96.0).expect("mp3 edges are forward");
            g.add_comm(synth, out, 96.0).expect("mp3 edges are forward");
        }
    }
}

/// Appends a JPEG decoder over `mcus` MCU pipelines joined into a display
/// task; returns the display task.
fn jpeg_block(g: &mut TaskGraphBuilder, mcus: usize) -> TaskId {
    let disp = g.add_task("display", ty(PhoneType::Display));
    for m in 0..mcus {
        let huff = g.add_task(format!("jpg_huff{m}"), ty(PhoneType::Huffman));
        let deq = g.add_task(format!("jpg_deq{m}"), ty(PhoneType::Dequant));
        let idct = g.add_task(format!("jpg_idct{m}"), ty(PhoneType::Idct));
        let color = g.add_task(format!("jpg_color{m}"), ty(PhoneType::ColorTransform));
        g.add_comm(huff, deq, 256.0).expect("jpeg edges are forward");
        g.add_comm(deq, idct, 256.0).expect("jpeg edges are forward");
        g.add_comm(idct, color, 256.0).expect("jpeg edges are forward");
        g.add_comm(color, disp, 256.0).expect("jpeg edges are forward");
    }
    disp
}

/// Builds the eight-mode smart-phone system.
///
/// # Examples
///
/// ```
/// let phone = momsynth_gen::smartphone::smartphone();
/// assert_eq!(phone.omsm().mode_count(), 8);
/// // The paper's usage profile: 74% of the time in radio link control.
/// let rlc = phone
///     .omsm()
///     .modes()
///     .find(|(_, m)| m.name() == "rlc")
///     .map(|(_, m)| m.probability())
///     .unwrap();
/// assert!((rlc - 0.74).abs() < 1e-12);
/// ```
pub fn smartphone() -> System {
    // ---- Architecture: one DVS GPP + two ASICs on one bus ----------------
    let mut arch = ArchitectureBuilder::new();
    let gpp = arch.add_pe(
        Pe::software("GPP", PeKind::Gpp, Watts::from_milli(1.0)).with_dvs(DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(1.2), Volts::new(1.8), Volts::new(2.4), Volts::new(3.3)],
        )),
    );
    let codec_asic = arch.add_pe(Pe::hardware(
        "CODEC_ASIC",
        PeKind::Asic,
        Cells::new(1200),
        Watts::from_milli(0.5),
    ));
    let imaging_asic = arch.add_pe(Pe::hardware(
        "IMG_ASIC",
        PeKind::Asic,
        Cells::new(1000),
        Watts::from_milli(0.4),
    ));
    arch.add_cl(Cl::bus(
        "BUS",
        vec![gpp, codec_asic, imaging_asic],
        Seconds::from_micros(0.2),
        Watts::from_milli(3.0),
        Watts::from_milli(0.2),
    ))
    .expect("bus endpoints exist");

    // ---- Technology library ----------------------------------------------
    let mut tech = TechLibraryBuilder::new();
    for &(name, sw_ms, sw_mw, asic, speedup, hw_mw, hw_area) in &TYPES {
        let t = tech.add_type(name);
        tech.set_impl(
            t,
            gpp,
            Implementation::software(Seconds::from_millis(sw_ms), Watts::from_milli(sw_mw)),
        );
        let target = match asic {
            1 => Some(codec_asic),
            2 => Some(imaging_asic),
            _ => None,
        };
        if let Some(pe) = target {
            tech.set_impl(
                t,
                pe,
                Implementation::hardware(
                    Seconds::from_millis(sw_ms / speedup),
                    Watts::from_milli(hw_mw),
                    Cells::new(hw_area),
                ),
            );
        }
    }

    // ---- Modes --------------------------------------------------------------
    let ms = Seconds::from_millis;
    let mut omsm = OmsmBuilder::new();

    // O0: GSM codec + RLC (incoming/outgoing call), 20 ms speech frame.
    let mut g = TaskGraphBuilder::new("gsm_rlc", ms(20.0));
    gsm_block(&mut g);
    rlc_block(&mut g);
    let gsm_rlc = omsm.add_mode("gsm_rlc", 0.09, g.build().expect("valid graph"));

    // O1: Radio Link Control only — where the phone lives 74% of the time.
    let mut g = TaskGraphBuilder::new("rlc", ms(20.0));
    rlc_block(&mut g);
    let rlc = omsm.add_mode("rlc", 0.74, g.build().expect("valid graph"));

    // O2: Network Search.
    let mut g = TaskGraphBuilder::new("network_search", ms(50.0));
    ns_block(&mut g, 4);
    let ns = omsm.add_mode("network_search", 0.01, g.build().expect("valid graph"));

    // O3: decode Photo + RLC — the largest mode (86 tasks).
    let mut g = TaskGraphBuilder::new("photo_rlc", ms(25.0));
    let disp = jpeg_block(&mut g, 20);
    g.set_deadline(disp, ms(24.0)).expect("display task exists");
    rlc_block(&mut g);
    let photo_rlc = omsm.add_mode("photo_rlc", 0.02, g.build().expect("valid graph"));

    // O4: decode Photo + Network Search.
    let mut g = TaskGraphBuilder::new("photo_ns", ms(25.0));
    jpeg_block(&mut g, 16);
    ns_block(&mut g, 1);
    let photo_ns = omsm.add_mode("photo_ns", 0.02, g.build().expect("valid graph"));

    // O5: MP3 play + RLC — fixed 25 ms sampling, as in the paper.
    let mut g = TaskGraphBuilder::new("mp3_rlc", ms(25.0));
    mp3_block(&mut g);
    rlc_block(&mut g);
    let mp3_rlc = omsm.add_mode("mp3_rlc", 0.10, g.build().expect("valid graph"));

    // O6: MP3 play + Network Search.
    let mut g = TaskGraphBuilder::new("mp3_ns", ms(25.0));
    mp3_block(&mut g);
    ns_block(&mut g, 1);
    let mp3_ns = omsm.add_mode("mp3_ns", 0.01, g.build().expect("valid graph"));

    // O7: Take/Show Photo (camera preview + small decode), 15 ms display
    // deadline (the paper's θ = 0.015 s).
    let mut g = TaskGraphBuilder::new("camera", ms(25.0));
    let cam = g.add_task("capture", ty(PhoneType::Camera));
    let disp = jpeg_block(&mut g, 6);
    g.set_deadline(disp, ms(15.0)).expect("display task exists");
    let ui = g.add_task("ui", ty(PhoneType::Ui));
    g.add_comm(cam, disp, 256.0).expect("camera edges are forward");
    g.add_comm(disp, ui, 32.0).expect("camera edges are forward");
    let camera = omsm.add_mode("camera", 0.01, g.build().expect("valid graph"));

    // ---- Transitions (Fig. 1a) --------------------------------------------
    let t = |omsm: &mut OmsmBuilder, a, b, limit_ms: f64| {
        omsm.add_transition(a, b, ms(limit_ms)).expect("transition endpoints exist");
        omsm.add_transition(b, a, ms(limit_ms)).expect("transition endpoints exist");
    };
    t(&mut omsm, ns, rlc, 10.0); // network found / lost
    t(&mut omsm, rlc, gsm_rlc, 5.0); // incoming call / terminate call
    t(&mut omsm, rlc, mp3_rlc, 20.0); // play / terminate audio
    t(&mut omsm, mp3_rlc, mp3_ns, 10.0); // network lost / found
    t(&mut omsm, ns, mp3_ns, 20.0); // play audio while searching
    t(&mut omsm, rlc, photo_rlc, 25.0); // show photo / terminate photo
    t(&mut omsm, photo_rlc, photo_ns, 10.0); // network lost / found
    t(&mut omsm, ns, photo_ns, 25.0);
    t(&mut omsm, rlc, camera, 25.0); // take photo
    t(&mut omsm, camera, photo_rlc, 25.0); // photo taken -> show

    System::new(
        "smartphone",
        omsm.build().expect("probabilities sum to one"),
        arch.build().expect("valid architecture"),
        tech.build(),
    )
    .expect("smart phone is a valid system")
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::PeId;
    use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

    #[test]
    fn has_eight_modes_with_paper_probabilities() {
        let phone = smartphone();
        assert_eq!(phone.omsm().mode_count(), 8);
        let probs: Vec<f64> = phone.omsm().modes().map(|(_, m)| m.probability()).collect();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((probs[1] - 0.74).abs() < 1e-12);
        assert!((probs[0] - 0.09).abs() < 1e-12);
        assert!((probs[5] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn mode_sizes_match_paper_envelope() {
        let phone = smartphone();
        let mut max_tasks = 0;
        let mut min_tasks = usize::MAX;
        for (_, m) in phone.omsm().modes() {
            let t = m.graph().task_count();
            let e = m.graph().comm_count();
            assert!((5..=88).contains(&t), "{}: {t} tasks", m.graph().name());
            assert!(e <= 137, "{}: {e} edges", m.graph().name());
            max_tasks = max_tasks.max(t);
            min_tasks = min_tasks.min(t);
        }
        // The spread matters: small RLC-only mode vs large photo mode.
        assert_eq!(min_tasks, 5);
        assert!(max_tasks >= 80, "largest mode has {max_tasks} tasks");
    }

    #[test]
    fn architecture_is_one_dvs_gpp_plus_two_asics_on_one_bus() {
        let phone = smartphone();
        assert_eq!(phone.arch().pe_count(), 3);
        assert_eq!(phone.arch().cl_count(), 1);
        assert_eq!(phone.arch().software_pes().count(), 1);
        assert_eq!(phone.arch().hardware_pes().count(), 2);
        assert_eq!(phone.arch().dvs_pes().collect::<Vec<_>>(), vec![PeId::new(0)]);
    }

    #[test]
    fn hardware_is_5_to_100_times_faster() {
        let phone = smartphone();
        for t in phone.tech().type_ids() {
            let sw = phone.tech().impl_of(t, PeId::new(0)).expect("SW impl exists");
            for pe in [PeId::new(1), PeId::new(2)] {
                if let Some(hw) = phone.tech().impl_of(t, pe) {
                    let speedup = sw.exec_time() / hw.exec_time();
                    assert!(
                        (5.0..=100.0).contains(&speedup),
                        "{}: speedup {speedup}",
                        phone.tech().type_name(t)
                    );
                }
            }
        }
    }

    #[test]
    fn codec_types_are_shared_across_modes() {
        let phone = smartphone();
        let shared = phone.shared_types();
        // huffman, dequant and idct serve both MP3 and JPEG pipelines.
        for t in [PhoneType::Huffman, PhoneType::Dequant, PhoneType::Idct] {
            assert!(shared.contains(&t.id()), "{t:?} should be shared");
        }
    }

    #[test]
    fn single_gpp_mapping_is_feasible_in_every_mode() {
        let phone = smartphone();
        let mapping = SystemMapping::from_fn(&phone, |_| PeId::new(0));
        assert!(mapping.validate(&phone).is_ok());
        let alloc = CoreAllocation::minimal(&phone, &mapping);
        for mode in phone.omsm().mode_ids() {
            let s =
                schedule_mode(&phone, mode, &mapping, &alloc, SchedulerOptions::default())
                    .expect("single-GPP schedules");
            assert!(
                s.is_timing_feasible(phone.omsm().mode(mode).graph()),
                "mode {} infeasible on the GPP alone",
                phone.omsm().mode(mode).graph().name()
            );
        }
    }

    #[test]
    fn transitions_cover_the_fig1_activation_scenarios() {
        let phone = smartphone();
        assert!(phone.omsm().transition_count() >= 20);
        // Every mode is reachable and leavable.
        for mode in phone.omsm().mode_ids() {
            assert!(phone.omsm().transitions_from(mode).count() >= 1);
            assert!(
                phone.omsm().transitions().any(|(_, t)| t.to() == mode),
                "mode {mode} unreachable"
            );
        }
    }

    #[test]
    fn construction_is_deterministic() {
        assert_eq!(smartphone(), smartphone());
    }
}
