//! A second real-life-style benchmark: a multi-mode automotive body/ADAS
//! controller.
//!
//! Beyond the paper's smart phone, this system exercises a different
//! corner of the model: hard per-task deadlines everywhere (braking!),
//! an FPGA with mode-dependent reconfiguration under tight transition
//! limits, and a usage profile dominated by highway cruising. Four modes:
//!
//! * `cruise` (Ψ = 0.55) — engine control + adaptive cruise radar.
//! * `city` (Ψ = 0.35) — engine control + camera-based pedestrian
//!   detection + traffic-sign recognition.
//! * `parking` (Ψ = 0.08) — ultrasonic array + rear camera + overlay
//!   rendering.
//! * `diagnostic` (Ψ = 0.02) — bus scan and health reporting in the shop.
//!
//! The engine-control block is shared by `cruise` and `city`; the camera
//! pre-processing is shared by `city` and `parking` — the cross-mode
//! sharing opportunities the paper's methodology lives on.

use momsynth_model::ids::TaskTypeId;
use momsynth_model::units::{Cells, Seconds, Volts, Watts};
use momsynth_model::{
    ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind, System,
    TaskGraphBuilder, TechLibraryBuilder,
};

/// Task types of the automotive controller, in technology-library order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum EcuType {
    SensorAcq = 0,
    EngineMap,
    InjectionCtrl,
    KnockFilter,
    RadarFft,
    RadarTrack,
    CameraPre,
    PedestrianNet,
    SignNet,
    UltrasonicArr,
    OverlayRender,
    BusScan,
    HealthReport,
    CanTx,
}

impl EcuType {
    /// The task-type id in the controller's technology library.
    pub fn id(self) -> TaskTypeId {
        TaskTypeId::new(self as usize)
    }
}

/// `(name, sw_ms, sw_mw, fpga, speedup, hw_mw, hw_area)` — `fpga` marks
/// types with an FPGA implementation.
const TYPES: [(&str, f64, f64, bool, f64, f64, u64); 14] = [
    ("sensor_acq", 0.3, 80.0, false, 0.0, 0.0, 0),
    ("engine_map", 1.2, 220.0, true, 12.0, 9.0, 260),
    ("injection_ctrl", 0.8, 180.0, true, 10.0, 7.0, 220),
    ("knock_filter", 1.5, 240.0, true, 25.0, 8.0, 280),
    ("radar_fft", 2.5, 300.0, true, 40.0, 10.0, 340),
    ("radar_track", 1.8, 260.0, false, 0.0, 0.0, 0),
    ("camera_pre", 2.0, 280.0, true, 30.0, 9.0, 320),
    ("pedestrian_net", 6.0, 380.0, true, 60.0, 14.0, 420),
    ("sign_net", 4.0, 340.0, true, 50.0, 12.0, 380),
    ("ultrasonic_arr", 1.0, 150.0, false, 0.0, 0.0, 0),
    ("overlay_render", 2.2, 260.0, false, 0.0, 0.0, 0),
    ("bus_scan", 3.0, 120.0, false, 0.0, 0.0, 0),
    ("health_report", 1.5, 100.0, false, 0.0, 0.0, 0),
    ("can_tx", 0.4, 90.0, false, 0.0, 0.0, 0),
];

fn ty(t: EcuType) -> TaskTypeId {
    t.id()
}

/// Engine-control block (shared by cruise and city): acquisition →
/// map lookup → knock filter → injection → CAN, with a hard 4 ms
/// actuation deadline.
fn engine_block(g: &mut TaskGraphBuilder) {
    let acq = g.add_task("eng_acq", ty(EcuType::SensorAcq));
    let map = g.add_task("eng_map", ty(EcuType::EngineMap));
    let knock = g.add_task("eng_knock", ty(EcuType::KnockFilter));
    let inj = g.add_task_with_deadline(
        "eng_inject",
        ty(EcuType::InjectionCtrl),
        Seconds::from_millis(4.0),
    );
    let tx = g.add_task("eng_can", ty(EcuType::CanTx));
    g.add_comm(acq, map, 32.0).expect("forward edge");
    g.add_comm(acq, knock, 64.0).expect("forward edge");
    g.add_comm(map, inj, 16.0).expect("forward edge");
    g.add_comm(knock, inj, 16.0).expect("forward edge");
    g.add_comm(inj, tx, 8.0).expect("forward edge");
}

/// Radar block (cruise): 4 FFT channels joined by a tracker.
fn radar_block(g: &mut TaskGraphBuilder) {
    let track = g.add_task("radar_track", ty(EcuType::RadarTrack));
    let tx = g.add_task("radar_can", ty(EcuType::CanTx));
    for c in 0..4 {
        let fft = g.add_task(format!("radar_fft{c}"), ty(EcuType::RadarFft));
        g.add_comm(fft, track, 128.0).expect("forward edge");
    }
    g.add_comm(track, tx, 32.0).expect("forward edge");
}

/// Camera vision block (city): two pre-processed streams feeding the
/// pedestrian and sign networks; pedestrian detection has a hard 15 ms
/// deadline.
fn vision_block(g: &mut TaskGraphBuilder) {
    let pre0 = g.add_task("cam_pre0", ty(EcuType::CameraPre));
    let pre1 = g.add_task("cam_pre1", ty(EcuType::CameraPre));
    let ped = g.add_task_with_deadline(
        "pedestrian",
        ty(EcuType::PedestrianNet),
        Seconds::from_millis(15.0),
    );
    let sign = g.add_task("sign", ty(EcuType::SignNet));
    let tx = g.add_task("vision_can", ty(EcuType::CanTx));
    g.add_comm(pre0, ped, 512.0).expect("forward edge");
    g.add_comm(pre1, sign, 512.0).expect("forward edge");
    g.add_comm(ped, tx, 16.0).expect("forward edge");
    g.add_comm(sign, tx, 16.0).expect("forward edge");
}

/// Builds the four-mode automotive controller.
///
/// # Examples
///
/// ```
/// let ecu = momsynth_gen::automotive::automotive_ecu();
/// assert_eq!(ecu.omsm().mode_count(), 4);
/// assert!(!ecu.shared_types().is_empty());
/// ```
pub fn automotive_ecu() -> System {
    let ms = Seconds::from_millis;

    // ---- Architecture: DVS MCU + FPGA accelerator on a CAN-like bus ----
    let mut arch = ArchitectureBuilder::new();
    let mcu = arch.add_pe(
        Pe::software("MCU", PeKind::Gpp, Watts::from_milli(2.0)).with_dvs(DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(1.2), Volts::new(1.8), Volts::new(2.4), Volts::new(3.3)],
        )),
    );
    let dsp = arch.add_pe(Pe::software("DSP", PeKind::Asip, Watts::from_milli(1.5)));
    let fpga = arch.add_pe(
        Pe::hardware("FPGA", PeKind::Fpga, Cells::new(1100), Watts::from_milli(3.0))
            .with_reconfig_time_per_cell(Seconds::from_micros(5.0)),
    );
    arch.add_cl(Cl::bus(
        "CAN",
        vec![mcu, dsp, fpga],
        Seconds::from_micros(0.5),
        Watts::from_milli(2.0),
        Watts::from_milli(0.3),
    ))
    .expect("bus endpoints exist");

    // ---- Technology library ---------------------------------------------
    let mut tech = TechLibraryBuilder::new();
    for &(name, sw_ms, sw_mw, fpga_impl, speedup, hw_mw, hw_area) in &TYPES {
        let t = tech.add_type(name);
        tech.set_impl(
            t,
            mcu,
            Implementation::software(ms(sw_ms), Watts::from_milli(sw_mw)),
        );
        // The DSP runs signal-processing types ~30% faster.
        tech.set_impl(
            t,
            dsp,
            Implementation::software(ms(sw_ms * 0.7), Watts::from_milli(sw_mw * 0.9)),
        );
        if fpga_impl {
            tech.set_impl(
                t,
                fpga,
                Implementation::hardware(
                    ms(sw_ms / speedup),
                    Watts::from_milli(hw_mw),
                    Cells::new(hw_area),
                ),
            );
        }
    }

    // ---- Modes -------------------------------------------------------------
    let mut omsm = OmsmBuilder::new();

    // Cruise: engine control (10 ms frame) + radar pipeline.
    let mut g = TaskGraphBuilder::new("cruise", ms(10.0));
    engine_block(&mut g);
    radar_block(&mut g);
    let cruise = omsm.add_mode("cruise", 0.55, g.build().expect("valid graph"));

    // City: engine control + vision, 20 ms camera frame.
    let mut g = TaskGraphBuilder::new("city", ms(20.0));
    engine_block(&mut g);
    vision_block(&mut g);
    let city = omsm.add_mode("city", 0.35, g.build().expect("valid graph"));

    // Parking: ultrasonics + rear camera + overlay, 40 ms frame.
    let mut g = TaskGraphBuilder::new("parking", ms(40.0));
    let tx = g.add_task("park_can", ty(EcuType::CanTx));
    for c in 0..6 {
        let us = g.add_task(format!("ultra{c}"), ty(EcuType::UltrasonicArr));
        g.add_comm(us, tx, 16.0).expect("forward edge");
    }
    let pre = g.add_task("rear_pre", ty(EcuType::CameraPre));
    let ovl = g.add_task("overlay", ty(EcuType::OverlayRender));
    g.add_comm(pre, ovl, 512.0).expect("forward edge");
    g.add_comm(ovl, tx, 32.0).expect("forward edge");
    let parking = omsm.add_mode("parking", 0.08, g.build().expect("valid graph"));

    // Diagnostic: slow bus scan, 100 ms frame.
    let mut g = TaskGraphBuilder::new("diagnostic", ms(100.0));
    let scan = g.add_task("bus_scan", ty(EcuType::BusScan));
    let health = g.add_task("health", ty(EcuType::HealthReport));
    let tx = g.add_task("diag_can", ty(EcuType::CanTx));
    g.add_comm(scan, health, 64.0).expect("forward edge");
    g.add_comm(health, tx, 16.0).expect("forward edge");
    let diagnostic = omsm.add_mode("diagnostic", 0.02, g.build().expect("valid graph"));

    // ---- Transitions (tight where a driver is waiting) --------------------
    let t = |omsm: &mut OmsmBuilder, a, b, limit_ms: f64| {
        omsm.add_transition(a, b, ms(limit_ms)).expect("valid transition");
        omsm.add_transition(b, a, ms(limit_ms)).expect("valid transition");
    };
    t(&mut omsm, cruise, city, 50.0);
    t(&mut omsm, city, parking, 100.0);
    t(&mut omsm, cruise, parking, 100.0);
    t(&mut omsm, city, diagnostic, 500.0);
    t(&mut omsm, parking, diagnostic, 500.0);

    System::new(
        "automotive_ecu",
        omsm.build().expect("probabilities sum to one"),
        arch.build().expect("valid architecture"),
        tech.build(),
    )
    .expect("automotive controller is a valid system")
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::PeId;
    use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

    #[test]
    fn structure_matches_the_design() {
        let ecu = automotive_ecu();
        assert_eq!(ecu.omsm().mode_count(), 4);
        assert_eq!(ecu.arch().pe_count(), 3);
        assert_eq!(ecu.arch().software_pes().count(), 2);
        let probs: Vec<f64> = ecu.omsm().modes().map(|(_, m)| m.probability()).collect();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((probs[0] - 0.55).abs() < 1e-12);
    }

    #[test]
    fn engine_and_camera_blocks_are_shared_across_modes() {
        let ecu = automotive_ecu();
        let shared = ecu.shared_types();
        for t in [EcuType::EngineMap, EcuType::CameraPre, EcuType::CanTx] {
            assert!(shared.contains(&t.id()), "{t:?} should be shared");
        }
    }

    #[test]
    fn split_dsp_fpga_mapping_is_feasible_in_every_mode() {
        // The tight 10 ms cruise frame does NOT fit any single software
        // PE — the system forces hardware acceleration (that is the
        // point). Radar FFTs and the pedestrian network on the FPGA, the
        // rest on the DSP, is feasible everywhere.
        let ecu = automotive_ecu();
        let fpga = PeId::new(2);
        let dsp = PeId::new(1);
        let mapping = SystemMapping::from_fn(&ecu, |id| {
            let t = ecu.task_type_of(id);
            if t == EcuType::RadarFft.id() || t == EcuType::PedestrianNet.id() {
                fpga
            } else {
                dsp
            }
        });
        assert!(mapping.validate(&ecu).is_ok());
        let alloc = momsynth_core_free_alloc(&ecu, &mapping);
        for mode in ecu.omsm().mode_ids() {
            let s = schedule_mode(&ecu, mode, &mapping, &alloc, SchedulerOptions::default())
                .expect("split mapping schedules");
            assert!(
                s.is_timing_feasible(ecu.omsm().mode(mode).graph()),
                "mode {} infeasible under the split mapping:\n{}",
                ecu.omsm().mode(mode).graph().name(),
                s.to_gantt_string(&ecu)
            );
        }
    }

    /// Minimal allocation plus two extra radar-FFT cores — stand-in for
    /// the synthesis layer's replication, which this crate cannot depend
    /// on.
    fn momsynth_core_free_alloc(
        ecu: &System,
        mapping: &SystemMapping,
    ) -> CoreAllocation {
        let mut alloc = CoreAllocation::minimal(ecu, mapping);
        alloc.ensure(
            momsynth_model::ids::ModeId::new(0),
            PeId::new(2),
            EcuType::RadarFft.id(),
            3,
        );
        alloc
    }

    #[test]
    fn no_single_software_pe_fits_the_cruise_mode() {
        // Documents the design intent: cruise needs acceleration.
        let ecu = automotive_ecu();
        for pe in ecu.arch().software_pes().collect::<Vec<_>>() {
            let mapping = SystemMapping::from_fn(&ecu, |_| pe);
            let alloc = CoreAllocation::minimal(&ecu, &mapping);
            let s = schedule_mode(
                &ecu,
                momsynth_model::ids::ModeId::new(0),
                &mapping,
                &alloc,
                SchedulerOptions::default(),
            )
            .expect("software mapping schedules");
            assert!(
                !s.is_timing_feasible(ecu.omsm().mode(momsynth_model::ids::ModeId::new(0)).graph()),
                "cruise unexpectedly fits {} alone",
                ecu.arch().pe(pe).name()
            );
        }
    }

    #[test]
    fn hard_deadlines_are_present() {
        let ecu = automotive_ecu();
        let cruise = ecu.omsm().mode(momsynth_model::ids::ModeId::new(0)).graph();
        let with_deadline = cruise
            .tasks()
            .filter(|(_, t)| t.deadline().is_some())
            .count();
        assert!(with_deadline >= 1, "injection deadline missing");
    }

    #[test]
    fn fpga_reconfiguration_is_modelled() {
        let ecu = automotive_ecu();
        let fpga = ecu.arch().pe(PeId::new(2));
        assert!(fpga.kind().is_reconfigurable());
        assert!(fpga.reconfig_time_per_cell().value() > 0.0);
    }

    #[test]
    fn lints_without_hard_problems() {
        let ecu = automotive_ecu();
        for w in momsynth_model::lint::lint_system(&ecu) {
            assert!(
                matches!(w, momsynth_model::lint::LintWarning::SoftwareOnlyType { .. }),
                "unexpected lint: {w}"
            );
        }
    }

    #[test]
    fn construction_is_deterministic() {
        assert_eq!(automotive_ecu(), automotive_ecu());
    }
}
