//! Importing TGFF-style specifications.
//!
//! TGFF (*Task Graphs For Free*, Dick/Rhodes/Wolf) is the de-facto
//! exchange format for task-graph benchmarks in the co-synthesis
//! literature — the paper's own generated examples are TGFF-class
//! workloads. This module parses a documented dialect of the format and
//! builds a complete [`System`]:
//!
//! ```text
//! # comments run to the end of the line
//! @TASK_GRAPH 0 {
//!     PERIOD 0.020              # seconds
//!     PROBABILITY 0.74          # momsynth extension: mode probability
//!     NAME rlc                  # momsynth extension: mode name
//!     TASK t0 TYPE 2
//!     TASK t1 TYPE 5
//!     ARC a0 FROM t0 TO t1 TYPE 64        # TYPE = transferred data units
//!     HARD_DEADLINE d0 ON t1 AT 0.015     # seconds
//! }
//!
//! @PE 0 {
//!     KIND GPP                  # GPP | ASIP | ASIC | FPGA
//!     STATIC_POWER 0.005        # watts
//!     AREA 1000                 # cells, hardware kinds only
//!     RECONFIG_TIME_PER_CELL 1e-6   # seconds, FPGA only
//!     DVS 3.3 0.8 1.2 1.8 2.4 3.3   # v_max v_t level...
//!     # type  exec_time  power  area
//!     2       0.010      0.30   0
//!     5       0.012      0.25   0
//! }
//!
//! @LINK 0 {
//!     CONNECTS 0 1
//!     TIME_PER_UNIT 1e-6
//!     POWER 0.002
//!     STATIC_POWER 0.0005
//! }
//!
//! @TRANSITION 0 FROM 0 TO 1 MAX_TIME 0.010
//! ```
//!
//! Unknown directives inside blocks are rejected with a line-accurate
//! error — silent misparses of benchmark files are worse than strictness.
//! Graphs with a single `@TASK_GRAPH` and no `PROBABILITY` default to
//! probability 1; multi-graph files must specify probabilities.

use std::collections::HashMap;
use std::fmt;

use momsynth_model::ids::{PeId, TaskId};
use momsynth_model::units::{Cells, Seconds, Volts, Watts};
use momsynth_model::{
    ArchitectureBuilder, Cl, DvsCapability, Implementation, ModelError, OmsmBuilder, Pe, PeKind,
    System, TaskGraphBuilder, TechLibraryBuilder,
};

/// A TGFF parse or consistency error, with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TgffError {
    /// 1-based line of the offending input (0 for file-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl TgffError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self { line, message: message.into() }
    }
}

impl fmt::Display for TgffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "tgff: {}", self.message)
        } else {
            write!(f, "tgff line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TgffError {}

impl From<ModelError> for TgffError {
    fn from(e: ModelError) -> Self {
        Self::new(0, e.to_string())
    }
}

#[derive(Debug, Default)]
struct GraphBlock {
    index: usize,
    name: Option<String>,
    period: Option<f64>,
    probability: Option<f64>,
    tasks: Vec<(String, usize, usize)>, // (name, type, line)
    arcs: Vec<(String, String, f64, usize)>, // (from, to, data, line)
    deadlines: Vec<(String, f64, usize)>, // (task, deadline, line)
}

#[derive(Debug, Default)]
struct PeBlock {
    index: usize,
    kind: Option<PeKind>,
    static_power: f64,
    area: Option<u64>,
    reconfig: Option<f64>,
    dvs: Option<(f64, f64, Vec<f64>)>,
    rows: Vec<(usize, f64, f64, u64, usize)>, // (type, time, power, area, line)
}

#[derive(Debug, Default)]
struct LinkBlock {
    index: usize,
    connects: Vec<usize>,
    time_per_unit: f64,
    power: f64,
    static_power: f64,
}

#[derive(Debug)]
struct TransitionLine {
    from: usize,
    to: usize,
    max_time: f64,
    line: usize,
}

/// Parses a TGFF-dialect specification into a [`System`].
///
/// # Errors
///
/// Returns a [`TgffError`] with the offending line for syntax errors,
/// unknown directives, dangling references and model-level validation
/// failures.
pub fn parse_system(name: &str, input: &str) -> Result<System, TgffError> {
    let mut graphs: Vec<GraphBlock> = Vec::new();
    let mut pes: Vec<PeBlock> = Vec::new();
    let mut links: Vec<LinkBlock> = Vec::new();
    let mut transitions: Vec<TransitionLine> = Vec::new();

    #[derive(Debug)]
    enum BlockKind {
        Graph,
        Pe,
        Link,
    }
    let mut current: Option<BlockKind> = None;

    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();

        if let Some(rest) = line.strip_prefix('@') {
            if current.is_some() && !rest.contains('{') && tokens[0] != "@TRANSITION" {
                return Err(TgffError::new(line_no, "new section while a block is open"));
            }
            match tokens[0] {
                "@TASK_GRAPH" => {
                    let index = parse_index(&tokens, line_no)?;
                    graphs.push(GraphBlock { index, ..GraphBlock::default() });
                    current = Some(BlockKind::Graph);
                }
                "@PE" | "@CORE" => {
                    let index = parse_index(&tokens, line_no)?;
                    pes.push(PeBlock { index, ..PeBlock::default() });
                    current = Some(BlockKind::Pe);
                }
                "@LINK" | "@WIRE" => {
                    let index = parse_index(&tokens, line_no)?;
                    links.push(LinkBlock { index, ..LinkBlock::default() });
                    current = Some(BlockKind::Link);
                }
                "@TRANSITION" => {
                    // @TRANSITION i FROM a TO b MAX_TIME t
                    let get = |k: &str| -> Result<f64, TgffError> {
                        let pos = tokens
                            .iter()
                            .position(|&t| t == k)
                            .ok_or_else(|| TgffError::new(line_no, format!("missing {k}")))?;
                        tokens
                            .get(pos + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| TgffError::new(line_no, format!("invalid {k} value")))
                    };
                    transitions.push(TransitionLine {
                        from: get("FROM")? as usize,
                        to: get("TO")? as usize,
                        max_time: get("MAX_TIME")?,
                        line: line_no,
                    });
                }
                other => {
                    return Err(TgffError::new(line_no, format!("unknown section `{other}`")))
                }
            }
            continue;
        }

        if line == "}" {
            if current.take().is_none() {
                return Err(TgffError::new(line_no, "unmatched `}`"));
            }
            continue;
        }

        let Some(kind) = &current else {
            return Err(TgffError::new(line_no, format!("directive `{}` outside any block", tokens[0])));
        };
        match kind {
            BlockKind::Graph => {
                let g = graphs.last_mut().expect("open graph block");
                match tokens[0] {
                    "PERIOD" => g.period = Some(parse_f64(&tokens, 1, line_no)?),
                    "PROBABILITY" => g.probability = Some(parse_f64(&tokens, 1, line_no)?),
                    "NAME" => {
                        g.name = Some(
                            tokens
                                .get(1)
                                .ok_or_else(|| TgffError::new(line_no, "NAME requires a value"))?
                                .to_string(),
                        )
                    }
                    "TASK" => {
                        // TASK <name> TYPE <n>
                        let name = tokens
                            .get(1)
                            .ok_or_else(|| TgffError::new(line_no, "TASK requires a name"))?;
                        expect_keyword(&tokens, 2, "TYPE", line_no)?;
                        let ty = parse_f64(&tokens, 3, line_no)? as usize;
                        g.tasks.push((name.to_string(), ty, line_no));
                    }
                    "ARC" => {
                        // ARC <name> FROM <a> TO <b> TYPE <data>
                        expect_keyword(&tokens, 2, "FROM", line_no)?;
                        expect_keyword(&tokens, 4, "TO", line_no)?;
                        expect_keyword(&tokens, 6, "TYPE", line_no)?;
                        let from = tokens
                            .get(3)
                            .ok_or_else(|| TgffError::new(line_no, "ARC missing FROM task"))?;
                        let to = tokens
                            .get(5)
                            .ok_or_else(|| TgffError::new(line_no, "ARC missing TO task"))?;
                        let data = parse_f64(&tokens, 7, line_no)?;
                        g.arcs.push((from.to_string(), to.to_string(), data, line_no));
                    }
                    "HARD_DEADLINE" => {
                        // HARD_DEADLINE <name> ON <task> AT <t>
                        expect_keyword(&tokens, 2, "ON", line_no)?;
                        expect_keyword(&tokens, 4, "AT", line_no)?;
                        let task = tokens
                            .get(3)
                            .ok_or_else(|| TgffError::new(line_no, "deadline missing task"))?;
                        let at = parse_f64(&tokens, 5, line_no)?;
                        g.deadlines.push((task.to_string(), at, line_no));
                    }
                    other => {
                        return Err(TgffError::new(
                            line_no,
                            format!("unknown task-graph directive `{other}`"),
                        ))
                    }
                }
            }
            BlockKind::Pe => {
                let p = pes.last_mut().expect("open PE block");
                match tokens[0] {
                    "KIND" => {
                        p.kind = Some(match tokens.get(1).copied() {
                            Some("GPP") => PeKind::Gpp,
                            Some("ASIP") => PeKind::Asip,
                            Some("ASIC") => PeKind::Asic,
                            Some("FPGA") => PeKind::Fpga,
                            other => {
                                return Err(TgffError::new(
                                    line_no,
                                    format!("unknown PE kind {other:?}"),
                                ))
                            }
                        })
                    }
                    "STATIC_POWER" => p.static_power = parse_f64(&tokens, 1, line_no)?,
                    "AREA" => p.area = Some(parse_f64(&tokens, 1, line_no)? as u64),
                    "RECONFIG_TIME_PER_CELL" => {
                        p.reconfig = Some(parse_f64(&tokens, 1, line_no)?)
                    }
                    "DVS" => {
                        if tokens.len() < 4 {
                            return Err(TgffError::new(
                                line_no,
                                "DVS requires v_max v_t and at least one level",
                            ));
                        }
                        let nums: Result<Vec<f64>, _> =
                            tokens[1..].iter().map(|t| t.parse::<f64>()).collect();
                        let nums = nums
                            .map_err(|_| TgffError::new(line_no, "invalid DVS voltage"))?;
                        p.dvs = Some((nums[0], nums[1], nums[2..].to_vec()));
                    }
                    _ => {
                        // Implementation row: type time power area
                        if tokens.len() != 4 {
                            return Err(TgffError::new(
                                line_no,
                                "implementation rows are `type exec_time power area`",
                            ));
                        }
                        let ty = tokens[0].parse::<usize>().map_err(|_| {
                            TgffError::new(line_no, format!("invalid type `{}`", tokens[0]))
                        })?;
                        let time = parse_f64(&tokens, 1, line_no)?;
                        let power = parse_f64(&tokens, 2, line_no)?;
                        let area = parse_f64(&tokens, 3, line_no)? as u64;
                        p.rows.push((ty, time, power, area, line_no));
                    }
                }
            }
            BlockKind::Link => {
                let l = links.last_mut().expect("open link block");
                match tokens[0] {
                    "CONNECTS" => {
                        l.connects = tokens[1..]
                            .iter()
                            .map(|t| {
                                t.parse::<usize>().map_err(|_| {
                                    TgffError::new(line_no, format!("invalid PE index `{t}`"))
                                })
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "TIME_PER_UNIT" => l.time_per_unit = parse_f64(&tokens, 1, line_no)?,
                    "POWER" => l.power = parse_f64(&tokens, 1, line_no)?,
                    "STATIC_POWER" => l.static_power = parse_f64(&tokens, 1, line_no)?,
                    other => {
                        return Err(TgffError::new(
                            line_no,
                            format!("unknown link directive `{other}`"),
                        ))
                    }
                }
            }
        }
    }
    if current.is_some() {
        return Err(TgffError::new(0, "unterminated block at end of input"));
    }
    if graphs.is_empty() {
        return Err(TgffError::new(0, "no @TASK_GRAPH sections"));
    }
    if pes.is_empty() {
        return Err(TgffError::new(0, "no @PE sections"));
    }
    graphs.sort_by_key(|g| g.index);
    pes.sort_by_key(|p| p.index);
    links.sort_by_key(|l| l.index);

    // ---- Technology library: the union of all implementation rows --------
    let max_type = pes
        .iter()
        .flat_map(|p| p.rows.iter().map(|r| r.0))
        .chain(graphs.iter().flat_map(|g| g.tasks.iter().map(|t| t.1)))
        .max()
        .unwrap_or(0);
    let mut tech = TechLibraryBuilder::new();
    for t in 0..=max_type {
        tech.add_type(format!("type{t}"));
    }

    let mut arch = ArchitectureBuilder::new();
    for (i, p) in pes.iter().enumerate() {
        let kind = p
            .kind
            .ok_or_else(|| TgffError::new(0, format!("@PE {} missing KIND", p.index)))?;
        let mut pe = if kind.is_software() {
            Pe::software(format!("PE{i}"), kind, Watts::new(p.static_power))
        } else {
            let area = p.area.ok_or_else(|| {
                TgffError::new(0, format!("hardware @PE {} missing AREA", p.index))
            })?;
            Pe::hardware(format!("PE{i}"), kind, Cells::new(area), Watts::new(p.static_power))
        };
        if let Some(r) = p.reconfig {
            pe = pe.with_reconfig_time_per_cell(Seconds::new(r));
        }
        if let Some((v_max, v_t, levels)) = &p.dvs {
            pe = pe.with_dvs(DvsCapability::new(
                Volts::new(*v_max),
                Volts::new(*v_t),
                levels.iter().map(|&v| Volts::new(v)).collect(),
            ));
        }
        let pe_id = arch.add_pe(pe);
        debug_assert_eq!(pe_id, PeId::new(i));
        for &(ty, time, power, area, line) in &p.rows {
            if kind.is_hardware() && area == 0 {
                return Err(TgffError::new(line, "hardware rows need a non-zero area"));
            }
            let implementation = if kind.is_software() {
                Implementation::software(Seconds::new(time), Watts::new(power))
            } else {
                Implementation::hardware(Seconds::new(time), Watts::new(power), Cells::new(area))
            };
            tech.set_impl(momsynth_model::ids::TaskTypeId::new(ty), pe_id, implementation);
        }
    }
    for l in &links {
        arch.add_cl(Cl::bus(
            format!("LINK{}", l.index),
            l.connects.iter().map(|&i| PeId::new(i)).collect(),
            Seconds::new(l.time_per_unit),
            Watts::new(l.power),
            Watts::new(l.static_power),
        ))?;
    }

    // ---- Modes ---------------------------------------------------------
    let mut omsm = OmsmBuilder::new();
    let single = graphs.len() == 1;
    let mut mode_ids = Vec::with_capacity(graphs.len());
    for g in &graphs {
        let period = g.period.ok_or_else(|| {
            TgffError::new(0, format!("@TASK_GRAPH {} missing PERIOD", g.index))
        })?;
        let probability = match g.probability {
            Some(p) => p,
            None if single => 1.0,
            None => {
                return Err(TgffError::new(
                    0,
                    format!("@TASK_GRAPH {} missing PROBABILITY", g.index),
                ))
            }
        };
        let mode_name =
            g.name.clone().unwrap_or_else(|| format!("graph{}", g.index));
        let mut builder = TaskGraphBuilder::new(mode_name.clone(), Seconds::new(period));
        let mut by_name: HashMap<&str, TaskId> = HashMap::new();
        for (task_name, ty, line) in &g.tasks {
            if by_name.contains_key(task_name.as_str()) {
                return Err(TgffError::new(*line, format!("duplicate task `{task_name}`")));
            }
            let id =
                builder.add_task(task_name.clone(), momsynth_model::ids::TaskTypeId::new(*ty));
            by_name.insert(task_name.as_str(), id);
        }
        for (from, to, data, line) in &g.arcs {
            let src = *by_name.get(from.as_str()).ok_or_else(|| {
                TgffError::new(*line, format!("arc references unknown task `{from}`"))
            })?;
            let dst = *by_name.get(to.as_str()).ok_or_else(|| {
                TgffError::new(*line, format!("arc references unknown task `{to}`"))
            })?;
            builder
                .add_comm(src, dst, *data)
                .map_err(|e| TgffError::new(*line, e.to_string()))?;
        }
        for (task, at, line) in &g.deadlines {
            let id = *by_name.get(task.as_str()).ok_or_else(|| {
                TgffError::new(*line, format!("deadline references unknown task `{task}`"))
            })?;
            builder
                .set_deadline(id, Seconds::new(*at))
                .map_err(|e| TgffError::new(*line, e.to_string()))?;
        }
        let graph =
            builder.build().map_err(|e| TgffError::new(0, e.to_string()))?;
        mode_ids.push(omsm.add_mode(mode_name, probability, graph));
    }
    for t in &transitions {
        let get = |i: usize| -> Result<_, TgffError> {
            mode_ids.get(i).copied().ok_or_else(|| {
                TgffError::new(t.line, format!("transition references unknown graph {i}"))
            })
        };
        omsm.add_transition(get(t.from)?, get(t.to)?, Seconds::new(t.max_time))
            .map_err(|e| TgffError::new(t.line, e.to_string()))?;
    }

    Ok(System::new(name, omsm.build()?, arch.build()?, tech.build())?)
}

/// Renders `system` in the same TGFF dialect [`parse_system`] accepts.
///
/// The export loses only the system name and free-form type names (types
/// are referenced by index in TGFF); everything else round-trips:
/// `parse_system(name, &to_tgff(&s))` reproduces the modes, architecture,
/// technology library, probabilities, deadlines and transitions of `s`.
pub fn to_tgff(system: &System) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# exported by momsynth from system `{}`", system.name());

    for (mode_id, mode) in system.omsm().modes() {
        let graph = mode.graph();
        let _ = writeln!(out, "\n@TASK_GRAPH {} {{", mode_id.index());
        let _ = writeln!(out, "    PERIOD {}", graph.period().value());
        let _ = writeln!(out, "    PROBABILITY {}", mode.probability());
        let _ = writeln!(out, "    NAME {}", mode.name().replace(char::is_whitespace, "_"));
        for (task_id, task) in graph.tasks() {
            let _ = writeln!(
                out,
                "    TASK t{} TYPE {}",
                task_id.index(),
                task.task_type().index()
            );
        }
        for (comm_id, comm) in graph.comms() {
            let _ = writeln!(
                out,
                "    ARC a{} FROM t{} TO t{} TYPE {}",
                comm_id.index(),
                comm.src().index(),
                comm.dst().index(),
                comm.data_units()
            );
        }
        for (task_id, task) in graph.tasks() {
            if let Some(d) = task.deadline() {
                let _ = writeln!(
                    out,
                    "    HARD_DEADLINE d{} ON t{} AT {}",
                    task_id.index(),
                    task_id.index(),
                    d.value()
                );
            }
        }
        out.push_str("}\n");
    }

    for (pe_id, pe) in system.arch().pes() {
        let _ = writeln!(out, "\n@PE {} {{", pe_id.index());
        let _ = writeln!(out, "    KIND {}", pe.kind());
        let _ = writeln!(out, "    STATIC_POWER {}", pe.static_power().value());
        if let Some(area) = pe.area() {
            let _ = writeln!(out, "    AREA {}", area.value());
        }
        if pe.reconfig_time_per_cell().value() > 0.0 {
            let _ = writeln!(
                out,
                "    RECONFIG_TIME_PER_CELL {}",
                pe.reconfig_time_per_cell().value()
            );
        }
        if let Some(dvs) = pe.dvs() {
            let levels: Vec<String> =
                dvs.levels().iter().map(|v| v.value().to_string()).collect();
            let _ = writeln!(
                out,
                "    DVS {} {} {}",
                dvs.v_max().value(),
                dvs.v_threshold().value(),
                levels.join(" ")
            );
        }
        for ty in system.tech().type_ids() {
            if let Some(imp) = system.tech().impl_of(ty, pe_id) {
                let _ = writeln!(
                    out,
                    "    {} {} {} {}",
                    ty.index(),
                    imp.exec_time().value(),
                    imp.dyn_power().value(),
                    imp.area().value()
                );
            }
        }
        out.push_str("}\n");
    }

    for (cl_id, cl) in system.arch().cls() {
        let _ = writeln!(out, "\n@LINK {} {{", cl_id.index());
        let endpoints: Vec<String> =
            cl.endpoints().iter().map(|p| p.index().to_string()).collect();
        let _ = writeln!(out, "    CONNECTS {}", endpoints.join(" "));
        let _ = writeln!(out, "    TIME_PER_UNIT {}", cl.time_per_data_unit().value());
        let _ = writeln!(out, "    POWER {}", cl.transfer_power().value());
        let _ = writeln!(out, "    STATIC_POWER {}", cl.static_power().value());
        out.push_str("}\n");
    }

    for (t_id, t) in system.omsm().transitions() {
        let _ = writeln!(
            out,
            "@TRANSITION {} FROM {} TO {} MAX_TIME {}",
            t_id.index(),
            t.from().index(),
            t.to().index(),
            t.max_time().value()
        );
    }
    out
}

fn parse_index(tokens: &[&str], line: usize) -> Result<usize, TgffError> {
    tokens
        .get(1)
        .and_then(|t| t.trim_end_matches('{').trim().parse().ok())
        .ok_or_else(|| TgffError::new(line, "section requires an index"))
}

fn parse_f64(tokens: &[&str], pos: usize, line: usize) -> Result<f64, TgffError> {
    tokens
        .get(pos)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| TgffError::new(line, format!("expected a number at position {pos}")))
}

fn expect_keyword(tokens: &[&str], pos: usize, kw: &str, line: usize) -> Result<(), TgffError> {
    if tokens.get(pos).copied() == Some(kw) {
        Ok(())
    } else {
        Err(TgffError::new(line, format!("expected `{kw}` at position {pos}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::ModeId;

    const SAMPLE: &str = r#"
# two-mode sample in the momsynth TGFF dialect
@TASK_GRAPH 0 {
    PERIOD 0.020
    PROBABILITY 0.9
    NAME standby
    TASK t0 TYPE 0
    TASK t1 TYPE 1
    ARC a0 FROM t0 TO t1 TYPE 64
    HARD_DEADLINE d0 ON t1 AT 0.015
}

@TASK_GRAPH 1 {
    PERIOD 0.040
    PROBABILITY 0.1
    TASK u0 TYPE 1
}

@PE 0 {
    KIND GPP
    STATIC_POWER 0.005
    DVS 3.3 0.8 1.2 3.3
    0 0.002 0.30 0
    1 0.004 0.25 0
}

@PE 1 {
    KIND ASIC
    STATIC_POWER 0.001
    AREA 600
    1 0.0005 0.01 240
}

@LINK 0 {
    CONNECTS 0 1
    TIME_PER_UNIT 1e-6
    POWER 0.002
    STATIC_POWER 0.0005
}

@TRANSITION 0 FROM 0 TO 1 MAX_TIME 0.010
@TRANSITION 1 FROM 1 TO 0 MAX_TIME 0.010
"#;

    #[test]
    fn parses_the_sample_end_to_end() {
        let system = parse_system("sample", SAMPLE).expect("sample parses");
        assert_eq!(system.omsm().mode_count(), 2);
        assert_eq!(system.arch().pe_count(), 2);
        assert_eq!(system.arch().cl_count(), 1);
        assert_eq!(system.omsm().transition_count(), 2);
        let standby = system.omsm().mode(ModeId::new(0));
        assert_eq!(standby.name(), "standby");
        assert!((standby.probability() - 0.9).abs() < 1e-12);
        assert_eq!(standby.graph().task_count(), 2);
        assert_eq!(standby.graph().comm_count(), 1);
        assert_eq!(
            standby.graph().task(TaskId::new(1)).deadline(),
            Some(Seconds::new(0.015))
        );
        // DVS on the GPP.
        assert!(system.arch().pe(PeId::new(0)).dvs().is_some());
        // The parsed system is schedulable end to end.
        let mapping = momsynth_sched::SystemMapping::from_fn(&system, |_| PeId::new(0));
        assert!(mapping.validate(&system).is_ok());
    }

    #[test]
    fn single_graph_defaults_to_probability_one() {
        let input = r#"
@TASK_GRAPH 0 {
    PERIOD 0.01
    TASK t0 TYPE 0
}
@PE 0 {
    KIND GPP
    0 0.001 0.1 0
}
"#;
        let system = parse_system("one", input).expect("parses");
        assert!((system.omsm().mode(ModeId::new(0)).probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_probability_on_multi_graph_is_an_error() {
        let input = r#"
@TASK_GRAPH 0 {
    PERIOD 0.01
    TASK t0 TYPE 0
}
@TASK_GRAPH 1 {
    PERIOD 0.01
    TASK u0 TYPE 0
}
@PE 0 {
    KIND GPP
    0 0.001 0.1 0
}
"#;
        let err = parse_system("bad", input).unwrap_err();
        assert!(err.message.contains("PROBABILITY"), "{err}");
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let input = "@TASK_GRAPH 0 {\n    BOGUS 1\n}\n";
        let err = parse_system("bad", input).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let input = "@TASK_GRAPH 0 {\n    PERIOD 0.01\n    TASK t0 TYPE 0\n    ARC a FROM t0 TO missing TYPE 1\n}\n@PE 0 {\n    KIND GPP\n    0 0.001 0.1 0\n}\n";
        let err = parse_system("bad", input).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn duplicate_tasks_and_unmatched_braces_are_rejected() {
        let input = "@TASK_GRAPH 0 {\n    PERIOD 0.01\n    TASK t TYPE 0\n    TASK t TYPE 0\n}\n@PE 0 {\n    KIND GPP\n    0 0.001 0.1 0\n}\n";
        let err = parse_system("bad", input).unwrap_err();
        assert!(err.message.contains("duplicate"));

        let err = parse_system("bad", "@TASK_GRAPH 0 {\n PERIOD 0.01\n").unwrap_err();
        assert!(err.message.contains("unterminated"));

        let err = parse_system("bad", "}\n").unwrap_err();
        assert!(err.message.contains("unmatched"));
    }

    #[test]
    fn hardware_rows_require_area() {
        let input = r#"
@TASK_GRAPH 0 {
    PERIOD 0.01
    TASK t0 TYPE 0
}
@PE 0 {
    KIND ASIC
    AREA 100
    0 0.001 0.1 0
}
"#;
        let err = parse_system("bad", input).unwrap_err();
        assert!(err.message.contains("non-zero area"), "{err}");
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(parse_system("x", "").is_err());
        assert!(parse_system("x", "# only a comment\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let input = "\n# header\n\n@TASK_GRAPH 0 { # trailing\n PERIOD 0.01 # p\n TASK t0 TYPE 0\n}\n@PE 0 {\n KIND GPP\n 0 0.001 0.1 0\n}\n";
        assert!(parse_system("ok", input).is_ok());
    }

    #[test]
    fn export_round_trips_through_import() {
        // mul9's structure must survive export -> import (names differ:
        // TGFF references types by index and loses the system name).
        let original = crate::suite::mul(9);
        let text = to_tgff(&original);
        let back = parse_system("mul9", &text).expect("export parses");
        assert_eq!(back.omsm().mode_count(), original.omsm().mode_count());
        assert_eq!(back.arch().pe_count(), original.arch().pe_count());
        assert_eq!(back.arch().cl_count(), original.arch().cl_count());
        assert_eq!(back.omsm().transition_count(), original.omsm().transition_count());
        for (mode, m) in original.omsm().modes() {
            let bm = back.omsm().mode(mode);
            assert_eq!(bm.graph().task_count(), m.graph().task_count());
            assert_eq!(bm.graph().comm_count(), m.graph().comm_count());
            assert!((bm.probability() - m.probability()).abs() < 1e-12);
            assert!((bm.graph().period().value() - m.graph().period().value()).abs() < 1e-15);
            for (t, task) in m.graph().tasks() {
                let bt = bm.graph().task(t);
                assert_eq!(bt.task_type(), task.task_type());
                assert_eq!(bt.deadline(), task.deadline());
            }
        }
        // Technology library entries survive exactly.
        for ty in original.tech().type_ids() {
            for (pe, imp) in original.tech().impls_of(ty) {
                let b = back.tech().impl_of(ty, pe).expect("impl survives");
                assert_eq!(b, imp);
            }
        }
        // DVS capabilities survive.
        for (pe, info) in original.arch().pes() {
            let b = back.arch().pe(pe);
            assert_eq!(b.kind(), info.kind());
            assert_eq!(b.dvs().is_some(), info.dvs().is_some());
            if let (Some(a), Some(c)) = (info.dvs(), b.dvs()) {
                assert_eq!(a.levels(), c.levels());
            }
        }
    }

    #[test]
    fn smartphone_round_trips_structurally() {
        let original = crate::smartphone::smartphone();
        let back =
            parse_system("phone", &to_tgff(&original)).expect("smartphone exports cleanly");
        assert_eq!(back.omsm().mode_count(), 8);
        assert_eq!(back.omsm().total_task_count(), original.omsm().total_task_count());
        assert_eq!(back.omsm().total_comm_count(), original.omsm().total_comm_count());
    }

    #[test]
    fn parsed_system_synthesises() {
        let system = parse_system("sample", SAMPLE).expect("parses");
        // Smoke: the imported system runs through scheduling end to end.
        let mapping = momsynth_sched::SystemMapping::from_fn(&system, |id| {
            system.candidate_pes(id)[0]
        });
        let alloc = momsynth_sched::CoreAllocation::minimal(&system, &mapping);
        for mode in system.omsm().mode_ids() {
            let s = momsynth_sched::schedule_mode(
                &system,
                mode,
                &mapping,
                &alloc,
                momsynth_sched::SchedulerOptions::default(),
            )
            .expect("schedules");
            assert!(s.makespan().value() > 0.0);
        }
    }
}
