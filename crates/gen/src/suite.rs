//! Seeded random benchmark generator: the `mul1`–`mul12` suite.
//!
//! The paper evaluates on 12 automatically generated examples with 3–5
//! operational modes of 8–32 tasks each, mapped onto 2–4 heterogeneous
//! PEs (some DVS-enabled) connected by 1–3 communication links. The
//! original examples were never published, so this module regenerates
//! workloads with exactly those published parameter ranges under fixed
//! seeds (the substitution is documented in `DESIGN.md`).
//!
//! Generated systems are guaranteed to admit at least one feasible
//! implementation: every task type is implementable on the first GPP and
//! each mode's period covers its serialised software execution there with
//! configurable slack.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use momsynth_model::ids::TaskTypeId;
use momsynth_model::units::{Cells, Seconds, Volts, Watts};
use momsynth_model::{
    ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind, System,
    TaskGraphBuilder, TechLibraryBuilder,
};

/// Parameters of one generated system.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Benchmark name (becomes the system name).
    pub name: String,
    /// RNG seed; equal parameters give identical systems.
    pub seed: u64,
    /// Number of operational modes.
    pub modes: usize,
    /// Inclusive range of tasks per mode.
    pub tasks_per_mode: (usize, usize),
    /// Number of distinct task types shared by all modes.
    pub type_pool: usize,
    /// Number of software PEs (GPPs); at least 1.
    pub software_pes: usize,
    /// Number of hardware PEs (alternating ASIC/FPGA).
    pub hardware_pes: usize,
    /// Number of communication links (the first connects all PEs).
    pub cls: usize,
    /// How many software PEs are DVS-enabled (from the front).
    pub dvs_software_pes: usize,
    /// How many hardware PEs are DVS-enabled (from the front).
    pub dvs_hardware_pes: usize,
    /// Mode period = serialised software time on GPP0 × this factor.
    pub slack_factor: f64,
    /// Probability of extra forward edges beyond the layered skeleton.
    pub edge_probability: f64,
    /// Probability that a sink task receives an individual deadline of
    /// `0.85 × period`.
    pub deadline_probability: f64,
}

impl GeneratorParams {
    /// Reasonable defaults matching the paper's ranges.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            modes: 4,
            tasks_per_mode: (8, 32),
            type_pool: 12,
            software_pes: 1,
            hardware_pes: 2,
            cls: 1,
            dvs_software_pes: 1,
            dvs_hardware_pes: 1,
            slack_factor: 1.25,
            edge_probability: 0.15,
            deadline_probability: 0.2,
        }
    }
}

fn standard_dvs() -> DvsCapability {
    DvsCapability::new(
        Volts::new(3.3),
        Volts::new(0.8),
        vec![Volts::new(1.2), Volts::new(1.8), Volts::new(2.4), Volts::new(3.3)],
    )
}

/// Generates a system from `params`. Deterministic in `params`.
///
/// # Panics
///
/// Panics if `params` is degenerate (zero modes, zero software PEs, an
/// empty task range or an empty type pool).
pub fn generate(params: &GeneratorParams) -> System {
    assert!(params.modes > 0, "at least one mode required");
    assert!(params.software_pes > 0, "at least one software PE required");
    assert!(params.type_pool > 0, "type pool must be non-empty");
    assert!(
        params.tasks_per_mode.0 >= 1 && params.tasks_per_mode.0 <= params.tasks_per_mode.1,
        "invalid tasks-per-mode range"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);

    // ---- Architecture ------------------------------------------------------
    let mut arch = ArchitectureBuilder::new();
    let mut pes = Vec::new();
    for i in 0..params.software_pes {
        // Alternate general-purpose processors and ASIPs.
        let kind = if i % 2 == 0 { PeKind::Gpp } else { PeKind::Asip };
        let mut pe = Pe::software(
            format!("{kind}{i}"),
            kind,
            Watts::from_milli(rng.gen_range(2.0..10.0)),
        );
        if i < params.dvs_software_pes {
            pe = pe.with_dvs(standard_dvs());
        }
        pes.push(arch.add_pe(pe));
    }
    for i in 0..params.hardware_pes {
        let kind = if i % 2 == 0 { PeKind::Asic } else { PeKind::Fpga };
        let capacity = Cells::new(rng.gen_range(500..1500));
        let mut pe = Pe::hardware(
            format!("{kind}{i}"),
            kind,
            capacity,
            Watts::from_milli(rng.gen_range(1.0..8.0)),
        );
        if kind.is_reconfigurable() {
            pe = pe.with_reconfig_time_per_cell(Seconds::from_micros(1.0));
        }
        if i < params.dvs_hardware_pes {
            pe = pe.with_dvs(standard_dvs());
        }
        pes.push(arch.add_pe(pe));
    }

    for c in 0..params.cls.max(1) {
        let endpoints = if c == 0 {
            pes.clone()
        } else {
            // A random subset of at least two PEs.
            let mut subset: Vec<_> = pes
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.6))
                .collect();
            while subset.len() < 2 {
                let pe = pes[rng.gen_range(0..pes.len())];
                if !subset.contains(&pe) {
                    subset.push(pe);
                }
            }
            subset
        };
        arch.add_cl(Cl::bus(
            format!("BUS{c}"),
            endpoints,
            Seconds::from_micros(rng.gen_range(0.5..2.0)),
            Watts::from_milli(rng.gen_range(1.0..5.0)),
            Watts::from_milli(rng.gen_range(0.5..3.0)),
        ))
        .expect("generated links are valid");
    }

    // ---- Technology library -----------------------------------------------
    let mut tech = TechLibraryBuilder::new();
    let mut sw_time_on_gpp0 = Vec::with_capacity(params.type_pool);
    for t in 0..params.type_pool {
        let ty = tech.add_type(format!("T{t}"));
        let base_ms = rng.gen_range(5.0..40.0);
        let base_mw = rng.gen_range(50.0..500.0);
        for (i, &pe) in pes.iter().take(params.software_pes).enumerate() {
            // Every type runs on GPP0; other GPPs support it with p = 0.8.
            if i > 0 && !rng.gen_bool(0.8) {
                continue;
            }
            let scale = rng.gen_range(0.7..1.3);
            let time = Seconds::from_millis(base_ms * scale);
            if i == 0 {
                sw_time_on_gpp0.push(time);
            }
            tech.set_impl(
                ty,
                pe,
                Implementation::software(time, Watts::from_milli(base_mw * scale)),
            );
        }
        for &pe in pes.iter().skip(params.software_pes) {
            // Hardware implementation with p = 0.7; 5–100x faster than SW.
            if !rng.gen_bool(0.7) {
                continue;
            }
            let speedup = rng.gen_range(5.0..100.0);
            tech.set_impl(
                ty,
                pe,
                Implementation::hardware(
                    Seconds::from_millis(base_ms / speedup),
                    Watts::from_milli(rng.gen_range(1.0..20.0)),
                    Cells::new(rng.gen_range(100..350)),
                ),
            );
        }
    }
    let tech = tech.build();

    // ---- Modes --------------------------------------------------------------
    // Skewed execution probabilities: raising uniform samples to the 4th
    // power concentrates mass in few modes, mirroring real usage profiles
    // (the paper's phone spends 74% of its time in one mode).
    let raw: Vec<f64> = (0..params.modes).map(|_| rng.gen_range(0.05f64..1.0).powi(4)).collect();
    let total: f64 = raw.iter().sum();

    let mut omsm = OmsmBuilder::new();
    let mut mode_ids = Vec::with_capacity(params.modes);
    #[allow(clippy::needless_range_loop)] // m indexes both raw and mode_ids
    for m in 0..params.modes {
        let n = rng.gen_range(params.tasks_per_mode.0..=params.tasks_per_mode.1);
        let types: Vec<TaskTypeId> = (0..n)
            .map(|_| TaskTypeId::new(rng.gen_range(0..params.type_pool)))
            .collect();
        let serial: Seconds = types.iter().map(|ty| sw_time_on_gpp0[ty.index()]).sum();
        let period = serial * params.slack_factor;

        let mut g = TaskGraphBuilder::new(format!("{}_m{m}", params.name), period);
        let tasks: Vec<_> = types
            .iter()
            .enumerate()
            .map(|(i, &ty)| g.add_task(format!("t{i}"), ty))
            .collect();

        // Layered skeleton: width 2–4, every non-first-layer task gets at
        // least one predecessor from the previous layer.
        let width = rng.gen_range(2..=4usize);
        for (i, &task) in tasks.iter().enumerate() {
            let layer = i / width;
            if layer == 0 {
                continue;
            }
            let prev_start = (layer - 1) * width;
            let prev_end = (layer * width).min(tasks.len());
            let pred = tasks[rng.gen_range(prev_start..prev_end)];
            g.add_comm(pred, task, rng.gen_range(10.0..500.0))
                .expect("layered edges are forward");
            // Occasional second predecessor.
            if rng.gen_bool(params.edge_probability) {
                let pred2 = tasks[rng.gen_range(0..prev_end)];
                if pred2 != task && pred2 != pred {
                    let _ = g.add_comm(pred2, task, rng.gen_range(10.0..500.0));
                }
            }
        }
        // Individual deadlines on some sinks (tasks in the last layer).
        let last_layer_start = (tasks.len().saturating_sub(1) / width) * width;
        for &task in &tasks[last_layer_start..] {
            if rng.gen_bool(params.deadline_probability.clamp(0.0, 1.0)) {
                g.set_deadline(task, period * 0.85).expect("task exists");
            }
        }
        mode_ids.push(omsm.add_mode(
            format!("mode{m}"),
            raw[m] / total,
            g.build().expect("generated graphs are valid"),
        ));
    }

    // Transitions: a ring plus a few random chords.
    for m in 0..params.modes {
        if params.modes < 2 {
            break;
        }
        let next = (m + 1) % params.modes;
        omsm.add_transition(
            mode_ids[m],
            mode_ids[next],
            Seconds::from_millis(rng.gen_range(20.0..80.0)),
        )
        .expect("ring transitions are valid");
    }
    for _ in 0..params.modes {
        let a = rng.gen_range(0..params.modes);
        let b = rng.gen_range(0..params.modes);
        if a != b {
            let _ = omsm.add_transition(
                mode_ids[a],
                mode_ids[b],
                Seconds::from_millis(rng.gen_range(20.0..80.0)),
            );
        }
    }

    System::new(
        params.name.clone(),
        omsm.build().expect("generated OMSM is valid"),
        arch.build().expect("generated architecture is valid"),
        tech,
    )
    .expect("generated systems are valid")
}

/// Parameters of benchmark `mulN` (`1 ≤ n ≤ 12`), matching the paper's
/// published ranges (modes per example, 8–32 tasks, 2–4 PEs, 1–3 CLs).
///
/// # Panics
///
/// Panics unless `1 <= n && n <= 12`.
pub fn mul_params(n: usize) -> GeneratorParams {
    assert!((1..=12).contains(&n), "mul benchmarks are mul1..mul12");
    // (modes, sw PEs, hw PEs, cls, dvs sw, dvs hw, tasks lo, tasks hi)
    type Spec = (usize, usize, usize, usize, usize, usize, usize, usize);
    const SPECS: [Spec; 12] = [
        (4, 1, 2, 1, 1, 1, 8, 16),  // mul1
        (4, 1, 1, 1, 1, 0, 8, 12),  // mul2
        (5, 2, 2, 2, 1, 1, 16, 32), // mul3
        (5, 1, 2, 1, 1, 1, 12, 24), // mul4
        (3, 1, 2, 2, 1, 1, 8, 20),  // mul5
        (4, 1, 2, 1, 1, 2, 8, 16),  // mul6
        (4, 2, 2, 2, 2, 1, 10, 20), // mul7
        (4, 2, 2, 3, 1, 1, 16, 32), // mul8
        (4, 1, 1, 1, 1, 1, 8, 12),  // mul9
        (5, 2, 2, 2, 1, 2, 16, 32), // mul10
        (3, 1, 2, 1, 1, 1, 8, 16),  // mul11
        (4, 2, 2, 2, 2, 2, 12, 24), // mul12
    ];
    let (modes, sw, hw, cls, dvs_sw, dvs_hw, lo, hi) = SPECS[n - 1];
    let mut p = GeneratorParams::new(format!("mul{n}"), 7919 * n as u64);
    p.modes = modes;
    p.software_pes = sw;
    p.hardware_pes = hw;
    p.cls = cls;
    p.dvs_software_pes = dvs_sw;
    p.dvs_hardware_pes = dvs_hw;
    p.tasks_per_mode = (lo, hi);
    p.type_pool = (hi * 2 / 3).max(6);
    p
}

/// Generates benchmark `mulN`.
///
/// # Panics
///
/// Panics unless `1 <= n && n <= 12`.
pub fn mul(n: usize) -> System {
    generate(&mul_params(n))
}

/// Generates the full 12-benchmark suite.
pub fn mul_suite() -> Vec<System> {
    (1..=12).map(mul).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::PeId;
    use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

    #[test]
    fn generation_is_deterministic() {
        let a = mul(1);
        let b = mul(1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorParams::new("x", 1));
        let b = generate(&GeneratorParams::new("x", 2));
        assert_ne!(a, b);
    }

    #[test]
    fn suite_matches_paper_parameter_ranges() {
        for (i, system) in mul_suite().into_iter().enumerate() {
            let n = i + 1;
            let modes = system.omsm().mode_count();
            assert!((3..=5).contains(&modes), "mul{n}: {modes} modes");
            for (_, m) in system.omsm().modes() {
                let t = m.graph().task_count();
                assert!((8..=32).contains(&t), "mul{n}: {t} tasks in a mode");
            }
            let pes = system.arch().pe_count();
            assert!((2..=4).contains(&pes), "mul{n}: {pes} PEs");
            let cls = system.arch().cl_count();
            assert!((1..=3).contains(&cls), "mul{n}: {cls} CLs");
        }
    }

    #[test]
    fn probabilities_are_skewed_and_normalised() {
        for system in mul_suite() {
            let probs: Vec<f64> =
                system.omsm().modes().map(|(_, m)| m.probability()).collect();
            let sum: f64 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            // Skew: the largest probability clearly dominates the smallest.
            let max = probs.iter().cloned().fold(0.0, f64::max);
            let min = probs.iter().cloned().fold(1.0, f64::min);
            assert!(max / min > 1.5, "{}: probabilities too uniform {probs:?}", system.name());
        }
    }

    #[test]
    fn first_bus_connects_everything() {
        for system in mul_suite() {
            let pes: Vec<_> = system.arch().pe_ids().collect();
            for &a in &pes {
                for &b in &pes {
                    assert!(system.arch().connected(a, b));
                }
            }
        }
    }

    #[test]
    fn trivial_single_gpp_mapping_is_feasible() {
        for system in mul_suite() {
            let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
            assert!(mapping.validate(&system).is_ok(), "{}", system.name());
            let alloc = CoreAllocation::minimal(&system, &mapping);
            for mode in system.omsm().mode_ids() {
                let s = schedule_mode(
                    &system,
                    mode,
                    &mapping,
                    &alloc,
                    SchedulerOptions::default(),
                )
                .expect("single-GPP mapping schedules");
                assert!(
                    s.is_timing_feasible(system.omsm().mode(mode).graph()),
                    "{} mode {mode} infeasible on single GPP",
                    system.name()
                );
            }
        }
    }

    #[test]
    fn every_type_used_is_implementable_on_gpp0() {
        for system in mul_suite() {
            for (_, m) in system.omsm().modes() {
                for ty in m.graph().used_types() {
                    assert!(system.tech().impl_of(ty, PeId::new(0)).is_some());
                }
            }
        }
    }

    #[test]
    fn graphs_have_edges_and_shared_types() {
        for system in mul_suite() {
            assert!(system.omsm().total_comm_count() > 0, "{}", system.name());
            assert!(
                !system.shared_types().is_empty(),
                "{} has no cross-mode shared types",
                system.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "mul1..mul12")]
    fn mul_rejects_out_of_range() {
        let _ = mul(13);
    }

    #[test]
    fn generated_systems_lint_without_hard_problems() {
        // Software-only types are expected (the library is deliberately
        // sparse) and single-task modes can occur at the small end of the
        // range; anything else — unreachable modes, impossible periods,
        // unusable hardware — would make the suite unfair to the flows.
        for system in mul_suite() {
            for w in momsynth_model::lint::lint_system(&system) {
                assert!(
                    matches!(
                        w,
                        momsynth_model::lint::LintWarning::SoftwareOnlyType { .. }
                            | momsynth_model::lint::LintWarning::ProbableStub { .. }
                    ),
                    "{}: unexpected lint {w}",
                    system.name()
                );
            }
        }
    }
}
