//! The paper's motivational examples as executable models.
//!
//! * **Example 1 (Fig. 2)** — two modes with probabilities 0.1/0.9 on a
//!   GPP + ASIC architecture, the six-row technology table of Section 2.3
//!   reproduced to the µWs. The two hand-derived mappings of Fig. 2b/2c
//!   evaluate to the paper's exact energies (26.7158 mWs vs 15.7423 mWs,
//!   a 41% reduction).
//! * **Example 2 (Fig. 3)** — resource sharing vs multiple task
//!   implementations: implementing the shared type twice (hardware for
//!   one mode, software for the other) lets the hardware component and
//!   bus shut down in the mode that no longer needs them.
//!
//! All periods are one second and static/communication power is zero in
//! Example 1, so the reported average power in mW is numerically the
//! paper's per-activation energy in mWs.

use momsynth_model::ids::PeId;
use momsynth_model::units::{Cells, Seconds, Volts, Watts};
use momsynth_model::{
    ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind, System,
    TaskGraphBuilder, TechLibraryBuilder,
};
use momsynth_sched::SystemMapping;

/// The software PE of both examples.
pub const PE0: PeId = PeId::new(0);
/// The hardware PE (ASIC) of both examples.
pub const PE1: PeId = PeId::new(1);

/// One row of the Section 2.3 technology table.
struct TypeRow {
    name: &'static str,
    sw_time_ms: f64,
    sw_energy_mws: f64,
    hw_time_ms: f64,
    hw_energy_mws: f64,
    area: u64,
}

/// The exact table of Section 2.3 (energies converted to powers).
const TABLE: [TypeRow; 6] = [
    TypeRow { name: "A", sw_time_ms: 20.0, sw_energy_mws: 10.0, hw_time_ms: 2.0, hw_energy_mws: 0.010, area: 240 },
    TypeRow { name: "B", sw_time_ms: 28.0, sw_energy_mws: 14.0, hw_time_ms: 2.2, hw_energy_mws: 0.012, area: 300 },
    TypeRow { name: "C", sw_time_ms: 32.0, sw_energy_mws: 16.0, hw_time_ms: 1.6, hw_energy_mws: 0.023, area: 275 },
    TypeRow { name: "D", sw_time_ms: 26.0, sw_energy_mws: 13.0, hw_time_ms: 3.1, hw_energy_mws: 0.047, area: 245 },
    TypeRow { name: "E", sw_time_ms: 30.0, sw_energy_mws: 15.0, hw_time_ms: 1.8, hw_energy_mws: 0.015, area: 210 },
    TypeRow { name: "F", sw_time_ms: 24.0, sw_energy_mws: 14.0, hw_time_ms: 2.2, hw_energy_mws: 0.032, area: 280 },
];

fn table_tech(arch_cpu: PeId, arch_hw: PeId) -> momsynth_model::TechLibrary {
    let mut tech = TechLibraryBuilder::new();
    for row in &TABLE {
        let ty = tech.add_type(row.name);
        let sw_time = Seconds::from_millis(row.sw_time_ms);
        let sw_power = Watts::from_milli(row.sw_energy_mws / row.sw_time_ms * 1000.0);
        tech.set_impl(ty, arch_cpu, Implementation::software(sw_time, sw_power));
        let hw_time = Seconds::from_millis(row.hw_time_ms);
        let hw_power = Watts::from_milli(row.hw_energy_mws / row.hw_time_ms * 1000.0);
        tech.set_impl(
            ty,
            arch_hw,
            Implementation::hardware(hw_time, hw_power, Cells::new(row.area)),
        );
    }
    tech.build()
}

/// Builds the Fig. 2 system: two modes (`Ψ₁ = 0.1`, `Ψ₂ = 0.9`), tasks
/// `τ1..τ3` of types A/B/C in mode `O1` and `τ4..τ6` of types D/E/F in
/// mode `O2`, mapped onto a GPP (PE0) and a 600-cell ASIC (PE1) joined by
/// a bus (CL0).
///
/// # Examples
///
/// ```
/// let system = momsynth_gen::examples::example1_system();
/// assert_eq!(system.omsm().mode_count(), 2);
/// assert_eq!(system.arch().pe_count(), 2);
/// ```
pub fn example1_system() -> System {
    let mut arch = ArchitectureBuilder::new();
    let cpu = arch.add_pe(Pe::software("PE0", PeKind::Gpp, Watts::ZERO));
    let hw = arch.add_pe(Pe::hardware("PE1", PeKind::Asic, Cells::new(600), Watts::ZERO));
    arch.add_cl(Cl::bus("CL0", vec![cpu, hw], Seconds::ZERO, Watts::ZERO, Watts::ZERO))
        .expect("bus endpoints exist");
    let tech = table_tech(cpu, hw);

    let period = Seconds::new(1.0);
    let mut g1 = TaskGraphBuilder::new("O1", period);
    for (i, ty) in [0usize, 1, 2].iter().enumerate() {
        g1.add_task(format!("tau{}", i + 1), momsynth_model::ids::TaskTypeId::new(*ty));
    }
    let mut g2 = TaskGraphBuilder::new("O2", period);
    for (i, ty) in [3usize, 4, 5].iter().enumerate() {
        g2.add_task(format!("tau{}", i + 4), momsynth_model::ids::TaskTypeId::new(*ty));
    }

    let mut omsm = OmsmBuilder::new();
    let m1 = omsm.add_mode("O1", 0.1, g1.build().expect("valid graph"));
    let m2 = omsm.add_mode("O2", 0.9, g2.build().expect("valid graph"));
    omsm.add_transition(m1, m2, Seconds::new(0.1)).expect("valid transition");
    omsm.add_transition(m2, m1, Seconds::new(0.1)).expect("valid transition");

    System::new(
        "example1",
        omsm.build().expect("valid OMSM"),
        arch.build().expect("valid architecture"),
        tech,
    )
    .expect("example 1 is a valid system")
}

/// The Fig. 2b mapping — optimal when execution probabilities are
/// *neglected*: the highest-energy tasks (`τ3`, `τ5`) go to hardware.
/// Total energy 26.7158 mWs.
pub fn example1_mapping_neglecting() -> SystemMapping {
    SystemMapping::from_vecs(vec![vec![PE0, PE0, PE1], vec![PE0, PE1, PE0]])
}

/// The Fig. 2c mapping — optimal under `Ψ = (0.1, 0.9)`: mode `O1` stays
/// pure software (PE1 and CL0 can shut down), mode `O2` uses hardware for
/// `τ5`, `τ6`. Total energy 15.7423 mWs — 41% lower.
pub fn example1_mapping_aware() -> SystemMapping {
    SystemMapping::from_vecs(vec![vec![PE0, PE0, PE0], vec![PE0, PE1, PE1]])
}

/// Builds the Fig. 3 system: type A appears in both modes (`τ1` in `O1`,
/// `τ4` in `O2`), enabling hardware sharing. Static powers are non-zero
/// here — that is the whole point: multiple implementations of type A
/// allow PE1 and CL0 to power off during `O2`.
///
/// Mode probabilities: `Ψ₁ = 0.4`, `Ψ₂ = 0.6`.
pub fn example2_system() -> System {
    let mut arch = ArchitectureBuilder::new();
    let cpu = arch.add_pe(Pe::software("PE0", PeKind::Gpp, Watts::from_milli(1.0)));
    // Static powers are sized so that shutting PE1+CL0 down during O2
    // outweighs implementing the shared type A in software there — the
    // trade-off Fig. 3 illustrates.
    let hw = arch.add_pe(
        Pe::hardware("PE1", PeKind::Asic, Cells::new(600), Watts::from_milli(12.0)).with_dvs(
            DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(1.2), Volts::new(2.1), Volts::new(3.3)],
            ),
        ),
    );
    arch.add_cl(Cl::bus(
        "CL0",
        vec![cpu, hw],
        Seconds::from_micros(5.0),
        Watts::from_milli(2.0),
        Watts::from_milli(2.0),
    ))
    .expect("bus endpoints exist");
    let tech = table_tech(cpu, hw);

    let period = Seconds::new(1.0);
    // O1: τ1 (A), τ2 (B), τ3 (C); O2: τ4 (A), τ5 (E), τ6 (F).
    let mut g1 = TaskGraphBuilder::new("O1", period);
    let t1 = g1.add_task("tau1", momsynth_model::ids::TaskTypeId::new(0));
    let t2 = g1.add_task("tau2", momsynth_model::ids::TaskTypeId::new(1));
    let t3 = g1.add_task("tau3", momsynth_model::ids::TaskTypeId::new(2));
    g1.add_comm(t1, t2, 64.0).expect("valid edge");
    g1.add_comm(t2, t3, 64.0).expect("valid edge");
    let mut g2 = TaskGraphBuilder::new("O2", period);
    let t4 = g2.add_task("tau4", momsynth_model::ids::TaskTypeId::new(0));
    let t5 = g2.add_task("tau5", momsynth_model::ids::TaskTypeId::new(4));
    let t6 = g2.add_task("tau6", momsynth_model::ids::TaskTypeId::new(5));
    g2.add_comm(t4, t5, 64.0).expect("valid edge");
    g2.add_comm(t5, t6, 64.0).expect("valid edge");

    let mut omsm = OmsmBuilder::new();
    let m1 = omsm.add_mode("O1", 0.4, g1.build().expect("valid graph"));
    let m2 = omsm.add_mode("O2", 0.6, g2.build().expect("valid graph"));
    omsm.add_transition(m1, m2, Seconds::new(0.1)).expect("valid transition");
    omsm.add_transition(m2, m1, Seconds::new(0.1)).expect("valid transition");

    System::new(
        "example2",
        omsm.build().expect("valid OMSM"),
        arch.build().expect("valid architecture"),
        tech,
    )
    .expect("example 2 is a valid system")
}

/// The Fig. 3b mapping — resource sharing: both type-A tasks use the same
/// hardware core, so PE1 (and the bus) must stay powered in both modes.
pub fn example2_mapping_shared() -> SystemMapping {
    SystemMapping::from_vecs(vec![vec![PE1, PE0, PE0], vec![PE1, PE0, PE0]])
}

/// The Fig. 3c mapping — multiple implementations: `τ4` additionally
/// implemented in software, so PE1 and CL0 shut down during `O2`.
pub fn example2_mapping_multiple() -> SystemMapping {
    SystemMapping::from_vecs(vec![vec![PE1, PE0, PE0], vec![PE0, PE0, PE0]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::ModeId;
    use momsynth_power::{mode_power, power_report, ModeImplementation};
    use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions};

    fn report(system: &System, mapping: &SystemMapping) -> momsynth_power::PowerReport {
        let alloc = CoreAllocation::minimal(system, mapping);
        let schedules: Vec<_> = system
            .omsm()
            .mode_ids()
            .map(|m| {
                schedule_mode(system, m, mapping, &alloc, SchedulerOptions::default())
                    .expect("examples schedule cleanly")
            })
            .collect();
        let imps: Vec<ModeImplementation> =
            schedules.iter().map(ModeImplementation::nominal).collect();
        power_report(system, &imps)
    }

    #[test]
    fn example1_neglecting_matches_paper_exactly() {
        let system = example1_system();
        let r = report(&system, &example1_mapping_neglecting());
        // 0.1·(10+14+0.023) + 0.9·(13+0.015+14) = 26.7158 mWs.
        assert!(
            (r.average.as_milli() - 26.7158).abs() < 1e-9,
            "got {}",
            r.average.as_milli()
        );
    }

    #[test]
    fn example1_aware_matches_paper_exactly() {
        let system = example1_system();
        let r = report(&system, &example1_mapping_aware());
        // 0.1·(10+14+16) + 0.9·(13+0.015+0.032) = 15.7423 mWs.
        assert!(
            (r.average.as_milli() - 15.7423).abs() < 1e-9,
            "got {}",
            r.average.as_milli()
        );
    }

    #[test]
    fn example1_reduction_is_41_percent() {
        let system = example1_system();
        let neglect = report(&system, &example1_mapping_neglecting());
        let aware = report(&system, &example1_mapping_aware());
        let reduction = aware.reduction_vs(&neglect);
        assert!((reduction - 41.0).abs() < 0.2, "reduction {reduction}%");
    }

    #[test]
    fn example1_per_mode_energies_match_paper() {
        let system = example1_system();
        let mapping = example1_mapping_neglecting();
        let alloc = CoreAllocation::minimal(&system, &mapping);
        let s0 = schedule_mode(&system, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())
            .unwrap();
        let mp = mode_power(&system, ModeImplementation::nominal(&s0));
        assert!((mp.task_energy.as_milli_joules() - 24.023).abs() < 1e-9);
    }

    #[test]
    fn example1_aware_mapping_shuts_down_hardware_in_mode_one() {
        let system = example1_system();
        let r = report(&system, &example1_mapping_aware());
        assert_eq!(r.modes[0].active_pes, vec![PE0]);
        assert!(r.modes[0].active_cls.is_empty());
        assert_eq!(r.modes[1].active_pes, vec![PE0, PE1]);
    }

    #[test]
    fn example1_both_mappings_fit_the_asic() {
        let system = example1_system();
        for mapping in [example1_mapping_neglecting(), example1_mapping_aware()] {
            let alloc = CoreAllocation::minimal(&system, &mapping);
            assert!(alloc.static_area(&system, PE1) <= Cells::new(600));
            assert!(mapping.validate(&system).is_ok());
        }
    }

    #[test]
    fn example2_multiple_implementations_enable_shutdown() {
        let system = example2_system();
        let shared = report(&system, &example2_mapping_shared());
        let multiple = report(&system, &example2_mapping_multiple());
        // Sharing keeps PE1 alive in both modes…
        assert!(shared.modes[1].active_pes.contains(&PE1));
        // …while the multiple-implementation mapping powers it off in O2.
        assert_eq!(multiple.modes[1].active_pes, vec![PE0]);
        assert!(multiple.modes[1].active_cls.is_empty());
        // The shut-down saves static power overall.
        assert!(
            multiple.average < shared.average,
            "multiple {} should beat shared {}",
            multiple.average,
            shared.average
        );
    }

    #[test]
    fn example2_mappings_validate() {
        let system = example2_system();
        assert!(example2_mapping_shared().validate(&system).is_ok());
        assert!(example2_mapping_multiple().validate(&system).is_ok());
    }
}
