//! The paper's Fig. 5 transformation: parallel hardware-core activity on a
//! single-rail component rewritten as equivalent sequential virtual tasks.
//!
//! All cores on one hardware PE share a single supply rail (adding one
//! DC/DC converter per core would cost area and power), so scaling the
//! voltage affects every core simultaneously. To compute a voltage
//! schedule, the potentially parallel core executions are merged into
//! *virtual tasks*: transitively overlapping executions form one virtual
//! task whose span is their union and whose energy is their sum. The
//! resulting sequence behaves like software tasks and can be scaled with
//! the same PV-DVS machinery; the chosen stretch is then mapped back onto
//! every member. The transformation is virtual — it only drives voltage
//! selection and never changes the real implementation.

use momsynth_model::ids::{PeId, TaskId};
use momsynth_model::units::{Joules, Seconds};
use momsynth_model::System;
use momsynth_sched::Schedule;

/// A merged group of transitively overlapping hardware executions.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualTask {
    /// Member tasks, ordered by scheduled start time.
    pub members: Vec<TaskId>,
    /// Earliest member start.
    pub start: Seconds,
    /// Latest member finish.
    pub end: Seconds,
    /// Total nominal dynamic energy of all members.
    pub energy: Joules,
}

impl VirtualTask {
    /// The virtual task's nominal duration (`end − start`).
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }

    /// Equivalent constant power over the span (`energy / duration`).
    ///
    /// Returns zero power for a zero-length span.
    pub fn mean_power(&self) -> momsynth_model::units::Watts {
        if self.duration().value() <= 0.0 {
            momsynth_model::units::Watts::ZERO
        } else {
            self.energy / self.duration()
        }
    }
}

/// Merges the scheduled executions on hardware PE `pe` into virtual tasks.
///
/// Executions whose time intervals overlap (transitively, strict overlap —
/// back-to-back executions stay separate) form one virtual task. The
/// result is ordered by start time and its spans are pairwise disjoint.
///
/// # Panics
///
/// Panics if `schedule` does not belong to a mode of `system`, or if a
/// member task has no implementation on `pe` (both indicate caller bugs —
/// schedules produced by `momsynth-sched` are always consistent).
pub fn virtual_tasks(system: &System, schedule: &Schedule, pe: PeId) -> Vec<VirtualTask> {
    let graph = system.omsm().mode(schedule.mode()).graph();
    let mut entries: Vec<(TaskId, Seconds, Seconds)> = schedule
        .tasks()
        .filter(|e| e.pe == pe)
        .map(|e| (e.task, e.start, e.finish()))
        .collect();
    entries.sort_by(|a, b| a.1.value().total_cmp(&b.1.value()).then(a.0.cmp(&b.0)));

    let mut groups: Vec<VirtualTask> = Vec::new();
    for (task, start, finish) in entries {
        let energy = {
            let ty = graph.task(task).task_type();
            system
                .tech()
                .impl_of(ty, pe)
                .expect("scheduled task has an implementation on its PE")
                .energy()
        };
        match groups.last_mut() {
            Some(last) if start.value() < last.end.value() - 1e-15 => {
                last.members.push(task);
                last.end = last.end.max(finish);
                last.energy += energy;
            }
            _ => groups.push(VirtualTask { members: vec![task], start, end: finish, energy }),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{ClId, CommId, ModeId, TaskTypeId};
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use momsynth_sched::{ActivityId, ResourceKey, ScheduledTask};

    /// System with 5 independent HW tasks of two types (cores), mirroring
    /// Fig. 5's two-core scenario.
    fn fig5_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let t0 = tech.add_type("core0");
        let t1 = tech.add_type("core1");
        let mut arch = ArchitectureBuilder::new();
        let _cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(1000), Watts::ZERO));
        for (ty, t_ms, p_mw) in [(t0, 2.0, 10.0), (t1, 3.0, 20.0)] {
            tech.set_impl(
                ty,
                hw,
                Implementation::hardware(
                    Seconds::from_millis(t_ms),
                    Watts::from_milli(p_mw),
                    Cells::new(100),
                ),
            );
        }
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        for i in 0..5 {
            g.add_task(format!("t{i}"), if i % 2 == 0 { t0 } else { t1 });
        }
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("fig5", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    /// Hand-built schedule:
    /// core0: t0 @ 0..2, t2 @ 5..7, t4 @ 7..9
    /// core1: t1 @ 1..4, t3 @ 6..9
    /// Overlap groups: {t0,t1}, {t2,t3,t4}.
    fn fig5_schedule() -> Schedule {
        let hw = PeId::new(1);
        let e = |task: usize, ty: usize, inst: usize, start_ms: f64, dur_ms: f64| ScheduledTask {
            task: TaskId::new(task),
            pe: hw,
            resource: ResourceKey::HwCore(hw, TaskTypeId::new(ty), inst),
            start: Seconds::from_millis(start_ms),
            exec_time: Seconds::from_millis(dur_ms),
        };
        let tasks = vec![
            e(0, 0, 0, 0.0, 2.0),
            e(1, 1, 0, 1.0, 3.0),
            e(2, 0, 0, 5.0, 2.0),
            e(3, 1, 0, 6.0, 3.0),
            e(4, 0, 0, 7.0, 2.0),
        ];
        let seqs = vec![
            (
                ResourceKey::HwCore(hw, TaskTypeId::new(0), 0),
                vec![
                    ActivityId::Task(TaskId::new(0)),
                    ActivityId::Task(TaskId::new(2)),
                    ActivityId::Task(TaskId::new(4)),
                ],
            ),
            (
                ResourceKey::HwCore(hw, TaskTypeId::new(1), 0),
                vec![ActivityId::Task(TaskId::new(1)), ActivityId::Task(TaskId::new(3))],
            ),
        ];
        Schedule::from_parts(ModeId::new(0), tasks, vec![], seqs)
    }

    #[test]
    fn overlapping_executions_merge() {
        let sys = fig5_system();
        let groups = virtual_tasks(&sys, &fig5_schedule(), PeId::new(1));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, vec![TaskId::new(0), TaskId::new(1)]);
        assert_eq!(
            groups[1].members,
            vec![TaskId::new(2), TaskId::new(3), TaskId::new(4)]
        );
    }

    #[test]
    fn group_spans_and_energies_accumulate() {
        let sys = fig5_system();
        let groups = virtual_tasks(&sys, &fig5_schedule(), PeId::new(1));
        // Group 0 spans 0..4 ms; energy = 2ms*10mW + 3ms*20mW = 80 uJ.
        assert_eq!(groups[0].start, Seconds::ZERO);
        assert!((groups[0].end.as_millis() - 4.0).abs() < 1e-9);
        assert!((groups[0].energy.as_milli_joules() - 0.08).abs() < 1e-12);
        assert!((groups[0].duration().as_millis() - 4.0).abs() < 1e-9);
        assert!((groups[0].mean_power().as_milli() - 20.0).abs() < 1e-9);
        // Group 1 spans 5..9 ms; energy = 2*10 + 3*20 + 2*10 uJ = 100 uJ.
        assert!((groups[1].start.as_millis() - 5.0).abs() < 1e-9);
        assert!((groups[1].end.as_millis() - 9.0).abs() < 1e-9);
        assert!((groups[1].energy.as_milli_joules() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn back_to_back_executions_stay_separate() {
        // t4 starts exactly when t2 ends on core0 — but t3 (6..9) bridges
        // them; remove t3 and they must split into three groups.
        let sys = fig5_system();
        let hw = PeId::new(1);
        let mk = |task: usize, ty: usize, start_ms: f64, dur_ms: f64| ScheduledTask {
            task: TaskId::new(task),
            pe: hw,
            resource: ResourceKey::HwCore(hw, TaskTypeId::new(ty), 0),
            start: Seconds::from_millis(start_ms),
            exec_time: Seconds::from_millis(dur_ms),
        };
        let tasks = vec![
            mk(0, 0, 0.0, 2.0),
            mk(1, 1, 2.0, 3.0),
            mk(2, 0, 5.0, 2.0),
            mk(3, 1, 20.0, 3.0),
            mk(4, 0, 7.0, 2.0),
        ];
        let s = Schedule::from_parts(ModeId::new(0), tasks, vec![], vec![]);
        let groups = virtual_tasks(&sys, &s, hw);
        assert_eq!(groups.len(), 5);
    }

    #[test]
    fn other_pe_tasks_are_ignored() {
        let sys = fig5_system();
        let groups = virtual_tasks(&sys, &fig5_schedule(), PeId::new(0));
        assert!(groups.is_empty());
    }

    #[test]
    fn groups_are_disjoint_and_ordered() {
        let sys = fig5_system();
        let groups = virtual_tasks(&sys, &fig5_schedule(), PeId::new(1));
        for pair in groups.windows(2) {
            assert!(pair[0].end.value() <= pair[1].start.value() + 1e-15);
        }
    }

    #[test]
    fn zero_duration_mean_power_is_zero() {
        let v = VirtualTask {
            members: vec![],
            start: Seconds::ZERO,
            end: Seconds::ZERO,
            energy: Joules::new(1.0),
        };
        assert_eq!(v.mean_power(), Watts::ZERO);
        let _ = ClId::new(0);
        let _ = CommId::new(0);
    }
}
