//! PV-DVS: power-variation-driven voltage scaling on a static schedule.
//!
//! This is the voltage-scaling substrate of the paper's reference \[10\] extended, as in
//! the paper's Section 4.2, to hardware components: given a mode's static
//! [`Schedule`], the scaler distributes the schedule's slack over the
//! scalable activities, always giving the next time quantum to the
//! activity whose extension saves the most energy, then snaps each
//! extension to the PE's discrete supply levels.
//!
//! The constraint graph is rebuilt from the schedule itself: precedence
//! edges from the task graph (through remote communications where they
//! exist) plus resource-order edges from the per-resource sequences.
//! Activities on single-rail DVS hardware are first merged into virtual
//! tasks (see [`crate::hw_transform`]) so all cores scale together.

use std::collections::BTreeSet;

use momsynth_model::arch::DvsCapability;
use momsynth_model::ids::{CommId, TaskId};
use momsynth_model::units::{Joules, Seconds};
use momsynth_model::System;
use momsynth_sched::{ActivityId, Schedule, ScheduledComm, ScheduledTask};

use crate::hw_transform::virtual_tasks;
use crate::voltage::VoltageModel;
use crate::vschedule::VoltageSchedule;

/// Options controlling the PV-DVS scaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsOptions {
    /// Slack is distributed in quanta of `period / quantum_divisor`.
    /// Larger divisors approximate the continuous optimum more closely at
    /// higher cost; the synthesis loop uses a coarse divisor and re-scales
    /// the final solution finely.
    pub quantum_divisor: f64,
    /// Hard cap on greedy iterations (safety valve).
    pub max_iterations: usize,
    /// Scale single-rail hardware PEs through the virtual-task
    /// transformation (the paper's extension). Disable for the D3
    /// ablation, which scales software PEs only.
    pub scale_hw: bool,
}

impl Default for DvsOptions {
    fn default() -> Self {
        Self { quantum_divisor: 50.0, max_iterations: 20_000, scale_hw: true }
    }
}

impl DvsOptions {
    /// A fine-grained configuration for re-scaling a final solution.
    pub fn fine() -> Self {
        Self { quantum_divisor: 400.0, max_iterations: 200_000, scale_hw: true }
    }
}

/// The result of voltage-scaling one mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledMode {
    schedule: Schedule,
    task_voltages: Vec<Option<VoltageSchedule>>,
    task_energy_factors: Vec<f64>,
    iterations: usize,
}

impl ScaledMode {
    /// The stretched schedule (same mapping and resource order, new start
    /// times and execution times).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The voltage schedule derived for `task`, or `None` if the task was
    /// not scaled.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn task_voltage(&self, task: TaskId) -> Option<&VoltageSchedule> {
        self.task_voltages[task.index()].as_ref()
    }

    /// The dynamic-energy factor of `task` relative to nominal execution
    /// (`1.0` for unscaled tasks).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn energy_factor(&self, task: TaskId) -> f64 {
        self.task_energy_factors[task.index()]
    }

    /// All per-task energy factors, indexed by task id.
    pub fn energy_factors(&self) -> &[f64] {
        &self.task_energy_factors
    }

    /// Number of greedy extension steps performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total nominal and scaled dynamic task energy of the mode — the
    /// before/after view of the scaling pass.
    ///
    /// # Panics
    ///
    /// Panics if `system` is not the system this mode was scaled for.
    pub fn energy_summary(&self, system: &System) -> EnergySummary {
        let graph = system.omsm().mode(self.schedule.mode()).graph();
        let mut nominal = momsynth_model::units::Joules::ZERO;
        let mut scaled = momsynth_model::units::Joules::ZERO;
        for entry in self.schedule.tasks() {
            let e = system
                .tech()
                .impl_of(graph.task(entry.task).task_type(), entry.pe)
                .expect("scheduled task has an implementation")
                .energy();
            nominal += e;
            scaled += e * self.task_energy_factors[entry.task.index()];
        }
        EnergySummary { nominal, scaled }
    }
}

/// Before/after dynamic task energy of a scaled mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySummary {
    /// Energy at nominal voltage.
    pub nominal: momsynth_model::units::Joules,
    /// Energy after voltage scaling.
    pub scaled: momsynth_model::units::Joules,
}

impl EnergySummary {
    /// Fraction of the nominal energy saved, in `[0, 1)`.
    pub fn saving(&self) -> f64 {
        if self.nominal.value() <= 0.0 {
            return 0.0;
        }
        1.0 - self.scaled / self.nominal
    }
}

#[derive(Debug, Clone)]
struct GroupMember {
    task: TaskId,
    rel_start: Seconds,
    nominal: Seconds,
}

#[derive(Debug, Clone)]
enum UnitPayload {
    Task(TaskId),
    Comm(CommId),
    Group { members: Vec<GroupMember> },
}

#[derive(Debug, Clone)]
struct ScaleInfo {
    cap: DvsCapability,
    model: VoltageModel,
    energy: Joules,
    max_stretch: f64,
}

#[derive(Debug, Clone)]
struct Unit {
    payload: UnitPayload,
    deadline: Seconds,
    nominal: Seconds,
    dur: Seconds,
    scale: Option<ScaleInfo>,
}

/// Reusable buffers for [`scale_mode_with`]: the greedy slack
/// distribution recomputes earliest/latest finish times (`es`/`ef`/`lf`
/// slot vectors) on every iteration, so hoisting them out of the loop and
/// across calls removes the scaler's dominant allocation churn. Buffers
/// are cleared on entry; reuse can never leak state between calls.
#[derive(Debug, Default)]
pub struct DvsScratch {
    es: Vec<Seconds>,
    ef: Vec<Seconds>,
    lf: Vec<Seconds>,
    task_unit: Vec<usize>,
    comm_unit: Vec<Option<usize>>,
}

/// Applies PV-DVS to one mode's schedule.
///
/// Tasks on DVS-enabled software PEs are scaled individually; tasks on
/// DVS-enabled hardware PEs are scaled together through the virtual-task
/// transformation (unless `options.scale_hw` is off). Remote
/// communications and tasks on fixed-voltage PEs keep their nominal
/// timing. The scaler never violates task deadlines or the mode's
/// hyper-period; on a schedule that already misses deadlines it simply
/// finds no slack and returns nominal timing.
///
/// Allocates fresh working buffers per call; the synthesis hot loop uses
/// [`scale_mode_with`] with a reusable [`DvsScratch`] instead.
pub fn scale_mode(system: &System, schedule: &Schedule, options: &DvsOptions) -> ScaledMode {
    scale_mode_with(system, schedule, options, &mut DvsScratch::default())
}

/// [`scale_mode`] with caller-provided scratch buffers; produces the
/// identical scaling.
pub fn scale_mode_with(
    system: &System,
    schedule: &Schedule,
    options: &DvsOptions,
    scratch: &mut DvsScratch,
) -> ScaledMode {
    scale_mode_inner(system, schedule, options, options.scale_hw, scratch)
}

fn scale_mode_inner(
    system: &System,
    schedule: &Schedule,
    options: &DvsOptions,
    allow_groups: bool,
    scratch: &mut DvsScratch,
) -> ScaledMode {
    let graph = system.omsm().mode(schedule.mode()).graph();
    let period = graph.period();
    let n = graph.task_count();

    // ---- Build units -----------------------------------------------------
    let mut units: Vec<Unit> = Vec::new();
    let task_unit = &mut scratch.task_unit;
    task_unit.clear();
    task_unit.resize(n, usize::MAX);
    let comm_unit = &mut scratch.comm_unit;
    comm_unit.clear();
    comm_unit.resize(graph.comm_count(), None);

    if allow_groups {
        for pe in system.arch().dvs_pes().collect::<Vec<_>>() {
            if !system.arch().pe(pe).kind().is_hardware() {
                continue;
            }
            let cap = system.arch().pe(pe).dvs().expect("dvs_pes yields DVS PEs").clone();
            let model = VoltageModel::from_capability(&cap);
            let max_stretch = model.max_stretch(cap.v_min());
            for group in virtual_tasks(system, schedule, pe) {
                let idx = units.len();
                let mut deadline = period;
                let members: Vec<GroupMember> = group
                    .members
                    .iter()
                    .map(|&t| {
                        deadline = deadline.min(graph.effective_deadline(t));
                        let e = schedule.task(t);
                        GroupMember {
                            task: t,
                            rel_start: e.start - group.start,
                            nominal: e.exec_time,
                        }
                    })
                    .collect();
                for m in &members {
                    task_unit[m.task.index()] = idx;
                }
                units.push(Unit {
                    payload: UnitPayload::Group { members },
                    deadline,
                    nominal: group.duration(),
                    dur: group.duration(),
                    scale: Some(ScaleInfo {
                        cap: cap.clone(),
                        model,
                        energy: group.energy,
                        max_stretch,
                    }),
                });
            }
        }
    }

    for entry in schedule.tasks() {
        let t = entry.task;
        if task_unit[t.index()] != usize::MAX {
            continue;
        }
        let pe_info = system.arch().pe(entry.pe);
        let scale = match pe_info.dvs() {
            Some(cap) if pe_info.kind().is_software() => {
                let model = VoltageModel::from_capability(cap);
                let energy = system
                    .tech()
                    .impl_of(graph.task(t).task_type(), entry.pe)
                    .expect("scheduled task has an implementation")
                    .energy();
                Some(ScaleInfo {
                    cap: cap.clone(),
                    model,
                    energy,
                    max_stretch: model.max_stretch(cap.v_min()),
                })
            }
            _ => None,
        };
        let idx = units.len();
        task_unit[t.index()] = idx;
        units.push(Unit {
            payload: UnitPayload::Task(t),
            deadline: graph.effective_deadline(t),
            nominal: entry.exec_time,
            dur: entry.exec_time,
            scale,
        });
    }

    for entry in schedule.remote_comms() {
        let idx = units.len();
        comm_unit[entry.comm.index()] = Some(idx);
        units.push(Unit {
            payload: UnitPayload::Comm(entry.comm),
            deadline: period,
            nominal: entry.duration,
            dur: entry.duration,
            scale: None,
        });
    }

    // ---- Constraint edges -------------------------------------------------
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (c, edge) in graph.comms() {
        let su = task_unit[edge.src().index()];
        let du = task_unit[edge.dst().index()];
        match comm_unit[c.index()] {
            Some(cu) => {
                if su != cu {
                    edges.insert((su, cu));
                }
                if cu != du {
                    edges.insert((cu, du));
                }
            }
            None => {
                if su != du {
                    edges.insert((su, du));
                }
            }
        }
    }
    for (_, acts) in schedule.sequences() {
        for pair in acts.windows(2) {
            let ua = activity_unit(pair[0], task_unit, comm_unit);
            let ub = activity_unit(pair[1], task_unit, comm_unit);
            if ua != ub {
                edges.insert((ua, ub));
            }
        }
    }

    // ---- Topological order (Kahn). Virtual-task merging can, in rare
    // interleavings, create cycles; fall back to group-free scaling then.
    let topo = match topo_order(units.len(), &edges) {
        Some(order) => order,
        None => {
            debug_assert!(allow_groups, "group-free unit graph must be acyclic");
            return scale_mode_inner(system, schedule, options, false, scratch);
        }
    };
    let succs: Vec<Vec<usize>> = {
        let mut s = vec![Vec::new(); units.len()];
        for &(a, b) in &edges {
            s[a].push(b);
        }
        s
    };
    let preds: Vec<Vec<usize>> = {
        let mut p = vec![Vec::new(); units.len()];
        for &(a, b) in &edges {
            p[b].push(a);
        }
        p
    };

    // The slot vectors are refilled from scratch buffers on every greedy
    // iteration instead of being reallocated.
    let forward = |units: &[Unit], es: &mut Vec<Seconds>, ef: &mut Vec<Seconds>| {
        es.clear();
        es.resize(units.len(), Seconds::ZERO);
        ef.clear();
        ef.resize(units.len(), Seconds::ZERO);
        for &u in &topo {
            let start = preds[u].iter().map(|&p| ef[p]).fold(Seconds::ZERO, Seconds::max);
            es[u] = start;
            ef[u] = start + units[u].dur;
        }
    };
    let backward = |units: &[Unit], lf: &mut Vec<Seconds>| {
        lf.clear();
        lf.extend(units.iter().map(|u| u.deadline));
        for &u in topo.iter().rev() {
            for &s in &succs[u] {
                lf[u] = lf[u].min(lf[s] - units[s].dur);
            }
        }
    };

    // ---- Greedy slack distribution ---------------------------------------
    let quantum = period / options.quantum_divisor.max(1.0);
    let eps = period * 1e-9;
    let mut iterations = 0usize;
    while iterations < options.max_iterations {
        forward(&units, &mut scratch.es, &mut scratch.ef);
        backward(&units, &mut scratch.lf);
        let ef = &scratch.ef;
        let lf = &scratch.lf;
        let mut best: Option<(usize, Seconds, f64)> = None;
        for (u, unit) in units.iter().enumerate() {
            let Some(scale) = &unit.scale else { continue };
            if unit.nominal.value() <= 0.0 {
                continue;
            }
            let slack = lf[u] - ef[u];
            let room = unit.nominal * scale.max_stretch - unit.dur;
            let delta = quantum.min(slack).min(room);
            if delta <= eps {
                continue;
            }
            let k_now = unit.dur / unit.nominal;
            let k_new = (unit.dur + delta) / unit.nominal;
            let e_now = scale.energy.value() * scale.model.energy_factor_for_stretch(k_now);
            let e_new = scale.energy.value() * scale.model.energy_factor_for_stretch(k_new);
            let gain = (e_now - e_new) / delta.value();
            if gain > 0.0 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((u, delta, gain));
            }
        }
        let Some((u, delta, _)) = best else { break };
        units[u].dur += delta;
        iterations += 1;
    }

    // ---- Snap to discrete levels and rebuild the schedule -----------------
    let mut task_voltages: Vec<Option<VoltageSchedule>> = vec![None; n];
    let mut task_factors = vec![1.0f64; n];
    let mut new_tasks: Vec<ScheduledTask> =
        schedule.tasks().cloned().collect::<Vec<_>>();
    new_tasks.sort_by_key(|e| e.task);
    let mut new_comms: Vec<Option<ScheduledComm>> =
        graph.comm_ids().map(|c| schedule.comm(c).cloned()).collect();

    // First pass: apply snapped durations so the final forward pass uses
    // realised (discrete) times.
    for unit in &mut units {
        let Some(scale) = &unit.scale else { continue };
        if unit.dur.value() <= unit.nominal.value() * (1.0 + 1e-12) {
            unit.dur = unit.nominal;
            continue;
        }
        let vs = VoltageSchedule::fit(&scale.cap, &scale.model, unit.nominal, unit.dur);
        unit.dur = vs.total_time();
    }
    forward(&units, &mut scratch.es, &mut scratch.ef);
    let es = &scratch.es;

    for (u, unit) in units.iter().enumerate() {
        match &unit.payload {
            UnitPayload::Task(t) => {
                let entry = &mut new_tasks[t.index()];
                entry.start = es[u];
                if let Some(scale) = &unit.scale {
                    let vs =
                        VoltageSchedule::fit(&scale.cap, &scale.model, unit.nominal, unit.dur);
                    entry.exec_time = vs.total_time();
                    task_factors[t.index()] = vs.energy_factor(&scale.model);
                    task_voltages[t.index()] = Some(vs);
                }
            }
            UnitPayload::Comm(c) => {
                let entry = new_comms[c.index()]
                    .as_mut()
                    .expect("comm unit exists only for remote comms");
                entry.start = es[u];
            }
            UnitPayload::Group { members, .. } => {
                let scale = unit.scale.as_ref().expect("groups are always scalable");
                let k = if unit.nominal.value() > 0.0 { unit.dur / unit.nominal } else { 1.0 };
                for m in members {
                    let entry = &mut new_tasks[m.task.index()];
                    entry.start = es[u] + m.rel_start * k;
                    let vs = VoltageSchedule::fit(
                        &scale.cap,
                        &scale.model,
                        m.nominal,
                        m.nominal * k,
                    );
                    entry.exec_time = vs.total_time();
                    task_factors[m.task.index()] = vs.energy_factor(&scale.model);
                    task_voltages[m.task.index()] = Some(vs);
                }
            }
        }
    }

    let new_schedule = Schedule::from_parts(
        schedule.mode(),
        new_tasks,
        new_comms,
        schedule.sequences().to_vec(),
    );
    ScaledMode {
        schedule: new_schedule,
        task_voltages,
        task_energy_factors: task_factors,
        iterations,
    }
}

fn activity_unit(
    act: ActivityId,
    task_unit: &[usize],
    comm_unit: &[Option<usize>],
) -> usize {
    match act {
        ActivityId::Task(t) => task_unit[t.index()],
        ActivityId::Comm(c) => {
            comm_unit[c.index()].expect("sequences only contain scheduled remote comms")
        }
    }
}

fn topo_order(n: usize, edges: &BTreeSet<(usize, usize)>) -> Option<Vec<usize>> {
    let mut indegree = vec![0usize; n];
    let mut succs = vec![Vec::new(); n];
    for &(a, b) in edges {
        indegree[b] += 1;
        succs[a].push(b);
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &s in &succs[u] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push(s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{ModeId, PeId};
    use momsynth_model::units::{Cells, Volts, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind,
        TaskGraphBuilder, TechLibraryBuilder,
    };
    use momsynth_sched::{
        schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping,
    };

    fn dvs_cap() -> DvsCapability {
        DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(1.2), Volts::new(1.8), Volts::new(2.4), Volts::new(3.3)],
        )
    }

    /// One DVS CPU, one fixed CPU, chain of three 10 ms tasks, 100 ms period.
    fn sw_system(dvs_on_cpu: bool) -> momsynth_model::System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let mut cpu = Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1));
        if dvs_on_cpu {
            cpu = cpu.with_dvs(dvs_cap());
        }
        let cpu = arch.add_pe(cpu);
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        let mut g = TaskGraphBuilder::new("chain", Seconds::from_millis(100.0));
        let a = g.add_task("a", tx);
        let b = g.add_task("b", tx);
        let c = g.add_task("c", tx);
        g.add_comm(a, b, 0.0).unwrap();
        g.add_comm(b, c, 0.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        momsynth_model::System::new(
            "s",
            omsm.build().unwrap(),
            arch.build().unwrap(),
            tech.build(),
        )
        .unwrap()
    }

    fn schedule_of(sys: &momsynth_model::System) -> Schedule {
        let mapping = SystemMapping::from_fn(sys, |_| PeId::new(0));
        let alloc = CoreAllocation::minimal(sys, &mapping);
        schedule_mode(sys, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default()).unwrap()
    }

    #[test]
    fn slack_is_converted_into_energy_savings() {
        let sys = sw_system(true);
        let schedule = schedule_of(&sys);
        let scaled = scale_mode(&sys, &schedule, &DvsOptions::default());
        assert!(scaled.iterations() > 0);
        // 30 ms of work in a 100 ms period: substantial savings expected.
        for t in 0..3 {
            let f = scaled.energy_factor(TaskId::new(t));
            assert!(f < 0.9, "task {t} factor {f}");
            assert!(f > 0.0);
            assert!(scaled.task_voltage(TaskId::new(t)).is_some());
        }
        // The stretched schedule still meets the period.
        let graph = sys.omsm().mode(ModeId::new(0)).graph();
        assert!(scaled.schedule().is_timing_feasible(graph));
        // And actually uses most of it.
        assert!(scaled.schedule().makespan().as_millis() > 60.0);
    }

    #[test]
    fn reused_scratch_produces_identical_scaling() {
        let mut scratch = DvsScratch::default();
        // Alternate between a DVS and a non-DVS system so every scratch
        // buffer is refilled with different shapes; each result must
        // match a fresh-buffer run.
        for dvs in [true, false, true] {
            let sys = sw_system(dvs);
            let schedule = schedule_of(&sys);
            let reused =
                scale_mode_with(&sys, &schedule, &DvsOptions::default(), &mut scratch);
            let fresh = scale_mode(&sys, &schedule, &DvsOptions::default());
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn no_dvs_pe_means_no_scaling() {
        let sys = sw_system(false);
        let schedule = schedule_of(&sys);
        let scaled = scale_mode(&sys, &schedule, &DvsOptions::default());
        assert_eq!(scaled.iterations(), 0);
        assert_eq!(scaled.energy_factors(), &[1.0, 1.0, 1.0]);
        assert_eq!(scaled.schedule(), &schedule);
    }

    #[test]
    fn zero_slack_schedule_is_untouched() {
        // Period exactly equals the critical path: nothing to exploit.
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch
            .add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(dvs_cap()));
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(10.0));
        g.add_task("a", tx);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let sys = momsynth_model::System::new(
            "s",
            omsm.build().unwrap(),
            arch.build().unwrap(),
            tech.build(),
        )
        .unwrap();
        let schedule = schedule_of(&sys);
        let scaled = scale_mode(&sys, &schedule, &DvsOptions::default());
        assert_eq!(scaled.energy_factor(TaskId::new(0)), 1.0);
        assert_eq!(
            scaled.schedule().task(TaskId::new(0)).exec_time,
            Seconds::from_millis(10.0)
        );
    }

    #[test]
    fn deadlines_are_respected_after_scaling() {
        // Chain with a tight mid-deadline: only downstream slack is usable.
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch
            .add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(dvs_cap()));
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        let a = g.add_task_with_deadline("a", tx, Seconds::from_millis(12.0));
        let b = g.add_task("b", tx);
        g.add_comm(a, b, 0.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let sys = momsynth_model::System::new(
            "s",
            omsm.build().unwrap(),
            arch.build().unwrap(),
            tech.build(),
        )
        .unwrap();
        let schedule = schedule_of(&sys);
        let scaled = scale_mode(&sys, &schedule, &DvsOptions::fine());
        let graph = sys.omsm().mode(ModeId::new(0)).graph();
        assert!(scaled.schedule().is_timing_feasible(graph));
        // Task a could stretch by at most 20%; task b by far more.
        let fa = scaled.energy_factor(TaskId::new(0));
        let fb = scaled.energy_factor(TaskId::new(1));
        assert!(fa > fb, "a={fa} b={fb}");
        let a_exec = scaled.schedule().task(TaskId::new(0)).exec_time;
        assert!(a_exec.as_millis() <= 12.0 + 1e-6);
    }

    /// DVS-enabled ASIC with two parallel tasks: the rail scales both
    /// together through the virtual-task transformation.
    fn hw_system() -> momsynth_model::System {
        let mut tech = TechLibraryBuilder::new();
        let t0 = tech.add_type("A");
        let t1 = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let _cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(
            Pe::hardware("hw", PeKind::Asic, Cells::new(1000), Watts::ZERO).with_dvs(dvs_cap()),
        );
        arch.add_cl(Cl::bus(
            "bus",
            vec![PeId::new(0), hw],
            Seconds::from_micros(1.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(
            t0,
            hw,
            Implementation::hardware(
                Seconds::from_millis(4.0),
                Watts::from_milli(10.0),
                Cells::new(100),
            ),
        );
        tech.set_impl(
            t1,
            hw,
            Implementation::hardware(
                Seconds::from_millis(6.0),
                Watts::from_milli(20.0),
                Cells::new(100),
            ),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(60.0));
        g.add_task("p", t0);
        g.add_task("q", t1);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        momsynth_model::System::new(
            "s",
            omsm.build().unwrap(),
            arch.build().unwrap(),
            tech.build(),
        )
        .unwrap()
    }

    #[test]
    fn hw_rail_scales_parallel_tasks_together() {
        let sys = hw_system();
        let mapping = SystemMapping::from_fn(&sys, |_| PeId::new(1));
        let alloc = CoreAllocation::minimal(&sys, &mapping);
        let schedule =
            schedule_mode(&sys, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())
                .unwrap();
        let scaled = scale_mode(&sys, &schedule, &DvsOptions::fine());
        // Both members of the overlap group stretch by the same factor.
        let k0 = scaled.schedule().task(TaskId::new(0)).exec_time
            / schedule.task(TaskId::new(0)).exec_time;
        let k1 = scaled.schedule().task(TaskId::new(1)).exec_time
            / schedule.task(TaskId::new(1)).exec_time;
        assert!(k0 > 1.5);
        assert!((k0 - k1).abs() < 1e-6, "k0={k0} k1={k1}");
        assert!((scaled.energy_factor(TaskId::new(0))
            - scaled.energy_factor(TaskId::new(1)))
        .abs()
            < 1e-9);
        let graph = sys.omsm().mode(ModeId::new(0)).graph();
        assert!(scaled.schedule().is_timing_feasible(graph));
    }

    #[test]
    fn scale_hw_off_leaves_hardware_nominal() {
        let sys = hw_system();
        let mapping = SystemMapping::from_fn(&sys, |_| PeId::new(1));
        let alloc = CoreAllocation::minimal(&sys, &mapping);
        let schedule =
            schedule_mode(&sys, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())
                .unwrap();
        let opts = DvsOptions { scale_hw: false, ..DvsOptions::default() };
        let scaled = scale_mode(&sys, &schedule, &opts);
        assert_eq!(scaled.energy_factors(), &[1.0, 1.0]);
    }

    #[test]
    fn energy_summary_reports_savings() {
        let sys = sw_system(true);
        let schedule = schedule_of(&sys);
        let scaled = scale_mode(&sys, &schedule, &DvsOptions::fine());
        let summary = scaled.energy_summary(&sys);
        // Three 1 mWs tasks nominally.
        assert!((summary.nominal.as_milli_joules() - 3.0).abs() < 1e-9);
        assert!(summary.scaled < summary.nominal);
        assert!(summary.saving() > 0.2);
        // Unscaled mode: zero saving.
        let sys2 = sw_system(false);
        let schedule2 = schedule_of(&sys2);
        let unscaled = scale_mode(&sys2, &schedule2, &DvsOptions::default());
        assert_eq!(unscaled.energy_summary(&sys2).saving(), 0.0);
    }

    #[test]
    fn energy_is_monotone_in_quantum_resolution() {
        // Finer quanta should never produce (meaningfully) worse energy.
        let sys = sw_system(true);
        let schedule = schedule_of(&sys);
        let coarse = scale_mode(
            &sys,
            &schedule,
            &DvsOptions { quantum_divisor: 10.0, ..DvsOptions::default() },
        );
        let fine = scale_mode(&sys, &schedule, &DvsOptions::fine());
        let total = |s: &ScaledMode| -> f64 { s.energy_factors().iter().sum() };
        assert!(total(&fine) <= total(&coarse) + 1e-6);
    }

    #[test]
    fn infeasible_schedule_gains_nothing_but_does_not_panic() {
        // Period shorter than the chain: negative slack everywhere.
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch
            .add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO).with_dvs(dvs_cap()));
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(15.0));
        let a = g.add_task("a", tx);
        let b = g.add_task("b", tx);
        g.add_comm(a, b, 0.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let sys = momsynth_model::System::new(
            "s",
            omsm.build().unwrap(),
            arch.build().unwrap(),
            tech.build(),
        )
        .unwrap();
        let schedule = schedule_of(&sys);
        let scaled = scale_mode(&sys, &schedule, &DvsOptions::default());
        assert_eq!(scaled.energy_factors(), &[1.0, 1.0]);
    }
}
