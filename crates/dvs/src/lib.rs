//! Dynamic voltage scaling for distributed embedded schedules.
//!
//! Implements the voltage-scaling layer of the DATE 2003 multi-mode
//! co-synthesis flow:
//!
//! * [`VoltageModel`] — the alpha-power delay model and quadratic energy
//!   model of a DVS rail;
//! * [`VoltageSchedule`] — per-task voltage schedules over discrete supply
//!   levels, with the optimal two-adjacent-level split;
//! * [`hw_transform::virtual_tasks`] — the paper's Fig. 5 transformation
//!   of parallel single-rail hardware cores into sequential virtual tasks;
//! * [`scale_mode`] — PV-DVS greedy slack distribution over a mode's
//!   static schedule, honouring deadlines, hyper-periods and per-PE
//!   discrete levels.
//!
//! # Examples
//!
//! ```
//! use momsynth_dvs::VoltageModel;
//! use momsynth_model::units::{Seconds, Volts};
//!
//! let model = VoltageModel::new(Volts::new(3.3), Volts::new(0.8));
//! // Stretching a task 2x allows a much lower supply voltage …
//! let v = model.voltage_for_stretch(2.0);
//! assert!(v.value() < 2.5);
//! // … which cuts its dynamic energy by more than half.
//! assert!(model.energy_factor(v) < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hw_transform;
pub mod pvdvs;
pub mod voltage;
pub mod vschedule;

pub use hw_transform::{virtual_tasks, VirtualTask};
pub use pvdvs::{scale_mode, scale_mode_with, DvsOptions, DvsScratch, EnergySummary, ScaledMode};
pub use voltage::VoltageModel;
pub use vschedule::{VoltageSchedule, VoltageSegment};
