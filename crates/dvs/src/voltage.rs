//! The voltage/delay/energy model used for dynamic voltage scaling.
//!
//! Execution characteristics in the technology library are given at the
//! nominal supply voltage `V_max`. Scaling the supply to `V` changes
//!
//! * circuit speed per the alpha-power delay model with `α = 2`:
//!   `f(V) ∝ (V − V_t)² / V`, so execution time stretches by
//!   [`VoltageModel::stretch`];
//! * energy per cycle quadratically: `E(V) = E_nom · (V / V_max)²` — the
//!   paper's dynamic-energy formula for `ε ∈ T_DVS`.
//!
//! # Examples
//!
//! ```
//! use momsynth_dvs::VoltageModel;
//! use momsynth_model::units::Volts;
//!
//! let model = VoltageModel::new(Volts::new(3.3), Volts::new(0.8));
//! // Full voltage: no stretch, full energy.
//! assert!((model.stretch(Volts::new(3.3)) - 1.0).abs() < 1e-12);
//! assert!((model.energy_factor(Volts::new(3.3)) - 1.0).abs() < 1e-12);
//! // Half voltage costs time but saves energy quadratically.
//! assert!(model.stretch(Volts::new(1.65)) > 1.0);
//! assert!((model.energy_factor(Volts::new(1.65)) - 0.25).abs() < 1e-12);
//! ```

use momsynth_model::arch::DvsCapability;
use momsynth_model::units::{Seconds, Volts};

/// The alpha-power (α = 2) delay and quadratic energy model of a DVS rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageModel {
    v_max: Volts,
    v_t: Volts,
}

impl VoltageModel {
    /// Creates a model with nominal voltage `v_max` and threshold `v_t`.
    ///
    /// # Panics
    ///
    /// Panics if `v_max ≤ v_t` or either value is non-finite.
    pub fn new(v_max: Volts, v_t: Volts) -> Self {
        assert!(
            v_max.is_finite() && v_t.is_finite() && v_max.value() > v_t.value(),
            "voltage model requires finite v_max > v_t"
        );
        Self { v_max, v_t }
    }

    /// Builds the model from a PE's [`DvsCapability`].
    pub fn from_capability(cap: &DvsCapability) -> Self {
        Self::new(cap.v_max(), cap.v_threshold())
    }

    /// Returns the nominal voltage.
    pub fn v_max(&self) -> Volts {
        self.v_max
    }

    /// Returns the threshold voltage.
    pub fn v_threshold(&self) -> Volts {
        self.v_t
    }

    /// Normalised speed `f(V)/f(V_max)` in `(0, 1]` for `V ∈ (V_t, V_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `v ≤ V_t`.
    pub fn speed_factor(&self, v: Volts) -> f64 {
        assert!(v.value() > self.v_t.value(), "supply voltage must exceed the threshold");
        let g = |x: Volts| {
            let d = x.value() - self.v_t.value();
            d * d / x.value()
        };
        g(v) / g(self.v_max)
    }

    /// Execution-time stretch factor `t(V)/t(V_max) = 1 / speed_factor`.
    ///
    /// # Panics
    ///
    /// Panics if `v ≤ V_t`.
    pub fn stretch(&self, v: Volts) -> f64 {
        1.0 / self.speed_factor(v)
    }

    /// Execution time of a task with nominal time `t_min` at voltage `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v ≤ V_t`.
    pub fn exec_time(&self, t_min: Seconds, v: Volts) -> Seconds {
        t_min * self.stretch(v)
    }

    /// Per-cycle energy factor `(V / V_max)²` in `(0, 1]`.
    pub fn energy_factor(&self, v: Volts) -> f64 {
        let r = v.value() / self.v_max.value();
        r * r
    }

    /// The continuous supply voltage whose stretch factor equals `k ≥ 1`.
    ///
    /// Inverts the delay model: solves `(V − V_t)²/V = C/k` with
    /// `C = (V_max − V_t)²/V_max`, taking the physical root above `V_t`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1` (voltage above nominal would be needed).
    pub fn voltage_for_stretch(&self, k: f64) -> Volts {
        assert!(k >= 1.0 - 1e-12, "stretch factor must be at least 1");
        let k = k.max(1.0);
        let c = {
            let d = self.v_max.value() - self.v_t.value();
            d * d / self.v_max.value()
        };
        let a = c / k;
        let vt = self.v_t.value();
        let b = 2.0 * vt + a;
        let v = (b + (b * b - 4.0 * vt * vt).sqrt()) / 2.0;
        Volts::new(v.min(self.v_max.value()))
    }

    /// Energy factor of running an entire task stretched by `k ≥ 1` at the
    /// corresponding continuous voltage.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1`.
    pub fn energy_factor_for_stretch(&self, k: f64) -> f64 {
        self.energy_factor(self.voltage_for_stretch(k))
    }

    /// The maximal useful stretch factor when the rail cannot go below
    /// `v_min` (the lowest discrete level).
    ///
    /// # Panics
    ///
    /// Panics if `v_min ≤ V_t`.
    pub fn max_stretch(&self, v_min: Volts) -> f64 {
        self.stretch(v_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VoltageModel {
        VoltageModel::new(Volts::new(3.3), Volts::new(0.8))
    }

    #[test]
    fn nominal_voltage_is_identity() {
        let m = model();
        assert!((m.speed_factor(Volts::new(3.3)) - 1.0).abs() < 1e-12);
        assert!((m.stretch(Volts::new(3.3)) - 1.0).abs() < 1e-12);
        assert!((m.energy_factor(Volts::new(3.3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_voltage_is_slower_and_cheaper() {
        let m = model();
        let lo = Volts::new(1.5);
        assert!(m.stretch(lo) > 1.0);
        assert!(m.energy_factor(lo) < 1.0);
        // Monotonicity across a sweep.
        let mut last_stretch = 1.0;
        let mut last_energy = 1.0;
        for step in 0..20 {
            let v = Volts::new(3.3 - step as f64 * 0.1);
            let s = m.stretch(v);
            let e = m.energy_factor(v);
            assert!(s >= last_stretch - 1e-12);
            assert!(e <= last_energy + 1e-12);
            last_stretch = s;
            last_energy = e;
        }
    }

    #[test]
    fn voltage_for_stretch_inverts_stretch() {
        let m = model();
        for &k in &[1.0, 1.1, 1.5, 2.0, 4.0, 10.0] {
            let v = m.voltage_for_stretch(k);
            assert!(v.value() > m.v_threshold().value());
            assert!(v.value() <= m.v_max().value() + 1e-12);
            let k_back = m.stretch(v);
            assert!(
                (k_back - k).abs() < 1e-9,
                "stretch {k} -> {v} -> {k_back}"
            );
        }
    }

    #[test]
    fn exec_time_scales_with_stretch() {
        let m = model();
        let v = m.voltage_for_stretch(2.0);
        let t = m.exec_time(Seconds::from_millis(10.0), v);
        assert!((t.as_millis() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn energy_factor_for_stretch_is_decreasing_and_convex_shaped() {
        let m = model();
        let e1 = m.energy_factor_for_stretch(1.0);
        let e2 = m.energy_factor_for_stretch(1.5);
        let e3 = m.energy_factor_for_stretch(2.0);
        assert!((e1 - 1.0).abs() < 1e-12);
        assert!(e2 > e3);
        // Diminishing returns: the first 0.5 of stretch saves more than the
        // second.
        assert!((e1 - e2) > (e2 - e3));
    }

    #[test]
    fn max_stretch_matches_lowest_level() {
        let m = model();
        let k = m.max_stretch(Volts::new(1.2));
        assert!((m.stretch(Volts::new(1.2)) - k).abs() < 1e-12);
        assert!(k > 1.0);
    }

    #[test]
    fn from_capability_uses_cap_parameters() {
        let cap = DvsCapability::new(
            Volts::new(2.5),
            Volts::new(0.5),
            vec![Volts::new(1.0), Volts::new(2.5)],
        );
        let m = VoltageModel::from_capability(&cap);
        assert_eq!(m.v_max(), Volts::new(2.5));
        assert_eq!(m.v_threshold(), Volts::new(0.5));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn speed_factor_rejects_subthreshold_voltage() {
        let _ = model().speed_factor(Volts::new(0.5));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn voltage_for_stretch_rejects_compression() {
        let _ = model().voltage_for_stretch(0.5);
    }

    #[test]
    #[should_panic(expected = "v_max > v_t")]
    fn constructor_rejects_inverted_voltages() {
        let _ = VoltageModel::new(Volts::new(0.5), Volts::new(0.8));
    }
}
