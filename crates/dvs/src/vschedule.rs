//! Per-task voltage schedules over discrete supply levels.
//!
//! A DVS-enabled PE offers a finite set of supply voltages. An ideal
//! (continuous) voltage meeting an extended execution time usually falls
//! between two levels; the classic result is that splitting the task's
//! cycles between the two *adjacent* levels bracketing the continuous
//! voltage meets the time target exactly with the least discrete-level
//! energy. [`VoltageSchedule::fit`] performs that split.

use serde::{Deserialize, Serialize};

use momsynth_model::arch::DvsCapability;
use momsynth_model::units::{Seconds, Volts};

use crate::voltage::VoltageModel;

/// One segment of a voltage schedule: a fraction of the task's cycles
/// executed at a fixed discrete level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageSegment {
    /// The supply level of this segment.
    pub voltage: Volts,
    /// The fraction of the task's cycles run at this level, in `(0, 1]`.
    pub cycle_fraction: f64,
    /// Wall-clock duration of this segment.
    pub duration: Seconds,
}

/// A task's voltage schedule (`Vτ` of the paper): an ordered list of
/// discrete-level segments covering all of the task's cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageSchedule {
    segments: Vec<VoltageSegment>,
}

impl VoltageSchedule {
    /// A schedule that runs everything at the nominal voltage.
    pub fn nominal(v_max: Volts, exec_time: Seconds) -> Self {
        Self {
            segments: vec![VoltageSegment {
                voltage: v_max,
                cycle_fraction: 1.0,
                duration: exec_time,
            }],
        }
    }

    /// Fits a discrete-level schedule for a task with nominal execution
    /// time `t_min` so that the total duration equals `target` as closely
    /// as the levels allow:
    ///
    /// * `target ≤ t_min` → everything at the highest level;
    /// * `target ≥ t(v_min)` → everything at the lowest level (the
    ///   remaining slack stays idle);
    /// * otherwise → a two-level split between the adjacent levels
    ///   bracketing the continuous voltage, meeting `target` exactly.
    ///
    /// # Panics
    ///
    /// Panics if the capability has no levels (rejected by the
    /// architecture builder) or if `t_min` is non-positive.
    pub fn fit(cap: &DvsCapability, model: &VoltageModel, t_min: Seconds, target: Seconds) -> Self {
        assert!(t_min.value() > 0.0, "nominal execution time must be positive");
        let levels = cap.levels();
        let times: Vec<Seconds> =
            levels.iter().map(|&v| t_min * model.stretch(v)).collect();
        let highest = levels.len() - 1;

        if target.value() <= times[highest].value() + 1e-15 {
            return Self::nominal(levels[highest], times[highest]);
        }
        if target.value() >= times[0].value() - 1e-15 {
            return Self {
                segments: vec![VoltageSegment {
                    voltage: levels[0],
                    cycle_fraction: 1.0,
                    duration: times[0],
                }],
            };
        }
        // Find the adjacent level pair (lo, hi = lo + 1) bracketing the
        // target: levels ascend in voltage so `times` descends; walk down
        // until times[lo - 1] >= target > times[lo], then the pair is
        // (lo - 1, lo). The early returns above guarantee lo never hits 0.
        let mut lo = highest;
        while lo > 0 && times[lo - 1].value() < target.value() {
            lo -= 1;
        }
        let lo = lo - 1; // index of the lower level of the pair
        let hi = lo + 1;
        let (t_lo, t_hi) = (times[lo], times[hi]);
        debug_assert!(t_hi.value() <= target.value() + 1e-12);
        debug_assert!(t_lo.value() >= target.value() - 1e-12);
        // x = fraction of cycles at the higher voltage.
        let x = ((t_lo - target) / (t_lo - t_hi)).clamp(0.0, 1.0);
        let mut segments = Vec::with_capacity(2);
        if x > 1e-12 {
            segments.push(VoltageSegment {
                voltage: levels[hi],
                cycle_fraction: x,
                duration: t_hi * x,
            });
        }
        if 1.0 - x > 1e-12 {
            segments.push(VoltageSegment {
                voltage: levels[lo],
                cycle_fraction: 1.0 - x,
                duration: t_lo * (1.0 - x),
            });
        }
        Self { segments }
    }

    /// Returns the ordered segments.
    pub fn segments(&self) -> &[VoltageSegment] {
        &self.segments
    }

    /// Total wall-clock duration of the schedule.
    pub fn total_time(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Energy factor relative to nominal execution:
    /// `Σ cycle_fraction · (V / V_max)²`.
    pub fn energy_factor(&self, model: &VoltageModel) -> f64 {
        self.segments
            .iter()
            .map(|s| s.cycle_fraction * model.energy_factor(s.voltage))
            .sum()
    }

    /// The lowest voltage used by any segment.
    ///
    /// # Panics
    ///
    /// Panics if the schedule has no segments (cannot be constructed
    /// through the public API).
    pub fn min_voltage(&self) -> Volts {
        self.segments
            .iter()
            .map(|s| s.voltage)
            .min_by(|a, b| a.value().total_cmp(&b.value()))
            .expect("voltage schedule has at least one segment")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> DvsCapability {
        DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(1.2), Volts::new(2.1), Volts::new(3.3)],
        )
    }

    fn model() -> VoltageModel {
        VoltageModel::from_capability(&cap())
    }

    #[test]
    fn nominal_schedule_is_single_full_segment() {
        let s = VoltageSchedule::nominal(Volts::new(3.3), Seconds::from_millis(10.0));
        assert_eq!(s.segments().len(), 1);
        assert!((s.energy_factor(&model()) - 1.0).abs() < 1e-12);
        assert_eq!(s.total_time(), Seconds::from_millis(10.0));
        assert_eq!(s.min_voltage(), Volts::new(3.3));
    }

    #[test]
    fn no_slack_stays_at_nominal() {
        let t_min = Seconds::from_millis(10.0);
        let s = VoltageSchedule::fit(&cap(), &model(), t_min, t_min);
        assert_eq!(s.segments().len(), 1);
        assert_eq!(s.segments()[0].voltage, Volts::new(3.3));
        assert!((s.total_time() / t_min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_level_split_meets_target_exactly() {
        let c = cap();
        let m = model();
        let t_min = Seconds::from_millis(10.0);
        // Target between t(3.3V)=10ms and t(2.1V).
        let t_21 = t_min * m.stretch(Volts::new(2.1));
        let target = (t_min + t_21) / 2.0;
        let s = VoltageSchedule::fit(&c, &m, t_min, target);
        assert_eq!(s.segments().len(), 2);
        assert!((s.total_time() / target - 1.0).abs() < 1e-9);
        // Fractions cover all cycles.
        let frac: f64 = s.segments().iter().map(|x| x.cycle_fraction).sum();
        assert!((frac - 1.0).abs() < 1e-9);
        // Energy strictly below nominal, above the all-2.1V floor for this pair.
        let e = s.energy_factor(&m);
        assert!(e < 1.0);
        assert!(e > m.energy_factor(Volts::new(2.1)));
        // Voltages used are exactly the bracketing pair.
        let vs: Vec<f64> = s.segments().iter().map(|x| x.voltage.value()).collect();
        assert!(vs.contains(&3.3) && vs.contains(&2.1));
    }

    #[test]
    fn beyond_lowest_level_saturates() {
        let c = cap();
        let m = model();
        let t_min = Seconds::from_millis(10.0);
        let huge = Seconds::new(10.0);
        let s = VoltageSchedule::fit(&c, &m, t_min, huge);
        assert_eq!(s.segments().len(), 1);
        assert_eq!(s.segments()[0].voltage, Volts::new(1.2));
        // Duration is t(v_min), not the unreachable target.
        assert!((s.total_time() / (t_min * m.stretch(Volts::new(1.2))) - 1.0).abs() < 1e-9);
        assert!((s.energy_factor(&m) - m.energy_factor(Volts::new(1.2))).abs() < 1e-12);
    }

    #[test]
    fn split_lands_in_correct_bracket_for_low_targets() {
        let c = cap();
        let m = model();
        let t_min = Seconds::from_millis(10.0);
        let t_21 = t_min * m.stretch(Volts::new(2.1));
        let t_12 = t_min * m.stretch(Volts::new(1.2));
        let target = (t_21 + t_12) / 2.0;
        let s = VoltageSchedule::fit(&c, &m, t_min, target);
        assert!((s.total_time() / target - 1.0).abs() < 1e-9);
        let vs: Vec<f64> = s.segments().iter().map(|x| x.voltage.value()).collect();
        assert!(vs.contains(&2.1) && vs.contains(&1.2));
        assert_eq!(s.min_voltage(), Volts::new(1.2));
    }

    #[test]
    fn discrete_energy_dominates_continuous() {
        // The two-level split can never beat the continuous voltage.
        let c = cap();
        let m = model();
        let t_min = Seconds::from_millis(10.0);
        for k in [1.1, 1.3, 1.7, 2.0, 2.5] {
            let target = t_min * k;
            let s = VoltageSchedule::fit(&c, &m, t_min, target);
            let achieved_k = s.total_time() / t_min;
            let continuous = m.energy_factor_for_stretch(achieved_k);
            assert!(
                s.energy_factor(&m) >= continuous - 1e-9,
                "k={k}: discrete {} < continuous {continuous}",
                s.energy_factor(&m)
            );
        }
    }

    #[test]
    fn exact_level_target_uses_single_level() {
        let c = cap();
        let m = model();
        let t_min = Seconds::from_millis(10.0);
        let t_21 = t_min * m.stretch(Volts::new(2.1));
        let s = VoltageSchedule::fit(&c, &m, t_min, t_21);
        assert!((s.total_time() / t_21 - 1.0).abs() < 1e-9);
        // Either a single 2.1V segment or a degenerate split; energy must
        // equal the 2.1V factor.
        assert!((s.energy_factor(&m) - m.energy_factor(Volts::new(2.1))).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let s = VoltageSchedule::fit(
            &cap(),
            &model(),
            Seconds::from_millis(10.0),
            Seconds::from_millis(14.0),
        );
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<VoltageSchedule>(&json).unwrap(), s);
    }
}
