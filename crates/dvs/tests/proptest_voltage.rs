//! Property-based tests of the voltage model and discrete voltage
//! schedules.

use proptest::prelude::*;

use momsynth_dvs::{VoltageModel, VoltageSchedule};
use momsynth_model::arch::DvsCapability;
use momsynth_model::units::{Seconds, Volts};

/// Random physically plausible rail: `0 ≤ v_t < v_min < v_max`.
fn rail() -> impl Strategy<Value = (Volts, Volts, Vec<Volts>)> {
    (0.1f64..1.5, 0.2f64..2.0, 0.2f64..3.0, 1usize..6).prop_map(|(vt, gap, span, n_mid)| {
        let v_t = Volts::new(vt);
        let v_min = vt + gap;
        let v_max = v_min + span;
        let mut levels = vec![Volts::new(v_min), Volts::new(v_max)];
        for i in 1..n_mid {
            levels.push(Volts::new(v_min + span * i as f64 / n_mid as f64));
        }
        (Volts::new(v_max), v_t, levels)
    })
}

proptest! {
    #[test]
    fn stretch_and_energy_are_monotone((v_max, v_t, levels) in rail()) {
        let model = VoltageModel::new(v_max, v_t);
        let mut sorted = levels.clone();
        sorted.sort_by(|a, b| a.value().total_cmp(&b.value()));
        for pair in sorted.windows(2) {
            prop_assert!(model.stretch(pair[0]) >= model.stretch(pair[1]) - 1e-12);
            prop_assert!(model.energy_factor(pair[0]) <= model.energy_factor(pair[1]) + 1e-12);
        }
    }

    #[test]
    fn voltage_for_stretch_round_trips((v_max, v_t, _) in rail(), k in 1.0f64..50.0) {
        let model = VoltageModel::new(v_max, v_t);
        let v = model.voltage_for_stretch(k);
        prop_assert!(v.value() > v_t.value());
        prop_assert!(v.value() <= v_max.value() + 1e-9);
        let k_back = model.stretch(v);
        prop_assert!((k_back - k).abs() < 1e-6 * k, "k={k}, back={k_back}");
    }

    #[test]
    fn nominal_is_fixed_point((v_max, v_t, _) in rail()) {
        let model = VoltageModel::new(v_max, v_t);
        prop_assert!((model.stretch(v_max) - 1.0).abs() < 1e-12);
        prop_assert!((model.energy_factor(v_max) - 1.0).abs() < 1e-12);
        prop_assert!((model.voltage_for_stretch(1.0).value() - v_max.value()).abs() < 1e-9);
    }

    #[test]
    fn fit_meets_reachable_targets_exactly(
        (v_max, v_t, levels) in rail(),
        t_min_ms in 0.1f64..100.0,
        frac in 0.0f64..1.0,
    ) {
        let cap = DvsCapability::new(v_max, v_t, levels);
        let model = VoltageModel::from_capability(&cap);
        let t_min = Seconds::from_millis(t_min_ms);
        let t_max = t_min * model.max_stretch(cap.v_min());
        // Any target between t_min and t(v_min) is met exactly.
        let target = t_min + (t_max - t_min) * frac;
        let schedule = VoltageSchedule::fit(&cap, &model, t_min, target);
        prop_assert!(
            (schedule.total_time() / target - 1.0).abs() < 1e-6,
            "target {} got {}",
            target.value(),
            schedule.total_time().value()
        );
        // Cycle fractions always cover the task exactly.
        let cycles: f64 = schedule.segments().iter().map(|s| s.cycle_fraction).sum();
        prop_assert!((cycles - 1.0).abs() < 1e-9);
        // Energy factor within (0, 1].
        let e = schedule.energy_factor(&model);
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-12);
    }

    #[test]
    fn fit_saturates_beyond_the_lowest_level(
        (v_max, v_t, levels) in rail(),
        t_min_ms in 0.1f64..100.0,
        surplus in 1.1f64..10.0,
    ) {
        let cap = DvsCapability::new(v_max, v_t, levels);
        let model = VoltageModel::from_capability(&cap);
        let t_min = Seconds::from_millis(t_min_ms);
        let t_max = t_min * model.max_stretch(cap.v_min());
        let schedule = VoltageSchedule::fit(&cap, &model, t_min, t_max * surplus);
        prop_assert!((schedule.total_time() / t_max - 1.0).abs() < 1e-6);
        prop_assert_eq!(schedule.min_voltage(), cap.v_min());
    }

    #[test]
    fn discrete_energy_never_beats_continuous(
        (v_max, v_t, levels) in rail(),
        t_min_ms in 0.1f64..100.0,
        frac in 0.01f64..0.99,
    ) {
        let cap = DvsCapability::new(v_max, v_t, levels);
        let model = VoltageModel::from_capability(&cap);
        let t_min = Seconds::from_millis(t_min_ms);
        let t_max = t_min * model.max_stretch(cap.v_min());
        let target = t_min + (t_max - t_min) * frac;
        let schedule = VoltageSchedule::fit(&cap, &model, t_min, target);
        let k = schedule.total_time() / t_min;
        prop_assert!(
            schedule.energy_factor(&model) >= model.energy_factor_for_stretch(k) - 1e-9
        );
    }

    #[test]
    fn more_stretch_never_costs_more_energy(
        (v_max, v_t, levels) in rail(),
        t_min_ms in 0.1f64..100.0,
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
    ) {
        let cap = DvsCapability::new(v_max, v_t, levels);
        let model = VoltageModel::from_capability(&cap);
        let t_min = Seconds::from_millis(t_min_ms);
        let t_max = t_min * model.max_stretch(cap.v_min());
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let e_short = VoltageSchedule::fit(&cap, &model, t_min, t_min + (t_max - t_min) * lo)
            .energy_factor(&model);
        let e_long = VoltageSchedule::fit(&cap, &model, t_min, t_min + (t_max - t_min) * hi)
            .energy_factor(&model);
        prop_assert!(e_long <= e_short + 1e-9, "lo={lo} e={e_short}, hi={hi} e={e_long}");
    }
}
