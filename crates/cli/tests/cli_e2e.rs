//! End-to-end tests of the `momsynth` binary: generate → info → lint →
//! dot → synth, via real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn momsynth(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_momsynth"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_cli_test_{}_{name}", std::process::id()));
    p
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = momsynth(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
    let out = momsynth(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = momsynth(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("frobnicate"));
}

#[test]
fn generate_info_lint_dot_round_trip() {
    let path = tmp_file("sys.json");
    let path_str = path.to_str().expect("utf-8 temp path");

    let out = momsynth(&["generate", "--preset", "mul9", "-o", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(path.exists());

    let out = momsynth(&["info", path_str]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("mul9"));
    assert!(text.contains("modes"));
    assert!(text.contains("lint:"));

    let out = momsynth(&["lint", path_str]);
    assert!(out.status.success());

    for what in ["omsm", "arch", "mode:0"] {
        let out = momsynth(&["dot", path_str, "--what", what]);
        assert!(out.status.success(), "dot --what {what}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("graph"), "dot --what {what} produced: {text}");
    }

    // Out-of-range mode is a clean error.
    let out = momsynth(&["dot", path_str, "--what", "mode:99"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("out of range"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn synth_runs_and_writes_solution() {
    let sys_path = tmp_file("synth_sys.json");
    let sol_path = tmp_file("solution.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");
    let sol_str = sol_path.to_str().expect("utf-8 temp path");

    let out = momsynth(&["generate", "--preset", "mul9", "-o", sys_str]);
    assert!(out.status.success());

    let out = momsynth(&["synth", sys_str, "--quick", "--seed", "3", "-o", sol_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("average power"));
    assert!(text.contains("mapping:"));
    assert!(text.contains("component"));

    let solution: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&sol_path).expect("solution written"))
            .expect("valid JSON");
    assert_eq!(solution["system"], "mul9");
    assert!(solution["average_power_mw"].as_f64().expect("number") > 0.0);
    assert!(solution["mapping"].is_object() || solution["mapping"].is_array() || !solution["mapping"].is_null());

    std::fs::remove_file(&sys_path).ok();
    std::fs::remove_file(&sol_path).ok();
}

#[test]
fn convert_imports_tgff_and_synthesises() {
    let tgff = concat!(env!("CARGO_MANIFEST_DIR"), "/../../assets/sample.tgff");
    let sys_path = tmp_file("converted.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");

    let out = momsynth(&["convert", tgff, "-o", sys_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("2 modes"));

    let out = momsynth(&["synth", sys_str, "--quick", "--dvs"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("average power"));

    std::fs::remove_file(&sys_path).ok();
}

#[test]
fn convert_reports_parse_errors_with_lines() {
    let bad = tmp_file("bad.tgff");
    std::fs::write(&bad, "@TASK_GRAPH 0 {\n    BOGUS 1\n}\n").expect("write");
    let out = momsynth(&["convert", bad.to_str().expect("utf-8")]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
    std::fs::remove_file(&bad).ok();
}

#[test]
fn synth_on_missing_file_fails_cleanly() {
    let out = momsynth(&["synth", "/nonexistent/system.json", "--quick"]);
    assert_eq!(out.status.code(), Some(1), "load errors exit with code 1");
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn usage_errors_exit_with_code_1() {
    assert_eq!(momsynth(&["frobnicate"]).status.code(), Some(1));
    assert_eq!(momsynth(&["synth"]).status.code(), Some(1));
    assert_eq!(momsynth(&["synth", "s.json", "--max-seconds", "nope"]).status.code(), Some(1));
}

/// A single 10 ms software task against a 1 ms period: the static
/// analyzer proves no mapping can be feasible, so `synth` must fail fast
/// with exit code 2 and `analyze` must report the same proof.
fn infeasible_system_json() -> String {
    use momsynth_model::units::{Seconds, Watts};
    use momsynth_model::{
        ArchitectureBuilder, OmsmBuilder, Pe, PeKind, System, TaskGraphBuilder, TechLibraryBuilder,
    };
    let mut tech = TechLibraryBuilder::new();
    let ty = tech.add_type("T");
    let mut arch = ArchitectureBuilder::new();
    let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
    tech.set_impl(
        ty,
        cpu,
        momsynth_model::Implementation::software(
            Seconds::from_millis(10.0),
            Watts::from_milli(20.0),
        ),
    );
    let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(1.0));
    g.add_task("t", ty);
    let mut omsm = OmsmBuilder::new();
    omsm.add_mode("m", 1.0, g.build().unwrap());
    let system =
        System::new("overload", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap();
    serde_json::to_string_pretty(&system).unwrap()
}

#[test]
fn infeasible_best_solution_exits_with_code_2() {
    let sys_path = tmp_file("infeasible.json");
    std::fs::write(&sys_path, infeasible_system_json()).expect("write");
    let out = momsynth(&["synth", sys_path.to_str().expect("utf-8"), "--quick"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("provably infeasible"), "{}", stderr(&out));
    assert!(stdout(&out).contains("period-below-critical-path"), "{}", stdout(&out));
    std::fs::remove_file(&sys_path).ok();
}

#[test]
fn analyze_reports_infeasibility_with_code_2() {
    let sys_path = tmp_file("analyze_infeasible.json");
    let report_path = tmp_file("analyze_infeasible_report.json");
    std::fs::write(&sys_path, infeasible_system_json()).expect("write");
    let out = momsynth(&[
        "analyze",
        sys_path.to_str().expect("utf-8"),
        "--report-out",
        report_path.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("period-below-critical-path"), "{text}");
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).expect("report written"))
            .expect("valid JSON report");
    assert_eq!(report.get("clean").and_then(|v| v.as_bool()), Some(false));
    std::fs::remove_file(&sys_path).ok();
    std::fs::remove_file(&report_path).ok();
}

#[test]
fn analyze_accepts_a_feasible_system() {
    let sys_path = tmp_file("analyze_feasible.json");
    let sys_str = sys_path.to_str().expect("utf-8");
    let out = momsynth(&["generate", "--preset", "smartphone", "-o", sys_str]);
    assert!(out.status.success());
    let out = momsynth(&["analyze", sys_str]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("p̄_LB"), "{}", stdout(&out));
    std::fs::remove_file(&sys_path).ok();
}

#[test]
fn evaluation_budget_reports_stop_reason() {
    let sys_path = tmp_file("budget_sys.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");
    let out = momsynth(&["generate", "--preset", "mul9", "-o", sys_str]);
    assert!(out.status.success());

    let out = momsynth(&["synth", sys_str, "--quick", "--seed", "1", "--max-evals", "30"]);
    // Feasibility of the truncated best is system-dependent; either way
    // the run must report a well-formed result tagged with the budget.
    assert!(matches!(out.status.code(), Some(0 | 2)), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("evaluation budget exhausted"), "{text}");
    assert!(text.contains("mapping:"), "{text}");

    std::fs::remove_file(&sys_path).ok();
}

#[test]
fn checkpoint_resume_reproduces_uninterrupted_mapping() {
    let sys_path = tmp_file("cp_sys.json");
    let cp_path = tmp_file("cp.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");
    let cp_str = cp_path.to_str().expect("utf-8 temp path");
    let out = momsynth(&["generate", "--preset", "mul9", "-o", sys_str]);
    assert!(out.status.success());

    let mapping_line = |out: &Output| {
        stdout(out)
            .lines()
            .find(|l| l.starts_with("mapping:"))
            .expect("mapping line")
            .to_owned()
    };

    let full = momsynth(&["synth", sys_str, "--quick", "--seed", "7"]);
    assert!(full.status.success(), "{}", stderr(&full));

    // Interrupt an identical run mid-flight, checkpointing every
    // generation …
    let cut = momsynth(&[
        "synth", sys_str, "--quick", "--seed", "7", "--max-evals", "60", "--checkpoint", cp_str,
        "--checkpoint-every", "1",
    ]);
    assert!(matches!(cut.status.code(), Some(0 | 2)), "{}", stderr(&cut));
    assert!(cp_path.exists(), "checkpoint must have been written");

    // … then resume without the budget: the final mapping must match the
    // uninterrupted run's.
    let resumed =
        momsynth(&["synth", sys_str, "--quick", "--seed", "7", "--resume", cp_str]);
    assert!(resumed.status.success(), "{}", stderr(&resumed));
    assert_eq!(mapping_line(&full), mapping_line(&resumed));

    // Resuming against the wrong seed is a clean, typed failure.
    let mismatched =
        momsynth(&["synth", sys_str, "--quick", "--seed", "8", "--resume", cp_str]);
    assert_eq!(mismatched.status.code(), Some(1));
    assert!(stderr(&mismatched).contains("seed"), "{}", stderr(&mismatched));

    std::fs::remove_file(&sys_path).ok();
    std::fs::remove_file(&cp_path).ok();
}

#[cfg(unix)]
#[test]
fn sigint_reports_best_so_far_and_exits_with_code_3() {
    let sys_path = tmp_file("sigint_sys.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");
    let out = momsynth(&["generate", "--seed", "1", "--modes", "10", "-o", sys_str]);
    assert!(out.status.success());

    // Full-size (non --quick) synthesis on a 10-mode system runs for many
    // seconds — ample time to interrupt it.
    let child = Command::new(env!("CARGO_BIN_EXE_momsynth"))
        .args(["synth", sys_str, "--seed", "0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    std::thread::sleep(std::time::Duration::from_millis(1000));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let out = child.wait_with_output().expect("child exits");

    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("stopped: cancelled"), "{text}");
    assert!(text.contains("mapping:"), "{text}");

    std::fs::remove_file(&sys_path).ok();
}

#[test]
fn generate_freeform_respects_modes() {
    let path = tmp_file("freeform.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let out = momsynth(&["generate", "--seed", "5", "--modes", "3", "-o", path_str]);
    assert!(out.status.success());
    let system: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("written")).expect("JSON");
    assert_eq!(system["omsm"]["modes"].as_array().expect("modes array").len(), 3);
    std::fs::remove_file(&path).ok();
}

/// `check` re-proves a clean solution (exit 0) and rejects a corrupted
/// one (exit 2), with the JSON report mirroring both verdicts.
#[test]
fn check_verifies_clean_solutions_and_rejects_corrupted_ones() {
    let sys_path = tmp_file("check_sys.json");
    let sol_path = tmp_file("check_sol.json");
    let rep_path = tmp_file("check_rep.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");
    let sol_str = sol_path.to_str().expect("utf-8 temp path");
    let rep_str = rep_path.to_str().expect("utf-8 temp path");

    let out = momsynth(&["generate", "--preset", "smartphone", "-o", sys_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = momsynth(&["synth", sys_str, "--quick", "--dvs", "--seed", "1", "-o", sol_str]);
    assert!(out.status.success(), "{}", stderr(&out));

    // The genuine solution re-verifies with zero violations.
    let out = momsynth(&["check", sys_str, sol_str, "--report-out", rep_str]);
    assert_eq!(out.status.code(), Some(0), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("no violations"), "{}", stdout(&out));
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&rep_path).expect("report written"))
            .expect("valid JSON");
    assert_eq!(report["clean"].as_bool(), Some(true));
    assert_eq!(report["violation_count"].as_u64(), Some(0));

    // Inflate the reported Eq. 1 average (its field appears exactly once
    // in the report); the independent recompute must notice.
    let text = std::fs::read_to_string(&sol_path).expect("solution readable");
    assert_eq!(text.matches("\"average\":").count(), 1, "p̄ field must be unique");
    let start = text.find("\"average\":").expect("p̄ field") + "\"average\":".len();
    let end = start
        + text[start..].find([',', '\n', '}']).expect("number terminator");
    let average: f64 = text[start..end].trim().parse().expect("p̄ is a number");
    let corrupted = format!("{}{}{}", &text[..start], average * 1.5, &text[end..]);
    std::fs::write(&sol_path, corrupted).expect("write");

    let out = momsynth(&["check", sys_str, sol_str, "--report-out", rep_str]);
    assert_eq!(out.status.code(), Some(2), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("average-power-mismatch"), "{}", stdout(&out));
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&rep_path).expect("report written"))
            .expect("valid JSON");
    assert_eq!(report["clean"].as_bool(), Some(false));
    assert!(report["violation_count"].as_u64().expect("count") >= 1);

    // A structurally broken solution file is a load error (exit 1), not
    // a crash and not a "verified" verdict.
    std::fs::write(&sol_path, "{\"system\": \"smartphone\"}").expect("write");
    let out = momsynth(&["check", sys_str, sol_str]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("not a solution report"), "{}", stderr(&out));

    std::fs::remove_file(&sys_path).ok();
    std::fs::remove_file(&sol_path).ok();
    std::fs::remove_file(&rep_path).ok();
}
