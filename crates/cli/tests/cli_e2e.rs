//! End-to-end tests of the `momsynth` binary: generate → info → lint →
//! dot → synth, via real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn momsynth(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_momsynth"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_cli_test_{}_{name}", std::process::id()));
    p
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = momsynth(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
    let out = momsynth(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = momsynth(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("frobnicate"));
}

#[test]
fn generate_info_lint_dot_round_trip() {
    let path = tmp_file("sys.json");
    let path_str = path.to_str().expect("utf-8 temp path");

    let out = momsynth(&["generate", "--preset", "mul9", "-o", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(path.exists());

    let out = momsynth(&["info", path_str]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("mul9"));
    assert!(text.contains("modes"));
    assert!(text.contains("lint:"));

    let out = momsynth(&["lint", path_str]);
    assert!(out.status.success());

    for what in ["omsm", "arch", "mode:0"] {
        let out = momsynth(&["dot", path_str, "--what", what]);
        assert!(out.status.success(), "dot --what {what}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("graph"), "dot --what {what} produced: {text}");
    }

    // Out-of-range mode is a clean error.
    let out = momsynth(&["dot", path_str, "--what", "mode:99"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("out of range"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn synth_runs_and_writes_solution() {
    let sys_path = tmp_file("synth_sys.json");
    let sol_path = tmp_file("solution.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");
    let sol_str = sol_path.to_str().expect("utf-8 temp path");

    let out = momsynth(&["generate", "--preset", "mul9", "-o", sys_str]);
    assert!(out.status.success());

    let out = momsynth(&["synth", sys_str, "--quick", "--seed", "3", "-o", sol_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("average power"));
    assert!(text.contains("mapping:"));
    assert!(text.contains("component"));

    let solution: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&sol_path).expect("solution written"))
            .expect("valid JSON");
    assert_eq!(solution["system"], "mul9");
    assert!(solution["average_power_mw"].as_f64().expect("number") > 0.0);
    assert!(solution["mapping"].is_object() || solution["mapping"].is_array() || !solution["mapping"].is_null());

    std::fs::remove_file(&sys_path).ok();
    std::fs::remove_file(&sol_path).ok();
}

#[test]
fn convert_imports_tgff_and_synthesises() {
    let tgff = concat!(env!("CARGO_MANIFEST_DIR"), "/../../assets/sample.tgff");
    let sys_path = tmp_file("converted.json");
    let sys_str = sys_path.to_str().expect("utf-8 temp path");

    let out = momsynth(&["convert", tgff, "-o", sys_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("2 modes"));

    let out = momsynth(&["synth", sys_str, "--quick", "--dvs"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("average power"));

    std::fs::remove_file(&sys_path).ok();
}

#[test]
fn convert_reports_parse_errors_with_lines() {
    let bad = tmp_file("bad.tgff");
    std::fs::write(&bad, "@TASK_GRAPH 0 {\n    BOGUS 1\n}\n").expect("write");
    let out = momsynth(&["convert", bad.to_str().expect("utf-8")]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
    std::fs::remove_file(&bad).ok();
}

#[test]
fn synth_on_missing_file_fails_cleanly() {
    let out = momsynth(&["synth", "/nonexistent/system.json", "--quick"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn generate_freeform_respects_modes() {
    let path = tmp_file("freeform.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let out = momsynth(&["generate", "--seed", "5", "--modes", "3", "-o", path_str]);
    assert!(out.status.success());
    let system: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("written")).expect("JSON");
    assert_eq!(system["omsm"]["modes"].as_array().expect("modes array").len(), 3);
    std::fs::remove_file(&path).ok();
}
