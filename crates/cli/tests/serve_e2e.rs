//! End-to-end tests of the job server: the `--oneshot` stdio transport,
//! the `job` client's documented exit codes, and a SIGKILL chaos run
//! asserting that no admitted job is ever lost, duplicated, or left
//! non-terminal.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn momsynth(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_momsynth"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_serve_test_{}_{name}", std::process::id()));
    p
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn generate_system(name: &str, extra: &[&str]) -> PathBuf {
    let path = tmp_path(name);
    let mut args = vec!["generate", "-o", path.to_str().expect("utf-8 temp path")];
    args.extend_from_slice(extra);
    let out = momsynth(&args);
    assert!(out.status.success(), "{}", stderr(&out));
    path
}

/// A single 10 ms software task against a 1 ms period: provably
/// unschedulable, so a submitted job must fail fast and permanently.
fn infeasible_system_json() -> String {
    use momsynth_model::units::{Seconds, Watts};
    use momsynth_model::{
        ArchitectureBuilder, OmsmBuilder, Pe, PeKind, System, TaskGraphBuilder, TechLibraryBuilder,
    };
    let mut tech = TechLibraryBuilder::new();
    let ty = tech.add_type("T");
    let mut arch = ArchitectureBuilder::new();
    let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
    tech.set_impl(
        ty,
        cpu,
        momsynth_model::Implementation::software(
            Seconds::from_millis(10.0),
            Watts::from_milli(20.0),
        ),
    );
    let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(1.0));
    g.add_task("t", ty);
    let mut omsm = OmsmBuilder::new();
    omsm.add_mode("m", 1.0, g.build().unwrap());
    let system =
        System::new("overload", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap();
    serde_json::to_string_pretty(&system).unwrap()
}

/// The whole protocol over stdin/stdout, no socket involved: submit a
/// spec, wait for the verdict, fetch the durable result, shut down.
#[test]
fn oneshot_serves_submit_wait_result_shutdown() {
    let root = tmp_path("oneshot_root");
    let sys_path = generate_system("oneshot_sys.json", &["--preset", "mul9"]);
    let system = std::fs::read_to_string(&sys_path).expect("system readable");
    let system_value: serde_json::Value = serde_json::from_str(&system).expect("valid JSON");

    let spec = serde_json::json!({"system": system_value, "quick": true, "seed": 3});
    let script = [
        r#"{"cmd": "ping"}"#.to_owned(),
        serde_json::to_string(&serde_json::json!({"cmd": "submit", "spec": spec})).unwrap(),
        r#"{"cmd": "wait", "id": "job-000001", "timeout_s": 300}"#.to_owned(),
        r#"{"cmd": "result", "id": "job-000001"}"#.to_owned(),
        r#"{"cmd": "shutdown"}"#.to_owned(),
    ]
    .join("\n");

    let mut child = Command::new(env!("CARGO_BIN_EXE_momsynth"))
        .args(["serve", "--root", root.to_str().expect("utf-8"), "--oneshot"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("server exits");
    assert!(out.status.success(), "{}", stderr(&out));

    let lines: Vec<serde_json::Value> = stdout(&out)
        .lines()
        .map(|l| serde_json::from_str(l).expect("every response line is JSON"))
        .collect();
    assert_eq!(lines.len(), 5, "one response per request: {}", stdout(&out));
    assert_eq!(lines[0].get("pong").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(lines[1].get("id").and_then(|v| v.as_str()), Some("job-000001"));
    let state = lines[2]
        .get("job")
        .and_then(|j| j.get("state"))
        .and_then(|v| v.as_str());
    assert_eq!(state, Some("verified"), "{}", lines[2]);
    let result = lines[3].get("result").expect("result payload");
    assert_eq!(result.get("feasible").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(result.get("system").and_then(|v| v.as_str()), Some("mul9"));
    assert_eq!(lines[4].get("shutting_down").and_then(|v| v.as_bool()), Some(true));

    std::fs::remove_file(&sys_path).ok();
    std::fs::remove_dir_all(&root).ok();
}

#[cfg(unix)]
fn spawn_server(root: &str, socket: &str, extra: &[&str]) -> Child {
    let mut args = vec!["serve", "--root", root, "--socket", socket];
    args.extend_from_slice(extra);
    Command::new(env!("CARGO_BIN_EXE_momsynth"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server spawns")
}

#[cfg(unix)]
fn await_ping(socket: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if momsynth(&["job", "ping", "--socket", socket]).status.success() {
            return;
        }
        assert!(Instant::now() < deadline, "server never became reachable");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Exercises the client against a live server and pins each documented
/// exit code: 0 verified/reachable, 1 unreachable, 2 failed, 3 cancelled.
#[cfg(unix)]
#[test]
fn job_client_round_trips_and_pins_exit_codes() {
    let root = tmp_path("client_root");
    let socket = tmp_path("client.sock");
    let root_str = root.to_str().expect("utf-8");
    let socket_str = socket.to_str().expect("utf-8");
    let mut server = spawn_server(root_str, socket_str, &["--workers", "2"]);
    await_ping(socket_str);

    // An unreachable socket is exit code 1.
    let out = momsynth(&["job", "ping", "--socket", "/nonexistent/momsynth.sock"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("cannot connect"), "{}", stderr(&out));

    // A feasible quick job verifies: exit code 0.
    let sys_path = generate_system("client_sys.json", &["--preset", "mul9"]);
    let sys_str = sys_path.to_str().expect("utf-8");
    let out = momsynth(&[
        "job", "submit", sys_str, "--socket", socket_str, "--quick", "--seed", "2", "--wait",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("\"verified\""), "{}", stdout(&out));

    // A provably unschedulable system fails permanently: exit code 2.
    let bad_path = tmp_path("client_infeasible.json");
    std::fs::write(&bad_path, infeasible_system_json()).expect("write");
    let out = momsynth(&[
        "job",
        "submit",
        bad_path.to_str().expect("utf-8"),
        "--socket",
        socket_str,
        "--quick",
        "--wait",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("\"failed\""), "{}", stdout(&out));

    // Cancelling a long full-size run is exit code 3 on wait.
    let slow_path = generate_system("client_slow.json", &["--seed", "1", "--modes", "8"]);
    let out = momsynth(&[
        "job",
        "submit",
        slow_path.to_str().expect("utf-8"),
        "--socket",
        socket_str,
        "--seed",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}\n{}", stdout(&out), stderr(&out));
    let submitted: serde_json::Value =
        serde_json::from_str(stdout(&out).trim()).expect("submit response is JSON");
    let id = submitted.get("id").and_then(|v| v.as_str()).expect("job id").to_owned();
    let out = momsynth(&["job", "cancel", &id, "--socket", socket_str]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out = momsynth(&["job", "wait", &id, "--socket", socket_str, "--timeout-s", "60"]);
    assert_eq!(out.status.code(), Some(3), "{}\n{}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("\"cancelled\""), "{}", stdout(&out));

    // `list` sees all three jobs; `status` answers for each of them.
    let out = momsynth(&["job", "list", "--socket", socket_str]);
    assert_eq!(out.status.code(), Some(0));
    let listed: serde_json::Value = serde_json::from_str(stdout(&out).trim()).expect("JSON");
    assert_eq!(listed.get("jobs").and_then(|j| j.as_array()).map(Vec::len), Some(3));

    // Graceful client-driven shutdown: both sides exit 0.
    let out = momsynth(&["job", "shutdown", "--socket", socket_str]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exits cleanly after shutdown");

    std::fs::remove_file(&sys_path).ok();
    std::fs::remove_file(&bad_path).ok();
    std::fs::remove_file(&slow_path).ok();
    std::fs::remove_dir_all(&root).ok();
}

/// SIGKILL the server mid-synthesis with two admitted jobs, restart it
/// on the same journal, and require that both jobs reach exactly one
/// terminal state each — nothing lost, duplicated, or stuck.
#[cfg(unix)]
#[test]
fn sigkill_mid_run_loses_no_jobs_and_resumes_to_verified() {
    let root = tmp_path("chaos_root");
    let socket = tmp_path("chaos.sock");
    let root_str = root.to_str().expect("utf-8");
    let socket_str = socket.to_str().expect("utf-8");
    let serve_flags =
        ["--workers", "2", "--checkpoint-every", "1", "--checkpoint-every-seconds", "0.2"];
    let mut server = spawn_server(root_str, socket_str, &serve_flags);
    await_ping(socket_str);

    let sys_a = generate_system("chaos_a.json", &["--seed", "4", "--modes", "6"]);
    let sys_b = generate_system("chaos_b.json", &["--seed", "5", "--modes", "6"]);
    let mut ids = Vec::new();
    for sys in [&sys_a, &sys_b] {
        let out = momsynth(&[
            "job",
            "submit",
            sys.to_str().expect("utf-8"),
            "--socket",
            socket_str,
            "--quick",
            "--seed",
            "1",
        ]);
        assert_eq!(out.status.code(), Some(0), "{}\n{}", stdout(&out), stderr(&out));
        let resp: serde_json::Value = serde_json::from_str(stdout(&out).trim()).expect("JSON");
        ids.push(resp.get("id").and_then(|v| v.as_str()).expect("job id").to_owned());
    }

    // Give synthesis a moment to get under way (and checkpoint), then
    // kill the server without any chance to clean up. The kill point is
    // randomized (wall-clock jitter) so repeated runs strike at
    // different generations — recovery must hold at any of them.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let out = momsynth(&["job", "status", &ids[0], "--socket", socket_str]);
        let state = serde_json::from_str::<serde_json::Value>(stdout(&out).trim())
            .ok()
            .and_then(|v| v.get("job").and_then(|j| j.get("state")).and_then(|s| s.as_str()).map(str::to_owned));
        if state.as_deref() != Some("queued") || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let jitter_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos() as u64
        % 500;
    std::thread::sleep(Duration::from_millis(jitter_ms));
    let kill = Command::new("kill")
        .args(["-KILL", &server.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = server.wait().expect("server reaped");
    assert!(!status.success(), "SIGKILL is not a clean exit");

    // The journal survived: exactly one record per admitted job.
    let records: Vec<_> = std::fs::read_dir(root.join("jobs"))
        .expect("journal survives the kill")
        .map(|e| e.expect("entry").file_name())
        .filter(|n| n.to_string_lossy().ends_with(".json"))
        .collect();
    assert_eq!(records.len(), 2, "one durable record per job: {records:?}");

    // Restart on the same journal and wait both jobs out.
    let mut server = spawn_server(root_str, socket_str, &serve_flags);
    await_ping(socket_str);
    for id in &ids {
        let out = momsynth(&["job", "wait", id, "--socket", socket_str, "--timeout-s", "300"]);
        assert_eq!(out.status.code(), Some(0), "{id}: {}\n{}", stdout(&out), stderr(&out));
        let resp: serde_json::Value = serde_json::from_str(stdout(&out).trim()).expect("JSON");
        let job = resp.get("job").expect("job status");
        assert_eq!(job.get("state").and_then(|v| v.as_str()), Some("verified"), "{job}");
        assert_eq!(job.get("id").and_then(|v| v.as_str()), Some(id.as_str()));

        let out = momsynth(&["job", "result", id, "--socket", socket_str]);
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
        let resp: serde_json::Value = serde_json::from_str(stdout(&out).trim()).expect("JSON");
        let result = resp.get("result").expect("durable result");
        assert_eq!(result.get("feasible").and_then(|v| v.as_bool()), Some(true));
    }

    // No duplicates: the restarted server lists exactly the two admitted
    // jobs, each in exactly one terminal state.
    let out = momsynth(&["job", "list", "--socket", socket_str]);
    assert_eq!(out.status.code(), Some(0));
    let listed: serde_json::Value = serde_json::from_str(stdout(&out).trim()).expect("JSON");
    let jobs = listed.get("jobs").and_then(|j| j.as_array()).expect("jobs array");
    assert_eq!(jobs.len(), 2, "{listed}");
    let mut seen: Vec<&str> = jobs
        .iter()
        .map(|j| j.get("id").and_then(|v| v.as_str()).expect("id"))
        .collect();
    seen.sort_unstable();
    let mut expected: Vec<&str> = ids.iter().map(String::as_str).collect();
    expected.sort_unstable();
    assert_eq!(seen, expected);

    let out = momsynth(&["job", "shutdown", "--socket", socket_str]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(server.wait().expect("server exits").success());

    std::fs::remove_file(&sys_a).ok();
    std::fs::remove_file(&sys_b).ok();
    std::fs::remove_dir_all(&root).ok();
}
