//! End-to-end telemetry checks against the real `momsynth` binary:
//! `--trace-out` emits schema-valid JSONL, `--metrics-out` emits a
//! parseable [`RunSummary`], and `--quiet` runs are silent.

use std::path::PathBuf;
use std::process::{Command, Output};

use momsynth_telemetry::{Event, RunSummary};

fn momsynth(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_momsynth"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_cli_e2e_{}_{name}", std::process::id()));
    p
}

/// Generates the smartphone example system into a temp file.
fn smartphone_json(name: &str) -> PathBuf {
    let path = tmp(name);
    let out = momsynth(&[
        "generate",
        "--preset",
        "smartphone",
        "-o",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    path
}

#[test]
fn quiet_run_writes_valid_trace_and_metrics_and_stays_silent() {
    let system = smartphone_json("sys_quiet.json");
    let trace = tmp("events.jsonl");
    let metrics = tmp("summary.json");
    let out = momsynth(&[
        "synth",
        system.to_str().unwrap(),
        "--quick",
        "--seed",
        "1",
        "--quiet",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "synth failed (status {:?}): {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "quiet run printed to stdout: {:?}", out.stdout);
    assert!(out.stderr.is_empty(), "quiet run printed to stderr: {:?}", out.stderr);

    // Every trace line must parse as a typed event; the stream is
    // bracketed by RunStart and Summary.
    let text = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<Event> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("trace line parses as Event"))
        .collect();
    assert!(events.len() >= 3, "expected a non-trivial trace, got {} events", events.len());
    assert!(matches!(events.first(), Some(Event::RunStart(_))));
    assert!(matches!(events.last(), Some(Event::Summary(_))));
    let generations = events.iter().filter(|e| matches!(e, Event::Generation(_))).count();
    assert!(generations > 0, "trace must contain generation events");

    // The metrics document is the same summary the trace ends with.
    let summary: RunSummary =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(summary.system, "smartphone");
    assert!(summary.generations as usize + 1 >= generations);
    let Some(Event::Summary(trace_summary)) = events.last() else { unreachable!() };
    assert_eq!(summary.normalized(), trace_summary.clone().normalized());

    for p in [system, trace, metrics] {
        std::fs::remove_file(&p).ok();
    }
}

/// `momsynth profile` folds a real trace into per-phase self time, in
/// both the human table and the flamegraph collapsed-stack format.
#[test]
fn profile_folds_a_real_trace_into_self_time() {
    let system = smartphone_json("sys_profile.json");
    let trace = tmp("profile_events.jsonl");
    let out = momsynth(&[
        "synth",
        system.to_str().unwrap(),
        "--quick",
        "--seed",
        "1",
        "--quiet",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Human-readable report: a ranked table of phase paths.
    let out = momsynth(&["profile", trace.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("SELF"), "header missing: {table}");
    assert!(table.contains("run;fitness_eval"), "phase paths missing: {table}");

    // Collapsed-stack output: `path self_nanos` lines flamegraph
    // tooling accepts, written through `-o`.
    let collapsed_path = tmp("profile.collapsed");
    let out = momsynth(&[
        "profile",
        trace.to_str().unwrap(),
        "--collapsed",
        "-o",
        collapsed_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let collapsed = std::fs::read_to_string(&collapsed_path).unwrap();
    for line in collapsed.lines() {
        let (path, nanos) = line.rsplit_once(' ').expect("`path nanos` shape");
        assert!(path.starts_with("run"), "{line}");
        assert!(nanos.parse::<u64>().expect("nanos parse") > 0, "{line}");
    }
    assert!(
        collapsed.lines().any(|l| l.starts_with("run;fitness_eval;")),
        "inner phases present: {collapsed}"
    );

    // A file with no timing data is a clean, documented failure.
    let empty = tmp("profile_empty.jsonl");
    std::fs::write(&empty, "\n").unwrap();
    let out = momsynth(&["profile", empty.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no timing data"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for p in [system, trace, collapsed_path, empty] {
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn progress_run_reports_generations_on_stderr() {
    let system = smartphone_json("sys_progress.json");
    let out = momsynth(&[
        "synth",
        system.to_str().unwrap(),
        "--quick",
        "--seed",
        "1",
        "--progress",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gen "), "progress output missing: {stderr}");
    assert!(stderr.contains("done:"), "summary line missing: {stderr}");
    std::fs::remove_file(&system).ok();
}

#[test]
fn progress_and_quiet_conflict_is_a_usage_error() {
    let out = momsynth(&["synth", "sys.json", "--progress", "--quiet"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}
