//! Minimal argument parsing for the `momsynth` CLI.
//!
//! Hand-rolled on purpose: the CLI has a handful of subcommands with a
//! handful of flags each, and keeping the workspace's dependency footprint
//! small (see `DESIGN.md`) beats pulling in a full parser generator.

use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `info <system.json>` — summary, sizes, shared types.
    Info {
        /// Path of the system specification.
        path: String,
    },
    /// `lint <system.json>` — specification diagnostics.
    Lint {
        /// Path of the system specification.
        path: String,
    },
    /// `dot <system.json> [--what omsm|arch|mode:<n>]` — Graphviz export.
    Dot {
        /// Path of the system specification.
        path: String,
        /// What to render.
        what: DotTarget,
    },
    /// `generate [--preset mulN|smartphone|automotive | --seed S --modes M ...]
    /// [-o out.json]`.
    Generate {
        /// Named preset, if chosen.
        preset: Option<GeneratePreset>,
        /// Seed for free-form generation.
        seed: u64,
        /// Mode count for free-form generation.
        modes: usize,
        /// Output path (`-` = stdout).
        output: String,
    },
    /// `convert <spec.tgff> [-o system.json]` — import a TGFF-dialect
    /// specification.
    Convert {
        /// Path of the TGFF input.
        path: String,
        /// Output path (`-` = stdout).
        output: String,
    },
    /// `synth <system.json> [--dvs] [--neglect-probabilities] [--seed S]
    /// [--quick] [--threads N] [--max-seconds T] [--max-evals N]
    /// [--checkpoint file] [--checkpoint-every N] [--resume file]
    /// [-o solution.json]`.
    Synth {
        /// Path of the system specification.
        path: String,
        /// Enable voltage scaling.
        dvs: bool,
        /// Use the probability-neglecting baseline flow.
        neglect: bool,
        /// GA seed.
        seed: u64,
        /// Use the fast preset.
        quick: bool,
        /// Worker threads for batch fitness evaluation (0 = all cores).
        threads: usize,
        /// Wall-clock budget in seconds.
        max_seconds: Option<f64>,
        /// Fitness-evaluation budget.
        max_evals: Option<usize>,
        /// File to periodically checkpoint the GA state to.
        checkpoint: Option<String>,
        /// Checkpoint period in generations.
        checkpoint_every: usize,
        /// Checkpoint file to resume from.
        resume: Option<String>,
        /// Where to write the solution report (`-` = stdout only).
        output: Option<String>,
        /// Directory to write per-mode VCD traces into.
        vcd: Option<String>,
        /// File to write the JSONL event trace to.
        trace_out: Option<String>,
        /// File to write the machine-readable run summary to.
        metrics_out: Option<String>,
        /// Print a one-line-per-generation progress view on stderr.
        progress: bool,
        /// Silence all human chatter on stdout/stderr.
        quiet: bool,
    },
    /// `analyze <system.json> [--report-out report.json]` — pre-synthesis
    /// static feasibility analysis with provable bounds.
    Analyze {
        /// Path of the system specification.
        path: String,
        /// Where to write the JSON analysis report.
        report_out: Option<String>,
    },
    /// `prove <system.json> [--budget N|Ts] [--dvs]
    /// [--neglect-probabilities] [--seed S] [--quick]
    /// [--report-out cert.json] [--quiet]` — certify a synthesis run with
    /// an exact branch-and-bound optimality proof or a residual gap bound.
    Prove {
        /// Path of the system specification.
        path: String,
        /// Exploration budget for the branch-and-bound proof.
        budget: ProveBudget,
        /// Enable voltage scaling (the GA incumbent and the certificate
        /// bound both account for it).
        dvs: bool,
        /// Use the probability-neglecting baseline flow.
        neglect: bool,
        /// GA seed for the incumbent run.
        seed: u64,
        /// Use the fast GA preset for the incumbent run.
        quick: bool,
        /// Where to write the JSON certificate.
        report_out: Option<String>,
        /// Silence all human chatter on stdout/stderr.
        quiet: bool,
    },
    /// `check <system.json> <solution.json> [--report-out report.json]` —
    /// independently re-verify a finished solution against every paper
    /// constraint.
    Check {
        /// Path of the system specification.
        path: String,
        /// Path of the solution report written by `synth -o`.
        solution: String,
        /// Where to write the JSON verification report.
        report_out: Option<String>,
    },
    /// `serve --root DIR [--socket PATH | --oneshot] [--workers N]
    /// [--queue-capacity N] [--checkpoint-every N]
    /// [--checkpoint-every-seconds T] [--max-retries N]
    /// [--metrics-listen ADDR] [--no-metrics]` — run the resident job
    /// server.
    Serve {
        /// Journal directory (jobs, specs, checkpoints, traces, results).
        root: String,
        /// Unix-socket path to listen on.
        socket: Option<String>,
        /// Speak the protocol on stdin/stdout instead of a socket.
        oneshot: bool,
        /// Worker slots running jobs concurrently.
        workers: usize,
        /// Submission-queue bound (back-pressure beyond it).
        queue_capacity: usize,
        /// Checkpoint running jobs every N generations.
        checkpoint_every: usize,
        /// Also checkpoint whenever this many seconds passed.
        checkpoint_every_seconds: Option<f64>,
        /// Retries after a transient failure before failing for good.
        max_retries: u32,
        /// TCP address for the Prometheus text exposition endpoint.
        metrics_listen: Option<String>,
        /// Whether the metrics registry is enabled at all.
        metrics: bool,
    },
    /// `job <request> --socket PATH` — client for a running job server.
    Job {
        /// Unix-socket path of the server.
        socket: String,
        /// The request to send.
        request: JobRequest,
    },
    /// `profile <trace.jsonl> [--collapsed] [-o out.txt]` — fold a JSONL
    /// event trace into per-phase self time.
    Profile {
        /// Path of the trace file (`synth --trace-out` or a server job
        /// trace).
        trace: String,
        /// Emit collapsed-stack lines instead of the human table.
        collapsed: bool,
        /// Write the output to this file instead of stdout.
        output: Option<String>,
    },
    /// `help` or no arguments.
    Help,
}

/// One client request of the `job` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// `job submit <system.json> [synthesis flags] [--wait]`.
    Submit {
        /// Path of the system specification.
        path: String,
        /// Scheduling priority (higher runs first, sheds lower).
        priority: u8,
        /// Use the fast preset.
        quick: bool,
        /// Enable voltage scaling.
        dvs: bool,
        /// Run the probability-neglecting baseline flow.
        neglect: bool,
        /// GA seed.
        seed: u64,
        /// Wall-clock optimisation budget in seconds.
        max_seconds: Option<f64>,
        /// Fitness-evaluation budget.
        max_evals: Option<usize>,
        /// Hard per-attempt timeout; the server marks the job timed-out.
        timeout_seconds: Option<f64>,
        /// Block until the job is terminal and exit by its state.
        wait: bool,
    },
    /// `job status <id>`.
    Status {
        /// Job id.
        id: String,
    },
    /// `job result <id>`.
    Result {
        /// Job id.
        id: String,
    },
    /// `job cancel <id>`.
    Cancel {
        /// Job id.
        id: String,
    },
    /// `job wait <id> [--timeout-s T]`.
    Wait {
        /// Job id.
        id: String,
        /// Give up after this many seconds.
        timeout_s: f64,
    },
    /// `job list`.
    List,
    /// `job ping`.
    Ping,
    /// `job metrics [--text]` — fetch the server's metrics snapshot.
    Metrics {
        /// Print the Prometheus text exposition instead of JSON.
        text: bool,
    },
    /// `job shutdown` — ask the server to stop gracefully.
    Shutdown,
}

/// A named system preset for `generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratePreset {
    /// One of the paper's hypothetical `mulN` benchmarks (1..=12).
    Mul(usize),
    /// The smartphone example (paper Table 2 flavour).
    Smartphone,
    /// The automotive ECU example (paper Table 3 flavour).
    Automotive,
}

/// The exploration budget of a `prove` run.
///
/// A bare integer (`--budget 50000`) caps the number of leaf evaluations
/// the branch-and-bound search may price; an `s`-suffixed number
/// (`--budget 10s`) caps its wall-clock time instead. Either way an
/// exhausted budget degrades the certificate to a sound gap bound — the
/// proof never hangs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProveBudget {
    /// At most this many leaf evaluations (deterministic).
    Evals(u64),
    /// At most this many wall-clock seconds (non-deterministic).
    Seconds(f64),
}

/// What the `dot` subcommand renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DotTarget {
    /// The top-level mode state machine.
    Omsm,
    /// The architecture graph.
    Arch,
    /// One mode's task graph.
    Mode(usize),
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn take_value<'a>(
    args: &'a [String],
    i: &mut usize,
    flag: &str,
) -> Result<&'a str, ParseError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| ParseError(format!("{flag} requires a value")))
}

/// Parses the argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" | "lint" => {
            let path = args
                .get(1)
                .ok_or_else(|| ParseError(format!("{cmd} requires a system file")))?
                .clone();
            Ok(if cmd == "info" { Command::Info { path } } else { Command::Lint { path } })
        }
        "dot" => {
            let path = args
                .get(1)
                .ok_or_else(|| ParseError("dot requires a system file".into()))?
                .clone();
            let mut what = DotTarget::Omsm;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--what" => {
                        let v = take_value(args, &mut i, "--what")?;
                        what = match v {
                            "omsm" => DotTarget::Omsm,
                            "arch" => DotTarget::Arch,
                            other => match other.strip_prefix("mode:") {
                                Some(n) => DotTarget::Mode(n.parse().map_err(|_| {
                                    ParseError(format!("invalid mode index `{n}`"))
                                })?),
                                None => {
                                    return Err(ParseError(format!(
                                        "unknown dot target `{other}` (use omsm, arch or mode:<n>)"
                                    )))
                                }
                            },
                        };
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Dot { path, what })
        }
        "generate" => {
            let mut preset = None;
            let mut seed = 1;
            let mut modes = 4;
            let mut output = "-".to_owned();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--preset" => {
                        let v = take_value(args, &mut i, "--preset")?;
                        preset = Some(match v {
                            "smartphone" => GeneratePreset::Smartphone,
                            "automotive" => GeneratePreset::Automotive,
                            _ => {
                                let n = v
                                    .strip_prefix("mul")
                                    .and_then(|n| n.parse().ok())
                                    .filter(|n| (1..=12).contains(n))
                                    .ok_or_else(|| {
                                        ParseError(format!(
                                            "unknown preset `{v}` (use mul1..mul12, smartphone \
                                             or automotive)"
                                        ))
                                    })?;
                                GeneratePreset::Mul(n)
                            }
                        });
                    }
                    "--seed" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| ParseError("invalid --seed".into()))?;
                    }
                    "--modes" => {
                        modes = take_value(args, &mut i, "--modes")?
                            .parse()
                            .map_err(|_| ParseError("invalid --modes".into()))?;
                    }
                    "-o" | "--output" => {
                        output = take_value(args, &mut i, "--output")?.to_owned();
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Generate { preset, seed, modes, output })
        }
        "convert" => {
            let path = args
                .get(1)
                .ok_or_else(|| ParseError("convert requires a tgff file".into()))?
                .clone();
            let mut output = "-".to_owned();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "-o" | "--output" => {
                        output = take_value(args, &mut i, "--output")?.to_owned();
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Convert { path, output })
        }
        "synth" => {
            let path = args
                .get(1)
                .ok_or_else(|| ParseError("synth requires a system file".into()))?
                .clone();
            let mut dvs = false;
            let mut neglect = false;
            let mut seed = 0;
            let mut quick = false;
            let mut threads = 1;
            let mut max_seconds = None;
            let mut max_evals = None;
            let mut checkpoint = None;
            let mut checkpoint_every = 10;
            let mut resume = None;
            let mut output = None;
            let mut vcd = None;
            let mut trace_out = None;
            let mut metrics_out = None;
            let mut progress = false;
            let mut quiet = false;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--dvs" => dvs = true,
                    "--neglect-probabilities" => neglect = true,
                    "--quick" => quick = true,
                    "--seed" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| ParseError("invalid --seed".into()))?;
                    }
                    "--threads" => {
                        threads = take_value(args, &mut i, "--threads")?
                            .parse()
                            .map_err(|_| ParseError("invalid --threads".into()))?;
                    }
                    "--max-seconds" => {
                        let v: f64 = take_value(args, &mut i, "--max-seconds")?
                            .parse()
                            .map_err(|_| ParseError("invalid --max-seconds".into()))?;
                        if !v.is_finite() || v < 0.0 {
                            return Err(ParseError("invalid --max-seconds".into()));
                        }
                        max_seconds = Some(v);
                    }
                    "--max-evals" => {
                        max_evals = Some(
                            take_value(args, &mut i, "--max-evals")?
                                .parse()
                                .map_err(|_| ParseError("invalid --max-evals".into()))?,
                        );
                    }
                    "--checkpoint" => {
                        checkpoint = Some(take_value(args, &mut i, "--checkpoint")?.to_owned());
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = take_value(args, &mut i, "--checkpoint-every")?
                            .parse()
                            .map_err(|_| ParseError("invalid --checkpoint-every".into()))?;
                    }
                    "--resume" => {
                        resume = Some(take_value(args, &mut i, "--resume")?.to_owned());
                    }
                    "-o" | "--output" => {
                        output = Some(take_value(args, &mut i, "--output")?.to_owned());
                    }
                    "--vcd" => {
                        vcd = Some(take_value(args, &mut i, "--vcd")?.to_owned());
                    }
                    "--trace-out" => {
                        trace_out = Some(take_value(args, &mut i, "--trace-out")?.to_owned());
                    }
                    "--metrics-out" => {
                        metrics_out = Some(take_value(args, &mut i, "--metrics-out")?.to_owned());
                    }
                    "--progress" => progress = true,
                    "--quiet" | "-q" => quiet = true,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            if progress && quiet {
                return Err(ParseError("--progress and --quiet are mutually exclusive".into()));
            }
            Ok(Command::Synth {
                path,
                dvs,
                neglect,
                seed,
                quick,
                threads,
                max_seconds,
                max_evals,
                checkpoint,
                checkpoint_every,
                resume,
                output,
                vcd,
                trace_out,
                metrics_out,
                progress,
                quiet,
            })
        }
        "analyze" => {
            let path = args
                .get(1)
                .ok_or_else(|| ParseError("analyze requires a system file".into()))?
                .clone();
            let mut report_out = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--report-out" => {
                        report_out = Some(take_value(args, &mut i, "--report-out")?.to_owned());
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Analyze { path, report_out })
        }
        "prove" => {
            let path = args
                .get(1)
                .ok_or_else(|| ParseError("prove requires a system file".into()))?
                .clone();
            let mut budget = ProveBudget::Evals(100_000);
            let mut dvs = false;
            let mut neglect = false;
            let mut seed = 0;
            let mut quick = false;
            let mut report_out = None;
            let mut quiet = false;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--budget" => {
                        let v = take_value(args, &mut i, "--budget")?;
                        budget = match v.strip_suffix('s') {
                            Some(secs) => {
                                let t: f64 = secs.parse().map_err(|_| {
                                    ParseError(format!("invalid --budget `{v}`"))
                                })?;
                                if !t.is_finite() || t < 0.0 {
                                    return Err(ParseError(format!("invalid --budget `{v}`")));
                                }
                                ProveBudget::Seconds(t)
                            }
                            None => ProveBudget::Evals(v.parse().map_err(|_| {
                                ParseError(format!(
                                    "invalid --budget `{v}` (use an eval count or `<T>s`)"
                                ))
                            })?),
                        };
                    }
                    "--dvs" => dvs = true,
                    "--neglect-probabilities" => neglect = true,
                    "--seed" => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| ParseError("invalid --seed".into()))?;
                    }
                    "--quick" => quick = true,
                    "--report-out" => {
                        report_out = Some(take_value(args, &mut i, "--report-out")?.to_owned());
                    }
                    "--quiet" | "-q" => quiet = true,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Prove { path, budget, dvs, neglect, seed, quick, report_out, quiet })
        }
        "check" => {
            let path = args
                .get(1)
                .ok_or_else(|| ParseError("check requires a system file".into()))?
                .clone();
            let solution = args
                .get(2)
                .ok_or_else(|| ParseError("check requires a solution file".into()))?
                .clone();
            let mut report_out = None;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--report-out" => {
                        report_out = Some(take_value(args, &mut i, "--report-out")?.to_owned());
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Check { path, solution, report_out })
        }
        "serve" => {
            let mut root = None;
            let mut socket = None;
            let mut oneshot = false;
            let mut workers = 2;
            let mut queue_capacity = 16;
            let mut checkpoint_every = 5;
            let mut checkpoint_every_seconds = Some(2.0);
            let mut max_retries = 2;
            let mut metrics_listen = None;
            let mut metrics = true;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--root" => root = Some(take_value(args, &mut i, "--root")?.to_owned()),
                    "--socket" => {
                        socket = Some(take_value(args, &mut i, "--socket")?.to_owned());
                    }
                    "--oneshot" => oneshot = true,
                    "--workers" => {
                        workers = take_value(args, &mut i, "--workers")?
                            .parse()
                            .map_err(|_| ParseError("invalid --workers".into()))?;
                    }
                    "--queue-capacity" => {
                        queue_capacity = take_value(args, &mut i, "--queue-capacity")?
                            .parse()
                            .map_err(|_| ParseError("invalid --queue-capacity".into()))?;
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = take_value(args, &mut i, "--checkpoint-every")?
                            .parse()
                            .map_err(|_| ParseError("invalid --checkpoint-every".into()))?;
                    }
                    "--checkpoint-every-seconds" => {
                        let v: f64 = take_value(args, &mut i, "--checkpoint-every-seconds")?
                            .parse()
                            .map_err(|_| ParseError("invalid --checkpoint-every-seconds".into()))?;
                        if !v.is_finite() || v <= 0.0 {
                            return Err(ParseError("invalid --checkpoint-every-seconds".into()));
                        }
                        checkpoint_every_seconds = Some(v);
                    }
                    "--max-retries" => {
                        max_retries = take_value(args, &mut i, "--max-retries")?
                            .parse()
                            .map_err(|_| ParseError("invalid --max-retries".into()))?;
                    }
                    "--metrics-listen" => {
                        metrics_listen =
                            Some(take_value(args, &mut i, "--metrics-listen")?.to_owned());
                    }
                    "--no-metrics" => metrics = false,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let root = root.ok_or_else(|| ParseError("serve requires --root DIR".into()))?;
            if oneshot && socket.is_some() {
                return Err(ParseError("--oneshot and --socket are mutually exclusive".into()));
            }
            if !oneshot && socket.is_none() {
                return Err(ParseError("serve requires --socket PATH or --oneshot".into()));
            }
            if !metrics && metrics_listen.is_some() {
                return Err(ParseError(
                    "--no-metrics and --metrics-listen are mutually exclusive".into(),
                ));
            }
            Ok(Command::Serve {
                root,
                socket,
                oneshot,
                workers,
                queue_capacity,
                checkpoint_every,
                checkpoint_every_seconds,
                max_retries,
                metrics_listen,
                metrics,
            })
        }
        "job" => {
            let verb = args
                .get(1)
                .ok_or_else(|| {
                    ParseError(
                        "job requires a request (submit, status, result, cancel, wait, list, \
                         metrics, ping, shutdown)"
                            .into(),
                    )
                })?
                .clone();
            let mut socket = None;
            let needs_path = verb == "submit";
            let mut positional = None;
            let mut priority = 0u8;
            let mut quick = false;
            let mut dvs = false;
            let mut neglect = false;
            let mut seed = 0u64;
            let mut max_seconds = None;
            let mut max_evals = None;
            let mut timeout_seconds = None;
            let mut wait = false;
            let mut timeout_s = 600.0f64;
            let mut text = false;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--socket" => {
                        socket = Some(take_value(args, &mut i, "--socket")?.to_owned());
                    }
                    "--priority" if needs_path => {
                        priority = take_value(args, &mut i, "--priority")?
                            .parse()
                            .map_err(|_| ParseError("invalid --priority".into()))?;
                    }
                    "--quick" if needs_path => quick = true,
                    "--dvs" if needs_path => dvs = true,
                    "--neglect-probabilities" if needs_path => neglect = true,
                    "--seed" if needs_path => {
                        seed = take_value(args, &mut i, "--seed")?
                            .parse()
                            .map_err(|_| ParseError("invalid --seed".into()))?;
                    }
                    "--max-seconds" if needs_path => {
                        max_seconds = Some(
                            take_value(args, &mut i, "--max-seconds")?
                                .parse()
                                .map_err(|_| ParseError("invalid --max-seconds".into()))?,
                        );
                    }
                    "--max-evals" if needs_path => {
                        max_evals = Some(
                            take_value(args, &mut i, "--max-evals")?
                                .parse()
                                .map_err(|_| ParseError("invalid --max-evals".into()))?,
                        );
                    }
                    "--timeout-seconds" if needs_path => {
                        timeout_seconds = Some(
                            take_value(args, &mut i, "--timeout-seconds")?
                                .parse()
                                .map_err(|_| ParseError("invalid --timeout-seconds".into()))?,
                        );
                    }
                    "--wait" if needs_path => wait = true,
                    "--timeout-s" if verb == "wait" => {
                        timeout_s = take_value(args, &mut i, "--timeout-s")?
                            .parse()
                            .map_err(|_| ParseError("invalid --timeout-s".into()))?;
                    }
                    "--text" if verb == "metrics" => text = true,
                    other if !other.starts_with('-') && positional.is_none() => {
                        positional = Some(other.to_owned());
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            let socket =
                socket.ok_or_else(|| ParseError("job requires --socket PATH".into()))?;
            let request = match verb.as_str() {
                "submit" => {
                    let path = positional
                        .ok_or_else(|| ParseError("job submit requires a system file".into()))?;
                    JobRequest::Submit {
                        path,
                        priority,
                        quick,
                        dvs,
                        neglect,
                        seed,
                        max_seconds,
                        max_evals,
                        timeout_seconds,
                        wait,
                    }
                }
                "status" | "result" | "cancel" | "wait" => {
                    let id = positional
                        .ok_or_else(|| ParseError(format!("job {verb} requires a job id")))?;
                    match verb.as_str() {
                        "status" => JobRequest::Status { id },
                        "result" => JobRequest::Result { id },
                        "cancel" => JobRequest::Cancel { id },
                        _ => JobRequest::Wait { id, timeout_s },
                    }
                }
                "list" => JobRequest::List,
                "metrics" => JobRequest::Metrics { text },
                "ping" => JobRequest::Ping,
                "shutdown" => JobRequest::Shutdown,
                other => {
                    return Err(ParseError(format!(
                        "unknown job request `{other}` (use submit, status, result, cancel, \
                         wait, list, metrics, ping or shutdown)"
                    )))
                }
            };
            Ok(Command::Job { socket, request })
        }
        "profile" => {
            let trace = args
                .get(1)
                .ok_or_else(|| ParseError("profile requires a trace file".into()))?
                .clone();
            let mut collapsed = false;
            let mut output = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--collapsed" => collapsed = true,
                    "-o" | "--output" => {
                        output = Some(take_value(args, &mut i, "--output")?.to_owned());
                    }
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
                i += 1;
            }
            Ok(Command::Profile { trace, collapsed, output })
        }
        other => Err(ParseError(format!("unknown command `{other}` (try `momsynth help`)"))),
    }
}

/// The help text.
pub const HELP: &str = "\
momsynth — energy-efficient co-synthesis for multi-mode embedded systems

USAGE:
    momsynth <COMMAND> [OPTIONS]

COMMANDS:
    info <system.json>       summarise a system specification
    lint <system.json>       report specification diagnostics
    dot <system.json>        export Graphviz (--what omsm|arch|mode:<n>)
    generate                 emit a system (--preset mul1..mul12|smartphone|automotive
                             | --seed S --modes M) [-o file]
    convert <spec.tgff>      import a TGFF-dialect specification [-o file]
    synth <system.json>      run co-synthesis (--dvs,
                             --neglect-probabilities, --seed S, --quick,
                             --threads N, --max-seconds T, --max-evals N,
                             --checkpoint file [--checkpoint-every N],
                             --resume file,
                             -o solution.json, --vcd trace_dir,
                             --trace-out events.jsonl,
                             --metrics-out summary.json,
                             --progress, --quiet)
    analyze <system.json>    pre-synthesis static feasibility analysis
                             with provable bounds [--report-out report.json]
    prove <system.json>      certify a synthesis run with an exact
                             branch-and-bound optimality proof
                             (--budget N|Ts, --dvs,
                             --neglect-probabilities, --seed S, --quick,
                             --report-out cert.json, --quiet)
    check <system.json> <solution.json>
                             re-verify a synthesis result against every
                             paper constraint [--report-out report.json]
    serve --root DIR         run the resident job server
                             (--socket PATH | --oneshot, --workers N,
                             --queue-capacity N, --checkpoint-every N,
                             --checkpoint-every-seconds T, --max-retries N,
                             --metrics-listen ADDR, --no-metrics)
    job <request> --socket PATH
                             client for a running server: submit
                             <system.json> [--priority P --quick --dvs
                             --neglect-probabilities --seed S
                             --max-seconds T --max-evals N
                             --timeout-seconds T --wait], status <id>,
                             result <id>, cancel <id>, wait <id>
                             [--timeout-s T], list, metrics [--text],
                             ping, shutdown
    profile <trace.jsonl>    fold a JSONL event trace into per-phase
                             self time [--collapsed] [-o file]
    help                     show this text

ANALYZE:
    Computes provable pre-synthesis bounds from the specification alone:
    per-mode critical-path lower bounds against deadlines and periods,
    hardware area floors from must-be-hardware task types, a
    probability-weighted Eq. 1 power lower bound p̄_LB, mode-transition
    reconfiguration floors and OMSM reachability. Exit code 2 when the
    specification is provably infeasible (any error finding).

PROVE:
    Runs synthesis first (same flags as `synth`: --dvs,
    --neglect-probabilities, --seed, --quick), then certifies the result
    with a dominance-pruned branch-and-bound search over the whole
    mapping space, bounded by the analyzer's admissible per-mode power
    floors. The certificate is either `optimal` (the incumbent provably
    attains the minimum fitness) or `gap-bound` with the residual
    relative gap ε; an exhausted --budget (default 100000 evaluations;
    `10s` caps wall-clock instead) degrades to a sound gap bound with
    exit code 0 — the proof never hangs. The certified best solution is
    re-proved by the independent checker before the certificate is
    trusted. --report-out writes the certificate as JSON (`certified_gap`,
    `lower_bound`, `explored`, `pruned_by_bound`, `pruned_by_dominance`).
    Exit code 2 when the specification is infeasible or the checker
    rejects the certified solution.

CHECK:
    Re-derives mapping feasibility, schedule legality, deadline/period
    satisfaction, voltage-schedule legality, transition-time limits and
    the Eq. 1 average power from the model alone (no shared code with the
    synthesis inner loop) and compares against the solution file written
    by `synth -o`. Exit code 2 when any violation is found.

SYNTH PERFORMANCE:
    --threads N evaluates each generation's candidates on N worker
    threads (0 = all cores). The search trajectory is bit-identical for
    every thread count; only the wall clock changes.

SYNTH BUDGETS AND RESILIENCE:
    --max-seconds / --max-evals stop the search once the budget is spent
    and still report the best solution found so far. Ctrl-C does the same
    (exit code 3). --checkpoint saves the GA state every N generations
    (default 10); --resume continues from such a file with the same system
    and seed.

SYNTH OBSERVABILITY:
    --trace-out writes one JSON event per line (RunStart, Generation,
    Phase, Warning, Summary); --metrics-out writes the end-of-run summary
    as a single JSON document. --progress prints a one-line-per-generation
    view on stderr; --quiet silences all human output (traces and metrics
    files are still written). Resumed runs continue the original trace's
    generation numbering and counters seamlessly. `profile` folds a trace
    written by --trace-out (or a server job trace) into per-phase self
    time; --collapsed emits flamegraph collapsed-stack lines.

SERVING:
    `serve` runs a resident, crash-safe job server: submissions are
    journalled durably, running jobs checkpoint periodically, and a
    restart resumes every interrupted job as an exact continuation of
    its trajectory. The queue is bounded: when full, lower-priority work
    is shed for higher-priority submissions and equal-priority ones are
    rejected with a typed retry-after hint. SIGTERM/Ctrl-C shuts down
    gracefully, checkpointing all running jobs first. `job` talks to the
    server over its Unix socket; `job wait` (and `submit --wait`) exits
    0/2/3 by the job's terminal state, mirroring `synth`.

SERVER MONITORING:
    The server keeps every scheduler, journal and synthesis instrument in
    one metrics registry: queue depth, admissions/sheds/rejections, worker
    utilisation, journal write/fsync latencies and per-state job lifecycle
    latencies. `job metrics` fetches a snapshot over the socket (--text
    for Prometheus exposition format); `serve --metrics-listen ADDR`
    additionally serves GET /metrics over TCP for scraping. Snapshots are
    also journalled under <root>/metrics/. `serve --no-metrics` disables
    the registry entirely (instruments become no-ops).

EXIT CODES:
    0  success, best solution feasible / check found no violations /
       prove certified (optimal or gap bound) / job verified
    1  usage, load or synthesis error / server unreachable
    2  finished, but the best solution violates constraints / check
       found violations / analyze proved the specification infeasible /
       prove hit an infeasible spec or a rejected certificate /
       job failed, timed out or was shed
    3  cancelled (Ctrl-C); best-so-far solution was reported / job was
       cancelled
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn info_and_lint_need_a_path() {
        assert_eq!(
            parse(&argv("info sys.json")).unwrap(),
            Command::Info { path: "sys.json".into() }
        );
        assert!(parse(&argv("info")).is_err());
        assert_eq!(
            parse(&argv("lint sys.json")).unwrap(),
            Command::Lint { path: "sys.json".into() }
        );
    }

    #[test]
    fn dot_targets_parse() {
        assert_eq!(
            parse(&argv("dot s.json")).unwrap(),
            Command::Dot { path: "s.json".into(), what: DotTarget::Omsm }
        );
        assert_eq!(
            parse(&argv("dot s.json --what arch")).unwrap(),
            Command::Dot { path: "s.json".into(), what: DotTarget::Arch }
        );
        assert_eq!(
            parse(&argv("dot s.json --what mode:3")).unwrap(),
            Command::Dot { path: "s.json".into(), what: DotTarget::Mode(3) }
        );
        assert!(parse(&argv("dot s.json --what nonsense")).is_err());
        assert!(parse(&argv("dot s.json --what mode:x")).is_err());
    }

    #[test]
    fn generate_flags_parse() {
        let cmd = parse(&argv("generate --preset mul7 -o out.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                preset: Some(GeneratePreset::Mul(7)),
                seed: 1,
                modes: 4,
                output: "out.json".into()
            }
        );
        let cmd = parse(&argv("generate --preset smartphone")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                preset: Some(GeneratePreset::Smartphone),
                seed: 1,
                modes: 4,
                output: "-".into()
            }
        );
        let cmd = parse(&argv("generate --preset automotive")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                preset: Some(GeneratePreset::Automotive),
                seed: 1,
                modes: 4,
                output: "-".into()
            }
        );
        let cmd = parse(&argv("generate --seed 9 --modes 3")).unwrap();
        assert_eq!(cmd, Command::Generate { preset: None, seed: 9, modes: 3, output: "-".into() });
        assert!(parse(&argv("generate --preset mul13")).is_err());
        assert!(parse(&argv("generate --seed")).is_err());
    }

    #[test]
    fn convert_parses() {
        assert_eq!(
            parse(&argv("convert spec.tgff -o sys.json")).unwrap(),
            Command::Convert { path: "spec.tgff".into(), output: "sys.json".into() }
        );
        assert!(parse(&argv("convert")).is_err());
    }

    #[test]
    fn synth_flags_parse() {
        let cmd = parse(&argv(
            "synth s.json --dvs --neglect-probabilities --seed 4 --quick -o sol.json --vcd traces",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Synth {
                path: "s.json".into(),
                dvs: true,
                neglect: true,
                seed: 4,
                quick: true,
                threads: 1,
                max_seconds: None,
                max_evals: None,
                checkpoint: None,
                checkpoint_every: 10,
                resume: None,
                output: Some("sol.json".into()),
                vcd: Some("traces".into()),
                trace_out: None,
                metrics_out: None,
                progress: false,
                quiet: false,
            }
        );
        assert!(parse(&argv("synth")).is_err());
        assert!(parse(&argv("synth s.json --bogus")).is_err());
    }

    #[test]
    fn synth_threads_flag_parses() {
        match parse(&argv("synth s.json --threads 8")).unwrap() {
            Command::Synth { threads, .. } => assert_eq!(threads, 8),
            other => panic!("unexpected parse: {other:?}"),
        }
        match parse(&argv("synth s.json --threads 0")).unwrap() {
            Command::Synth { threads, .. } => assert_eq!(threads, 0),
            other => panic!("unexpected parse: {other:?}"),
        }
        match parse(&argv("synth s.json")).unwrap() {
            Command::Synth { threads, .. } => assert_eq!(threads, 1),
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("synth s.json --threads")).is_err());
        assert!(parse(&argv("synth s.json --threads many")).is_err());
    }

    #[test]
    fn synth_telemetry_flags_parse() {
        let cmd = parse(&argv(
            "synth s.json --trace-out events.jsonl --metrics-out summary.json --progress",
        ))
        .unwrap();
        match cmd {
            Command::Synth { trace_out, metrics_out, progress, quiet, .. } => {
                assert_eq!(trace_out.as_deref(), Some("events.jsonl"));
                assert_eq!(metrics_out.as_deref(), Some("summary.json"));
                assert!(progress);
                assert!(!quiet);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        match parse(&argv("synth s.json -q")).unwrap() {
            Command::Synth { quiet, .. } => assert!(quiet),
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("synth s.json --progress --quiet")).is_err());
        assert!(parse(&argv("synth s.json --trace-out")).is_err());
    }

    #[test]
    fn synth_resilience_flags_parse() {
        let cmd = parse(&argv(
            "synth s.json --max-seconds 1.5 --max-evals 500 \
             --checkpoint cp.json --checkpoint-every 3 --resume old.json",
        ))
        .unwrap();
        match cmd {
            Command::Synth {
                max_seconds,
                max_evals,
                checkpoint,
                checkpoint_every,
                resume,
                ..
            } => {
                assert_eq!(max_seconds, Some(1.5));
                assert_eq!(max_evals, Some(500));
                assert_eq!(checkpoint.as_deref(), Some("cp.json"));
                assert_eq!(checkpoint_every, 3);
                assert_eq!(resume.as_deref(), Some("old.json"));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("synth s.json --max-seconds nope")).is_err());
        assert!(parse(&argv("synth s.json --max-seconds -2")).is_err());
        assert!(parse(&argv("synth s.json --max-evals -1")).is_err());
        assert!(parse(&argv("synth s.json --checkpoint")).is_err());
    }

    #[test]
    fn check_parses() {
        assert_eq!(
            parse(&argv("check sys.json sol.json")).unwrap(),
            Command::Check { path: "sys.json".into(), solution: "sol.json".into(), report_out: None }
        );
        assert_eq!(
            parse(&argv("check sys.json sol.json --report-out rep.json")).unwrap(),
            Command::Check {
                path: "sys.json".into(),
                solution: "sol.json".into(),
                report_out: Some("rep.json".into()),
            }
        );
        assert!(parse(&argv("check sys.json")).is_err());
        assert!(parse(&argv("check")).is_err());
        assert!(parse(&argv("check sys.json sol.json --report-out")).is_err());
        assert!(parse(&argv("check sys.json sol.json --bogus")).is_err());
    }

    #[test]
    fn analyze_parses() {
        assert_eq!(
            parse(&argv("analyze sys.json")).unwrap(),
            Command::Analyze { path: "sys.json".into(), report_out: None }
        );
        assert_eq!(
            parse(&argv("analyze sys.json --report-out rep.json")).unwrap(),
            Command::Analyze { path: "sys.json".into(), report_out: Some("rep.json".into()) }
        );
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze sys.json --report-out")).is_err());
        assert!(parse(&argv("analyze sys.json --bogus")).is_err());
    }

    #[test]
    fn prove_parses() {
        assert_eq!(
            parse(&argv("prove sys.json")).unwrap(),
            Command::Prove {
                path: "sys.json".into(),
                budget: ProveBudget::Evals(100_000),
                dvs: false,
                neglect: false,
                seed: 0,
                quick: false,
                report_out: None,
                quiet: false,
            }
        );
        assert_eq!(
            parse(&argv(
                "prove sys.json --budget 5000 --dvs --neglect-probabilities --seed 7 --quick \
                 --report-out cert.json -q"
            ))
            .unwrap(),
            Command::Prove {
                path: "sys.json".into(),
                budget: ProveBudget::Evals(5000),
                dvs: true,
                neglect: true,
                seed: 7,
                quick: true,
                report_out: Some("cert.json".into()),
                quiet: true,
            }
        );
        match parse(&argv("prove sys.json --budget 2.5s")).unwrap() {
            Command::Prove { budget, .. } => assert_eq!(budget, ProveBudget::Seconds(2.5)),
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("prove")).is_err());
        assert!(parse(&argv("prove sys.json --budget")).is_err());
        assert!(parse(&argv("prove sys.json --budget nope")).is_err());
        assert!(parse(&argv("prove sys.json --budget -3s")).is_err());
        assert!(parse(&argv("prove sys.json --bogus")).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let cmd = parse(&argv(
            "serve --root jobs --socket momsynth.sock --workers 4 --queue-capacity 8 \
             --checkpoint-every 3 --checkpoint-every-seconds 1.5 --max-retries 5",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                root: "jobs".into(),
                socket: Some("momsynth.sock".into()),
                oneshot: false,
                workers: 4,
                queue_capacity: 8,
                checkpoint_every: 3,
                checkpoint_every_seconds: Some(1.5),
                max_retries: 5,
                metrics_listen: None,
                metrics: true,
            }
        );
        match parse(&argv("serve --root jobs --oneshot")).unwrap() {
            Command::Serve { oneshot, socket, metrics, metrics_listen, .. } => {
                assert!(oneshot);
                assert_eq!(socket, None);
                assert!(metrics, "metrics are on by default");
                assert_eq!(metrics_listen, None);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("serve --socket s.sock")).is_err(), "--root is required");
        assert!(parse(&argv("serve --root jobs")).is_err(), "a transport is required");
        assert!(parse(&argv("serve --root jobs --oneshot --socket s.sock")).is_err());
        assert!(parse(&argv("serve --root jobs --oneshot --checkpoint-every-seconds 0")).is_err());
    }

    #[test]
    fn serve_metrics_flags_parse() {
        match parse(&argv("serve --root jobs --oneshot --metrics-listen 127.0.0.1:9187")).unwrap()
        {
            Command::Serve { metrics_listen, metrics, .. } => {
                assert_eq!(metrics_listen.as_deref(), Some("127.0.0.1:9187"));
                assert!(metrics);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        match parse(&argv("serve --root jobs --oneshot --no-metrics")).unwrap() {
            Command::Serve { metrics, .. } => assert!(!metrics),
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("serve --root jobs --oneshot --metrics-listen")).is_err());
        assert!(
            parse(&argv("serve --root jobs --oneshot --no-metrics --metrics-listen 127.0.0.1:0"))
                .is_err(),
            "an exposition endpoint needs the registry"
        );
    }

    #[test]
    fn job_requests_parse() {
        let cmd = parse(&argv(
            "job submit sys.json --socket s.sock --priority 7 --quick --seed 3 \
             --timeout-seconds 30 --wait",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Job {
                socket: "s.sock".into(),
                request: JobRequest::Submit {
                    path: "sys.json".into(),
                    priority: 7,
                    quick: true,
                    dvs: false,
                    neglect: false,
                    seed: 3,
                    max_seconds: None,
                    max_evals: None,
                    timeout_seconds: Some(30.0),
                    wait: true,
                },
            }
        );
        assert_eq!(
            parse(&argv("job status job-000001 --socket s.sock")).unwrap(),
            Command::Job {
                socket: "s.sock".into(),
                request: JobRequest::Status { id: "job-000001".into() },
            }
        );
        assert_eq!(
            parse(&argv("job wait job-000002 --socket s.sock --timeout-s 5")).unwrap(),
            Command::Job {
                socket: "s.sock".into(),
                request: JobRequest::Wait { id: "job-000002".into(), timeout_s: 5.0 },
            }
        );
        assert_eq!(
            parse(&argv("job list --socket s.sock")).unwrap(),
            Command::Job { socket: "s.sock".into(), request: JobRequest::List }
        );
        assert_eq!(
            parse(&argv("job metrics --socket s.sock")).unwrap(),
            Command::Job { socket: "s.sock".into(), request: JobRequest::Metrics { text: false } }
        );
        assert_eq!(
            parse(&argv("job metrics --socket s.sock --text")).unwrap(),
            Command::Job { socket: "s.sock".into(), request: JobRequest::Metrics { text: true } }
        );
        assert!(parse(&argv("job")).is_err());
        assert!(parse(&argv("job submit sys.json")).is_err(), "--socket is required");
        assert!(parse(&argv("job status --socket s.sock")).is_err(), "an id is required");
        assert!(parse(&argv("job frobnicate --socket s.sock")).is_err());
        assert!(parse(&argv("job list --socket s.sock --priority 3")).is_err());
        assert!(parse(&argv("job list --socket s.sock --text")).is_err());
    }

    #[test]
    fn profile_parses() {
        assert_eq!(
            parse(&argv("profile events.jsonl")).unwrap(),
            Command::Profile { trace: "events.jsonl".into(), collapsed: false, output: None }
        );
        assert_eq!(
            parse(&argv("profile events.jsonl --collapsed -o folded.txt")).unwrap(),
            Command::Profile {
                trace: "events.jsonl".into(),
                collapsed: true,
                output: Some("folded.txt".into()),
            }
        );
        assert!(parse(&argv("profile")).is_err());
        assert!(parse(&argv("profile events.jsonl --bogus")).is_err());
        assert!(parse(&argv("profile events.jsonl -o")).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = parse(&argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }
}
