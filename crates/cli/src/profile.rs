//! `momsynth profile` — fold a JSONL telemetry trace into per-phase
//! self time.
//!
//! The synthesis loop emits accumulated [`SpanEvent`]s with
//! flamegraph-style collapsed-stack paths (`run;fitness_eval;...`).
//! This module aggregates them across every run and attempt found in a
//! trace file, derives each node's *self* time (its total minus its
//! direct children's totals), and renders either a human table or
//! collapsed-stack lines (`path self_nanos`) that standard flamegraph
//! tooling consumes directly.
//!
//! Traces written by the job server wrap events as
//! `{"job": ..., "event": {...}}` lines; both shapes are accepted on a
//! per-line basis. Traces from before span events existed are folded
//! from their `Phase` timing events instead, under the same paths.

use std::collections::BTreeMap;

use momsynth_core::telemetry::{Event, JobEvent, SpanEvent};

/// One aggregated call-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Collapsed-stack path (`;`-separated, root first).
    pub path: String,
    /// Total accumulated nanoseconds across all merged spans.
    pub total_nanos: u64,
    /// Number of spans merged into this node.
    pub spans: u64,
    /// Total minus the totals of direct children (never negative).
    pub self_nanos: u64,
}

/// The folded profile of one trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Distinct trace ids seen, in first-seen order.
    pub trace_ids: Vec<String>,
    /// Aggregated nodes, sorted by path.
    pub nodes: Vec<ProfileNode>,
    /// Lines that parsed as JSON but not as a known event shape.
    pub skipped_lines: usize,
    /// Whether the profile was folded from legacy `Phase` events
    /// because the trace carries no span events.
    pub from_phase_events: bool,
}

impl ProfileReport {
    /// Folds the JSONL text of a trace file. Returns `None` when the
    /// trace contains no timing data at all.
    pub fn from_trace(text: &str) -> Option<Self> {
        let mut spans: Vec<SpanEvent> = Vec::new();
        let mut phase_fallback: Vec<SpanEvent> = Vec::new();
        let mut trace_ids: Vec<String> = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let event = serde_json::from_str::<Event>(line).ok().or_else(|| {
                serde_json::from_str::<JobEvent>(line).ok().map(|tagged| tagged.event)
            });
            let Some(event) = event else {
                skipped += 1;
                continue;
            };
            match event {
                Event::Span(span) => {
                    if !span.trace_id.is_empty() && !trace_ids.contains(&span.trace_id) {
                        trace_ids.push(span.trace_id.clone());
                    }
                    spans.push(span);
                }
                Event::RunStart(start)
                    if !start.trace_id.is_empty() && !trace_ids.contains(&start.trace_id) =>
                {
                    trace_ids.push(start.trace_id.clone());
                }
                // Legacy traces: rebuild the span paths from the phase
                // taxonomy (depth 0 nests under `run`, depth 1 under
                // `run;fitness_eval`).
                Event::Phase(timing) => {
                    let path = if timing.phase.depth() == 0 {
                        format!("run;{}", timing.phase.name())
                    } else {
                        format!("run;fitness_eval;{}", timing.phase.name())
                    };
                    phase_fallback.push(SpanEvent {
                        trace_id: String::new(),
                        path,
                        nanos: timing.nanos,
                        spans: timing.spans,
                    });
                }
                _ => {}
            }
        }
        let from_phase_events = spans.is_empty();
        if from_phase_events {
            spans = phase_fallback;
        }
        if spans.is_empty() {
            return None;
        }

        let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for span in &spans {
            let entry = totals.entry(span.path.clone()).or_insert((0, 0));
            entry.0 += span.nanos;
            entry.1 += span.spans;
        }
        let nodes = totals
            .iter()
            .map(|(path, &(total_nanos, span_count))| {
                let prefix = format!("{path};");
                let children_nanos: u64 = totals
                    .iter()
                    .filter(|(p, _)| {
                        p.strip_prefix(&prefix).is_some_and(|rest| !rest.contains(';'))
                    })
                    .map(|(_, &(n, _))| n)
                    .sum();
                ProfileNode {
                    path: path.clone(),
                    total_nanos,
                    spans: span_count,
                    self_nanos: total_nanos.saturating_sub(children_nanos),
                }
            })
            .collect();
        Some(Self { trace_ids, nodes, skipped_lines: skipped, from_phase_events })
    }

    /// Collapsed-stack rendering (`path self_nanos`, one node per
    /// line), the input format of standard flamegraph tooling.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            if node.self_nanos > 0 {
                out.push_str(&format!("{} {}\n", node.path, node.self_nanos));
            }
        }
        out
    }

    /// Human-readable self-time table, widest self time first.
    pub fn to_table(&self) -> String {
        let total: u64 = self.nodes.iter().map(|n| n.self_nanos).sum();
        let mut rows: Vec<&ProfileNode> = self.nodes.iter().collect();
        rows.sort_by(|a, b| b.self_nanos.cmp(&a.self_nanos).then(a.path.cmp(&b.path)));
        let mut out = String::new();
        if !self.trace_ids.is_empty() {
            out.push_str(&format!("trace ids: {}\n", self.trace_ids.join(", ")));
        }
        if self.from_phase_events {
            out.push_str("(no span events in trace; folded from phase timings)\n");
        }
        out.push_str(&format!(
            "{:<44} {:>12} {:>12} {:>8} {:>7}\n",
            "PATH", "TOTAL", "SELF", "SPANS", "SELF%"
        ));
        for node in rows {
            #[allow(clippy::cast_precision_loss)]
            let percent = if total == 0 {
                0.0
            } else {
                node.self_nanos as f64 / total as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<44} {:>12} {:>12} {:>8} {:>6.1}%\n",
                node.path,
                format_nanos(node.total_nanos),
                format_nanos(node.self_nanos),
                node.spans,
                percent,
            ));
        }
        out.push_str(&format!("accounted self time: {}\n", format_nanos(total)));
        out
    }
}

/// `1234567890` → `"1.235 s"`, scaled to s/ms/µs as appropriate.
#[allow(clippy::cast_precision_loss)]
fn format_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if n >= 1e9 {
        format!("{:.3} s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.3} ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.3} µs", n / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(trace_id: &str, path: &str, nanos: u64, spans: u64) -> String {
        serde_json::to_string(&Event::Span(SpanEvent {
            trace_id: trace_id.to_owned(),
            path: path.to_owned(),
            nanos,
            spans,
        }))
        .unwrap()
    }

    #[test]
    fn folds_spans_into_self_time() {
        let text = [
            span_line("t-1", "run", 100, 1),
            span_line("t-1", "run;fitness_eval", 80, 10),
            span_line("t-1", "run;fitness_eval;list_scheduling", 30, 10),
            span_line("t-1", "run;fitness_eval;core_allocation", 20, 10),
        ]
        .join("\n");
        let report = ProfileReport::from_trace(&text).expect("spans present");
        assert!(!report.from_phase_events);
        assert_eq!(report.trace_ids, vec!["t-1"]);
        let get = |p: &str| report.nodes.iter().find(|n| n.path == p).unwrap();
        assert_eq!(get("run").self_nanos, 20, "100 - 80 (direct child only)");
        assert_eq!(get("run;fitness_eval").self_nanos, 30, "80 - 30 - 20");
        assert_eq!(get("run;fitness_eval;list_scheduling").self_nanos, 30);
        let collapsed = report.to_collapsed();
        assert!(collapsed.contains("run 20\n"), "{collapsed}");
        assert!(collapsed.contains("run;fitness_eval 30\n"), "{collapsed}");
    }

    #[test]
    fn merges_spans_across_runs_and_accepts_job_tagged_lines() {
        let tagged = serde_json::to_string(&JobEvent {
            job: "job-000001".into(),
            event: Event::Span(SpanEvent {
                trace_id: "t-2".into(),
                path: "run".into(),
                nanos: 50,
                spans: 1,
            }),
        })
        .unwrap();
        let text = format!("{}\n{tagged}\nnot json at all\n", span_line("t-1", "run", 30, 1));
        let report = ProfileReport::from_trace(&text).unwrap();
        assert_eq!(report.trace_ids, vec!["t-1", "t-2"]);
        assert_eq!(report.skipped_lines, 1);
        let run = report.nodes.iter().find(|n| n.path == "run").unwrap();
        assert_eq!(run.total_nanos, 80);
        assert_eq!(run.spans, 2);
    }

    #[test]
    fn legacy_phase_traces_fold_under_synthesized_paths() {
        use momsynth_core::telemetry::{Phase, PhaseTiming};
        let lines: Vec<String> = [
            (Phase::FitnessEval, 90u64),
            (Phase::ListScheduling, 40),
            (Phase::VoltageScaling, 10),
        ]
        .iter()
        .map(|&(phase, nanos)| {
            serde_json::to_string(&Event::Phase(PhaseTiming {
                phase,
                nanos,
                spans: 4,
                depth: phase.depth(),
            }))
            .unwrap()
        })
        .collect();
        let report = ProfileReport::from_trace(&lines.join("\n")).unwrap();
        assert!(report.from_phase_events);
        let eval = report.nodes.iter().find(|n| n.path == "run;fitness_eval").unwrap();
        assert_eq!(eval.self_nanos, 40, "90 - 40 - 10");
        assert!(report
            .nodes
            .iter()
            .any(|n| n.path == "run;fitness_eval;list_scheduling" && n.self_nanos == 40));
    }

    #[test]
    fn empty_or_span_free_traces_yield_none() {
        assert_eq!(ProfileReport::from_trace(""), None);
        assert_eq!(ProfileReport::from_trace("{\"bogus\": 1}\n"), None);
    }

    #[test]
    fn nanos_format_scales() {
        assert_eq!(format_nanos(12), "12 ns");
        assert_eq!(format_nanos(12_345), "12.345 µs");
        assert_eq!(format_nanos(12_345_678), "12.346 ms");
        assert_eq!(format_nanos(1_234_567_890), "1.235 s");
    }
}
