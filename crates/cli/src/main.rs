//! `momsynth` — command-line front end for multi-mode co-synthesis.
//!
//! See [`args::HELP`] or run `momsynth help` for usage. System
//! specifications are the JSON serialisation of
//! [`momsynth_model::System`]; the `generate` subcommand produces them and
//! `synth` consumes them.
//!
//! # Exit codes
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | success; for `synth`, the best solution is feasible        |
//! | 1    | usage error, unreadable/invalid input, or synthesis failure|
//! | 2    | `synth` finished but the best solution violates constraints|
//! | 3    | `synth` was cancelled (Ctrl-C); best-so-far was reported   |

mod args;
mod profile;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use momsynth_check::StoredSolution;
use momsynth_core::telemetry::{Fanout, JsonlSink, ProgressSink, Sink, WarningSink};
use momsynth_core::{
    Checkpoint, CheckpointSpec, ProveOptions, StopReason, SynthControl, SynthesisConfig,
    SynthesisError, Synthesizer,
};
use momsynth_gen::suite::{generate, mul, GeneratorParams};
use momsynth_model::{dot, lint, System};
use momsynth_power::energy_breakdown;

use args::{parse, Command, DotTarget, GeneratePreset, JobRequest, ProveBudget, HELP};

/// `synth` finished but the best solution violates constraints.
const EXIT_INFEASIBLE: u8 = 2;
/// `synth` was cancelled (Ctrl-C) and reported its best-so-far solution.
const EXIT_CANCELLED: u8 = 3;

/// Cooperative Ctrl-C handling: the first SIGINT raises a stop flag the
/// synthesis loop polls between evaluations, so the run winds down and
/// still reports (and checkpoints) its best-so-far solution.
#[cfg(unix)]
#[allow(unsafe_code)] // libc signal(2) shim; the only unsafe in the workspace
mod sigint {
    use momsynth_sync::sync::atomic::{AtomicBool, Ordering};

    /// Raised by the signal handler, polled by the synthesis loop.
    /// SeqCst on both sides: a signal handler may fire on any thread
    /// and this flag is the only channel out of it.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn handle(_: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGINT handler (idempotent).
    pub fn install() {
        unsafe {
            signal(SIGINT, handle);
        }
    }

    /// Additionally treats SIGTERM as a graceful-stop request (the job
    /// server installs this so service managers can stop it cleanly).
    pub fn install_term() {
        unsafe {
            signal(SIGTERM, handle);
        }
    }
}

#[cfg(not(unix))]
mod sigint {
    use momsynth_sync::sync::atomic::AtomicBool;

    /// Never raised on platforms without the Unix signal shim.
    pub static STOP: AtomicBool = AtomicBool::new(false);

    /// No-op.
    pub fn install() {}

    /// No-op.
    pub fn install_term() {}
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(command) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_system(path: &str) -> Result<System, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(serde_json::from_str(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))?)
}

fn write_output(path: &str, contents: &str, quiet: bool) -> Result<(), Box<dyn std::error::Error>> {
    if path == "-" {
        print!("{contents}");
    } else {
        std::fs::write(path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        if !quiet {
            eprintln!("wrote {path}");
        }
    }
    Ok(())
}

fn run(command: Command) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match command {
        Command::Help => {
            print!("{HELP}");
            Ok(ExitCode::SUCCESS)
        }
        Command::Info { path } => {
            let system = load_system(&path)?;
            println!("{}", system.summary());
            for (_, mode) in system.omsm().modes() {
                println!(
                    "  {:<20} Ψ={:<6.3} {:>4} tasks {:>4} edges  period {:.3} ms",
                    mode.name(),
                    mode.probability(),
                    mode.graph().task_count(),
                    mode.graph().comm_count(),
                    mode.graph().period().as_millis(),
                );
            }
            let shared = system.shared_types();
            if !shared.is_empty() {
                let names: Vec<&str> =
                    shared.iter().map(|&t| system.tech().type_name(t)).collect();
                println!("shared task types: {}", names.join(", "));
            }
            let warnings = lint::lint_system(&system);
            if warnings.is_empty() {
                println!("lint: clean");
            } else {
                println!("lint: {} warning(s) — run `momsynth lint`", warnings.len());
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Lint { path } => {
            let system = load_system(&path)?;
            let warnings = lint::lint_system(&system);
            if warnings.is_empty() {
                println!("no diagnostics");
            }
            for w in warnings {
                println!("warning: {w}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Dot { path, what } => {
            let system = load_system(&path)?;
            let text = match what {
                DotTarget::Omsm => dot::omsm_to_dot(system.omsm()),
                DotTarget::Arch => dot::architecture_to_dot(system.arch()),
                DotTarget::Mode(n) => {
                    if n >= system.omsm().mode_count() {
                        return Err(format!(
                            "mode {n} out of range (system has {})",
                            system.omsm().mode_count()
                        )
                        .into());
                    }
                    dot::task_graph_to_dot(
                        system.omsm().mode(momsynth_model::ids::ModeId::new(n)).graph(),
                    )
                }
            };
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        Command::Convert { path, output } => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let stem = std::path::Path::new(&path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("imported");
            let system = momsynth_gen::tgff::parse_system(stem, &text)?;
            let json = serde_json::to_string_pretty(&system)?;
            write_output(&output, &json, false)?;
            eprintln!("{}", system.summary());
            Ok(ExitCode::SUCCESS)
        }
        Command::Generate { preset, seed, modes, output } => {
            let system = match preset {
                Some(GeneratePreset::Mul(n)) => mul(n),
                Some(GeneratePreset::Smartphone) => momsynth_gen::smartphone::smartphone(),
                Some(GeneratePreset::Automotive) => momsynth_gen::automotive::automotive_ecu(),
                None => {
                    let mut params = GeneratorParams::new(format!("generated_{seed}"), seed);
                    params.modes = modes;
                    generate(&params)
                }
            };
            let json = serde_json::to_string_pretty(&system)?;
            write_output(&output, &json, false)?;
            eprintln!("{}", system.summary());
            Ok(ExitCode::SUCCESS)
        }
        Command::Analyze { path, report_out } => {
            let system = load_system(&path)?;
            let analysis = momsynth_analyze::analyze_system(&system);
            println!("{analysis}");
            if let Some(p) = &report_out {
                write_output(p, &serde_json::to_string_pretty(&analysis.to_json())?, false)?;
            }
            Ok(if analysis.has_errors() {
                ExitCode::from(EXIT_INFEASIBLE)
            } else {
                ExitCode::SUCCESS
            })
        }
        Command::Prove { path, budget, dvs, neglect, seed, quick, report_out, quiet } => {
            let system = load_system(&path)?;
            let mut config = if quick {
                SynthesisConfig::fast_preset(seed)
            } else {
                SynthesisConfig::new(seed)
            };
            config.probability_aware = !neglect;
            if dvs {
                config = config.with_dvs();
            }
            if !quiet {
                eprintln!(
                    "synthesising `{}` for an incumbent ({}, {}) …",
                    system.name(),
                    if neglect { "probability-neglecting" } else { "probability-aware" },
                    if dvs { "DVS" } else { "fixed voltage" },
                );
            }
            let result = match Synthesizer::new(&system, config.clone()).run() {
                Ok(result) => result,
                Err(SynthesisError::Infeasible(analysis)) => {
                    if !quiet {
                        eprintln!("specification is provably infeasible; nothing to certify");
                        print!("{analysis}");
                    }
                    return Ok(ExitCode::from(EXIT_INFEASIBLE));
                }
                Err(e) => return Err(e.into()),
            };
            let mut options =
                ProveOptions { incumbent: Some(result.best.fitness), ..ProveOptions::default() };
            match budget {
                ProveBudget::Evals(n) => options.max_evals = n,
                ProveBudget::Seconds(t) => {
                    options.max_evals = u64::MAX;
                    options.deadline = Some(
                        std::time::Instant::now() + std::time::Duration::from_secs_f64(t),
                    );
                }
            }
            if !quiet {
                eprintln!("certifying with branch-and-bound ({budget:?}) …");
            }
            let cert = match momsynth_core::prove(&system, &config, &options) {
                Ok(cert) => cert,
                Err(SynthesisError::Infeasible(analysis)) => {
                    if !quiet {
                        print!("{analysis}");
                    }
                    return Ok(ExitCode::from(EXIT_INFEASIBLE));
                }
                Err(e) => return Err(e.into()),
            };

            // Re-prove the reported best — the search's own winner when
            // it undercut the GA, the GA's otherwise — with the
            // independent checker before trusting the certificate.
            let reported = cert.best.as_ref().unwrap_or(&result.best);
            let stored = StoredSolution {
                mapping: reported.mapping.clone(),
                alloc: reported.alloc.clone(),
                schedules: reported.schedules.clone(),
                voltage_schedules: Some(reported.voltage_schedules.clone()),
                power: reported.power.clone(),
            };
            let report = stored.check(&system);
            if !report.is_clean() {
                if !quiet {
                    eprintln!("certified solution failed independent re-verification:");
                    print!("{report}");
                }
                return Ok(ExitCode::from(EXIT_INFEASIBLE));
            }

            if !quiet {
                println!("certificate: {}", cert.status);
                println!("  GA best fitness        {:.9}", result.best.fitness);
                if let Some(best) = cert.best_fitness {
                    println!("  certified best fitness {best:.9}");
                }
                println!("  certified lower bound  {:.9}", cert.lower_bound);
                // Search spaces routinely exceed u64; keep big ones
                // readable in scientific notation.
                let space = if cert.search_space < 1e9 {
                    format!("{:.0}", cert.search_space)
                } else {
                    format!("{:.2e}", cert.search_space)
                };
                println!(
                    "  searched {space} assignments: {} leaves priced, {} subtrees cut by bound",
                    cert.explored, cert.pruned_by_bound,
                );
                println!(
                    "  static domain pruning: {} of {} candidates ({} deadline, {} dominance)",
                    cert.domain_reduction.pruned_by_deadline
                        + cert.domain_reduction.pruned_by_dominance,
                    cert.domain_reduction.total_candidates,
                    cert.domain_reduction.pruned_by_deadline,
                    cert.domain_reduction.pruned_by_dominance,
                );
                println!("  independent re-verification: clean");
            }

            if let Some(p) = &report_out {
                let mut json = cert.to_json();
                if let serde_json::Value::Object(fields) = &mut json {
                    fields.push(("system".into(), serde_json::json!(system.name())));
                    fields.push((
                        "ga_best_fitness".into(),
                        serde_json::json!(result.best.fitness),
                    ));
                }
                write_output(p, &serde_json::to_string_pretty(&json)?, quiet)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Check { path, solution, report_out } => {
            let system = load_system(&path)?;
            let text = std::fs::read_to_string(&solution)
                .map_err(|e| format!("cannot read `{solution}`: {e}"))?;
            let value: serde_json::Value = serde_json::from_str(&text)
                .map_err(|e| format!("cannot parse `{solution}`: {e}"))?;
            let stored = StoredSolution::from_json(&value)
                .map_err(|e| format!("`{solution}` is not a solution report: {e}"))?;
            // A deeply corrupted solution (e.g. ids far out of range that
            // the shape pass cannot anticipate) may panic inside model
            // accessors; surface that as a load error, not a crash.
            let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                stored.check(&system)
            }))
            .map_err(|_| format!("`{solution}` is malformed beyond checking"))?;
            println!("{report}");
            if let Some(p) = &report_out {
                write_output(p, &serde_json::to_string_pretty(&report.to_json())?, false)?;
            }
            Ok(if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_INFEASIBLE)
            })
        }
        Command::Synth {
            path,
            dvs,
            neglect,
            seed,
            quick,
            threads,
            max_seconds,
            max_evals,
            checkpoint,
            checkpoint_every,
            resume,
            output,
            vcd,
            trace_out,
            metrics_out,
            progress,
            quiet,
        } => {
            let system = load_system(&path)?;
            let mut config = if quick {
                SynthesisConfig::fast_preset(seed)
            } else {
                SynthesisConfig::new(seed)
            };
            config.probability_aware = !neglect;
            if dvs {
                config = config.with_dvs();
            }
            config.threads = threads;
            config.ga.max_seconds = max_seconds;
            config.ga.max_evaluations = max_evals;
            let resume = match resume {
                Some(p) => {
                    // Torn or corrupt primary checkpoints fall back to the
                    // `.bak` sibling kept by every save, with a warning.
                    let (cp, recovered) = Checkpoint::load_resilient(Path::new(&p))?;
                    if let Some(note) = recovered {
                        eprintln!("warning: {note}");
                    }
                    Some(cp)
                }
                None => None,
            };
            sigint::install();

            // Telemetry: a fan-out of whatever the flags ask for. The
            // warning-only sink keeps checkpoint-save failures visible on
            // stderr without the cost of building trace events.
            let mut sink = Fanout::new();
            if let Some(p) = &trace_out {
                let jsonl = JsonlSink::create(Path::new(p))
                    .map_err(|e| format!("cannot create `{p}`: {e}"))?;
                sink.push(Box::new(jsonl));
            }
            if progress {
                sink.push(Box::new(ProgressSink));
            } else if !quiet {
                sink.push(Box::new(WarningSink));
            }

            let control = SynthControl {
                stop: Some(&sigint::STOP),
                checkpoint: checkpoint
                    .map(|p| CheckpointSpec::every_generations(PathBuf::from(p), checkpoint_every)),
                resume,
                sink: Some(&sink),
                trace_id: None,
            };
            if !quiet {
                eprintln!(
                    "synthesising `{}` ({}, {}) …",
                    system.name(),
                    if neglect { "probability-neglecting" } else { "probability-aware" },
                    if dvs { "DVS" } else { "fixed voltage" },
                );
            }
            let synthesizer = Synthesizer::new(&system, config);
            let result = match synthesizer.run_controlled(control) {
                Ok(result) => result,
                Err(SynthesisError::Infeasible(analysis)) => {
                    // The pre-synthesis analyzer proved no implementation
                    // can meet the constraints; report the proof instead
                    // of a solution and exit like an infeasible best.
                    sink.flush();
                    if !quiet {
                        eprintln!("specification is provably infeasible; synthesis not started");
                        print!("{analysis}");
                    }
                    return Ok(ExitCode::from(EXIT_INFEASIBLE));
                }
                Err(e) => return Err(e.into()),
            };
            sink.flush();
            if !quiet {
                print_solution(&system, &result);
            }

            if let Some(p) = &metrics_out {
                let summary = result.summary(&system, synthesizer.config());
                write_output(p, &serde_json::to_string_pretty(&summary)?, quiet)?;
            }

            if let Some(dir) = vcd {
                std::fs::create_dir_all(&dir)
                    .map_err(|e| format!("cannot create `{dir}`: {e}"))?;
                for schedule in &result.best.schedules {
                    let mode = system.omsm().mode(schedule.mode());
                    let text = momsynth_sched::schedule_to_vcd(&system, schedule);
                    let file = format!("{dir}/{}.vcd", mode.name().replace(char::is_whitespace, "_"));
                    std::fs::write(&file, text)
                        .map_err(|e| format!("cannot write `{file}`: {e}"))?;
                    if !quiet {
                        eprintln!("wrote {file}");
                    }
                }
            }

            if let Some(path) = output {
                let report = result.report(&system);
                write_output(&path, &serde_json::to_string_pretty(&report)?, quiet)?;
            }
            Ok(if result.stop_reason == StopReason::Cancelled {
                ExitCode::from(EXIT_CANCELLED)
            } else if !result.best.is_feasible() {
                ExitCode::from(EXIT_INFEASIBLE)
            } else {
                ExitCode::SUCCESS
            })
        }
        Command::Serve {
            root,
            socket,
            oneshot,
            workers,
            queue_capacity,
            checkpoint_every,
            checkpoint_every_seconds,
            max_retries,
            metrics_listen,
            metrics,
        } => {
            use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
            use momsynth_sync::sync::Arc;

            let mut config = momsynth_serve::ServerConfig::new(PathBuf::from(&root));
            config.workers = workers;
            config.queue_capacity = queue_capacity;
            config.checkpoint_every = checkpoint_every;
            config.checkpoint_every_seconds = checkpoint_every_seconds;
            config.max_retries = max_retries;
            config.metrics = metrics;
            let server = momsynth_serve::Server::start(config)?;
            for note in server.recovery_notes() {
                eprintln!("recovery: {note}");
            }
            sigint::install();
            sigint::install_term();
            // Prometheus exposition endpoint, stopped when serving ends.
            let exposition_stop = Arc::new(AtomicBool::new(false));
            let exposition = match &metrics_listen {
                Some(addr) => {
                    let (bound, handle) = momsynth_serve::spawn_exposition(
                        addr,
                        server.metrics(),
                        Arc::clone(&exposition_stop),
                    )
                    .map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
                    eprintln!("metrics exposition on http://{bound}/metrics");
                    Some(handle)
                }
                None => None,
            };
            let served = if oneshot {
                let stdin = std::io::stdin();
                let stdout = std::io::stdout();
                momsynth_serve::socket::serve_stdio(
                    &server,
                    stdin.lock(),
                    stdout.lock(),
                    &sigint::STOP,
                );
                server.shutdown();
                Ok(ExitCode::SUCCESS)
            } else {
                serve_on_socket(server, &socket.expect("parser guarantees a socket"), &root)
            };
            exposition_stop.store(true, Ordering::Release);
            if let Some(handle) = exposition {
                let _ = handle.join();
            }
            served
        }
        Command::Job { socket, request } => run_job_client(&socket, &request),
        Command::Profile { trace, collapsed, output } => {
            let text = std::fs::read_to_string(&trace)
                .map_err(|e| format!("cannot read `{trace}`: {e}"))?;
            let Some(report) = profile::ProfileReport::from_trace(&text) else {
                return Err(format!("`{trace}` contains no timing data").into());
            };
            if report.skipped_lines > 0 {
                eprintln!("warning: skipped {} unparseable line(s)", report.skipped_lines);
            }
            let rendered =
                if collapsed { report.to_collapsed() } else { report.to_table() };
            match output {
                Some(p) => write_output(&p, &rendered, false)?,
                None => print!("{rendered}"),
            }
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// Runs the job server on a Unix socket until SIGINT/SIGTERM or a
/// client's `shutdown` command, then shuts down gracefully (running
/// jobs checkpoint and stay resumable in the journal).
#[cfg(unix)]
fn serve_on_socket(
    server: momsynth_serve::Server,
    socket: &str,
    root: &str,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
    use momsynth_sync::sync::Arc;

    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    // Bridge the static signal flag into the shareable stop flag the
    // accept loop and connection threads poll.
    let bridge_stop = Arc::clone(&stop);
    let bridge = std::thread::spawn(move || {
        while !bridge_stop.load(Ordering::Acquire) {
            if sigint::STOP.load(Ordering::SeqCst) {
                bridge_stop.store(true, Ordering::Release);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    });
    eprintln!("serving on `{socket}` (journal `{root}`)");
    let served = momsynth_serve::socket::serve_unix(&server, Path::new(socket), &stop);
    stop.store(true, Ordering::Release);
    let _ = bridge.join();
    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(server) => drop(server),
    }
    served.map_err(|e| format!("cannot serve on `{socket}`: {e}"))?;
    eprintln!("server stopped; journal preserved in `{root}`");
    Ok(ExitCode::SUCCESS)
}

#[cfg(not(unix))]
fn serve_on_socket(
    _server: momsynth_serve::Server,
    _socket: &str,
    _root: &str,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    Err("unix sockets are not supported on this platform; use --oneshot".into())
}

/// Maps a terminal job state to the CLI's documented exit codes:
/// verified → 0, cancelled → 3, any other terminal state → 2.
fn job_state_exit(state: &str) -> ExitCode {
    match state {
        "verified" => ExitCode::SUCCESS,
        "cancelled" => ExitCode::from(EXIT_CANCELLED),
        _ => ExitCode::from(EXIT_INFEASIBLE),
    }
}

/// One request/response round trip on the client connection.
#[cfg(unix)]
fn roundtrip(
    stream: &mut std::os::unix::net::UnixStream,
    reader: &mut impl std::io::BufRead,
    request: &serde_json::Value,
) -> Result<serde_json::Value, Box<dyn std::error::Error>> {
    use std::io::Write;
    writeln!(stream, "{}", serde_json::to_string(request)?)?;
    let mut response = String::new();
    reader.read_line(&mut response)?;
    if response.trim().is_empty() {
        return Err("server closed the connection".into());
    }
    Ok(serde_json::from_str(response.trim())?)
}

/// The `job` client: sends one protocol request to a running server and
/// prints the JSON response line. `submit --wait` and `wait` exit by the
/// job's terminal state (0 verified, 3 cancelled, 2 otherwise).
#[cfg(unix)]
fn run_job_client(
    socket: &str,
    request: &JobRequest,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    use std::os::unix::net::UnixStream;

    let mut stream = UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to `{socket}`: {e}"))?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let ok = |v: &serde_json::Value| v.get("ok").and_then(|o| o.as_bool()) == Some(true);
    let simple = |req: serde_json::Value,
                  stream: &mut UnixStream,
                  reader: &mut std::io::BufReader<UnixStream>|
     -> Result<ExitCode, Box<dyn std::error::Error>> {
        let resp = roundtrip(stream, reader, &req)?;
        println!("{}", serde_json::to_string(&resp)?);
        Ok(if ok(&resp) { ExitCode::SUCCESS } else { ExitCode::FAILURE })
    };
    match request {
        JobRequest::Submit {
            path,
            priority,
            quick,
            dvs,
            neglect,
            seed,
            max_seconds,
            max_evals,
            timeout_seconds,
            wait,
        } => {
            let system = load_system(path)?;
            let spec = serde_json::json!({
                "system": system,
                "priority": priority,
                "seed": seed,
                "quick": quick,
                "dvs": dvs,
                "neglect": neglect,
                "max_seconds": max_seconds,
                "max_evaluations": max_evals,
                "timeout_seconds": timeout_seconds,
            });
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &serde_json::json!({"cmd": "submit", "spec": spec}),
            )?;
            println!("{}", serde_json::to_string(&resp)?);
            if !ok(&resp) {
                return Ok(ExitCode::FAILURE);
            }
            if !wait {
                return Ok(ExitCode::SUCCESS);
            }
            let id = resp
                .get("id")
                .and_then(|v| v.as_str())
                .ok_or("submit response carries no job id")?
                .to_owned();
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &serde_json::json!({"cmd": "wait", "id": id, "timeout_s": 3600.0}),
            )?;
            println!("{}", serde_json::to_string(&resp)?);
            if !ok(&resp) {
                return Ok(ExitCode::FAILURE);
            }
            let state = resp
                .get("job")
                .and_then(|j| j.get("state"))
                .and_then(|v| v.as_str())
                .unwrap_or("");
            Ok(job_state_exit(state))
        }
        JobRequest::Wait { id, timeout_s } => {
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &serde_json::json!({"cmd": "wait", "id": id, "timeout_s": timeout_s}),
            )?;
            println!("{}", serde_json::to_string(&resp)?);
            if !ok(&resp) {
                return Ok(ExitCode::FAILURE);
            }
            let state = resp
                .get("job")
                .and_then(|j| j.get("state"))
                .and_then(|v| v.as_str())
                .unwrap_or("");
            Ok(job_state_exit(state))
        }
        JobRequest::Status { id } => simple(
            serde_json::json!({"cmd": "status", "id": id}),
            &mut stream,
            &mut reader,
        ),
        JobRequest::Result { id } => simple(
            serde_json::json!({"cmd": "result", "id": id}),
            &mut stream,
            &mut reader,
        ),
        JobRequest::Cancel { id } => simple(
            serde_json::json!({"cmd": "cancel", "id": id}),
            &mut stream,
            &mut reader,
        ),
        JobRequest::List => {
            simple(serde_json::json!({"cmd": "list"}), &mut stream, &mut reader)
        }
        JobRequest::Metrics { text } => {
            let req = if *text {
                serde_json::json!({"cmd": "metrics", "format": "text"})
            } else {
                serde_json::json!({"cmd": "metrics"})
            };
            let resp = roundtrip(&mut stream, &mut reader, &req)?;
            // With --text, print the exposition body itself so the output
            // can be piped straight into Prometheus tooling.
            match resp.get("text").and_then(|v| v.as_str()).filter(|_| *text && ok(&resp)) {
                Some(body) => print!("{body}"),
                None => println!("{}", serde_json::to_string(&resp)?),
            }
            Ok(if ok(&resp) { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        JobRequest::Ping => {
            simple(serde_json::json!({"cmd": "ping"}), &mut stream, &mut reader)
        }
        JobRequest::Shutdown => {
            simple(serde_json::json!({"cmd": "shutdown"}), &mut stream, &mut reader)
        }
    }
}

#[cfg(not(unix))]
fn run_job_client(
    _socket: &str,
    _request: &JobRequest,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    Err("the job client needs unix sockets; drive a `serve --oneshot` server instead".into())
}

/// Prints the human-readable solution report to stdout.
fn print_solution(system: &System, result: &momsynth_core::SynthesisResult) {
    println!(
        "average power: {:.6} mW  (feasible: {}, {} generations, {} evaluations, {:.2} s)",
        result.best.power.average.as_milli(),
        result.best.is_feasible(),
        result.generations,
        result.evaluations,
        result.wall_time.as_secs_f64(),
    );
    println!("stopped: {} ({} rejected evaluations)", result.stop_reason, result.rejected);
    if result.power_lower_bound.value() > 0.0 {
        println!(
            "static bound: p̄_LB {:.6} mW, optimality gap {:.1} %, pruned domain {:.1} %",
            result.power_lower_bound.as_milli(),
            (result.best.power.average - result.power_lower_bound) / result.power_lower_bound
                * 100.0,
            result.pruned_domain_ratio * 100.0,
        );
    }
    println!("mapping: {}", result.best.mapping.mapping_string());
    print!("{}", result.best.power);

    // Per-component attribution.
    let factors: Vec<Vec<f64>> = system
        .omsm()
        .modes()
        .map(|(mode, m)| {
            (0..m.graph().task_count())
                .map(|t| {
                    result.best.voltage_schedules[mode.index()][t]
                        .as_ref()
                        .map(|vs| {
                            let pe = result.best.mapping.pe_of(
                                mode,
                                momsynth_model::ids::TaskId::new(t),
                            );
                            let cap = system.arch().pe(pe).dvs().expect("scaled on DVS PE");
                            vs.energy_factor(&momsynth_dvs::VoltageModel::from_capability(cap))
                        })
                        .unwrap_or(1.0)
                })
                .collect()
        })
        .collect();
    let imps: Vec<momsynth_power::ModeImplementation> = result
        .best
        .schedules
        .iter()
        .zip(&factors)
        .map(|(s, f)| momsynth_power::ModeImplementation::scaled(s, f))
        .collect();
    let breakdown = energy_breakdown(system, &imps);
    print!("{}", breakdown.to_table_string(system));
}
