//! `momsynth` — command-line front end for multi-mode co-synthesis.
//!
//! See [`args::HELP`] or run `momsynth help` for usage. System
//! specifications are the JSON serialisation of
//! [`momsynth_model::System`]; the `generate` subcommand produces them and
//! `synth` consumes them.

mod args;

use std::process::ExitCode;

use momsynth_core::{SynthesisConfig, Synthesizer};
use momsynth_gen::suite::{generate, mul, GeneratorParams};
use momsynth_model::{dot, lint, System};
use momsynth_power::energy_breakdown;

use args::{parse, Command, DotTarget, HELP};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_system(path: &str) -> Result<System, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(serde_json::from_str(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))?)
}

fn write_output(path: &str, contents: &str) -> Result<(), Box<dyn std::error::Error>> {
    if path == "-" {
        print!("{contents}");
    } else {
        std::fs::write(path, contents).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn run(command: Command) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        Command::Help => {
            print!("{HELP}");
            Ok(())
        }
        Command::Info { path } => {
            let system = load_system(&path)?;
            println!("{}", system.summary());
            for (_, mode) in system.omsm().modes() {
                println!(
                    "  {:<20} Ψ={:<6.3} {:>4} tasks {:>4} edges  period {:.3} ms",
                    mode.name(),
                    mode.probability(),
                    mode.graph().task_count(),
                    mode.graph().comm_count(),
                    mode.graph().period().as_millis(),
                );
            }
            let shared = system.shared_types();
            if !shared.is_empty() {
                let names: Vec<&str> =
                    shared.iter().map(|&t| system.tech().type_name(t)).collect();
                println!("shared task types: {}", names.join(", "));
            }
            let warnings = lint::lint_system(&system);
            if warnings.is_empty() {
                println!("lint: clean");
            } else {
                println!("lint: {} warning(s) — run `momsynth lint`", warnings.len());
            }
            Ok(())
        }
        Command::Lint { path } => {
            let system = load_system(&path)?;
            let warnings = lint::lint_system(&system);
            if warnings.is_empty() {
                println!("no diagnostics");
            }
            for w in warnings {
                println!("warning: {w}");
            }
            Ok(())
        }
        Command::Dot { path, what } => {
            let system = load_system(&path)?;
            let text = match what {
                DotTarget::Omsm => dot::omsm_to_dot(system.omsm()),
                DotTarget::Arch => dot::architecture_to_dot(system.arch()),
                DotTarget::Mode(n) => {
                    if n >= system.omsm().mode_count() {
                        return Err(format!(
                            "mode {n} out of range (system has {})",
                            system.omsm().mode_count()
                        )
                        .into());
                    }
                    dot::task_graph_to_dot(
                        system.omsm().mode(momsynth_model::ids::ModeId::new(n)).graph(),
                    )
                }
            };
            print!("{text}");
            Ok(())
        }
        Command::Convert { path, output } => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let stem = std::path::Path::new(&path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("imported");
            let system = momsynth_gen::tgff::parse_system(stem, &text)?;
            let json = serde_json::to_string_pretty(&system)?;
            write_output(&output, &json)?;
            eprintln!("{}", system.summary());
            Ok(())
        }
        Command::Generate { preset, seed, modes, output } => {
            let system = match preset {
                Some(n) => mul(n),
                None => {
                    let mut params = GeneratorParams::new(format!("generated_{seed}"), seed);
                    params.modes = modes;
                    generate(&params)
                }
            };
            let json = serde_json::to_string_pretty(&system)?;
            write_output(&output, &json)?;
            eprintln!("{}", system.summary());
            Ok(())
        }
        Command::Synth { path, dvs, neglect, seed, quick, output, vcd } => {
            let system = load_system(&path)?;
            let mut config = if quick {
                SynthesisConfig::fast_preset(seed)
            } else {
                SynthesisConfig::new(seed)
            };
            config.probability_aware = !neglect;
            if dvs {
                config = config.with_dvs();
            }
            eprintln!(
                "synthesising `{}` ({}, {}) …",
                system.name(),
                if neglect { "probability-neglecting" } else { "probability-aware" },
                if dvs { "DVS" } else { "fixed voltage" },
            );
            let result = Synthesizer::new(&system, config).run();
            println!(
                "average power: {:.6} mW  (feasible: {}, {} generations, {} evaluations, {:.2} s)",
                result.best.power.average.as_milli(),
                result.best.is_feasible(),
                result.generations,
                result.evaluations,
                result.wall_time.as_secs_f64(),
            );
            println!("mapping: {}", result.best.mapping.mapping_string());
            print!("{}", result.best.power);

            // Per-component attribution.
            let factors: Vec<Vec<f64>> = system
                .omsm()
                .modes()
                .map(|(mode, m)| {
                    (0..m.graph().task_count())
                        .map(|t| {
                            result.best.voltage_schedules[mode.index()][t]
                                .as_ref()
                                .map(|vs| {
                                    let pe = result.best.mapping.pe_of(
                                        mode,
                                        momsynth_model::ids::TaskId::new(t),
                                    );
                                    let cap = system.arch().pe(pe).dvs().expect("scaled on DVS PE");
                                    vs.energy_factor(&momsynth_dvs::VoltageModel::from_capability(cap))
                                })
                                .unwrap_or(1.0)
                        })
                        .collect()
                })
                .collect();
            let imps: Vec<momsynth_power::ModeImplementation> = result
                .best
                .schedules
                .iter()
                .zip(&factors)
                .map(|(s, f)| momsynth_power::ModeImplementation::scaled(s, f))
                .collect();
            let breakdown = energy_breakdown(&system, &imps);
            print!("{}", breakdown.to_table_string(&system));

            if let Some(dir) = vcd {
                std::fs::create_dir_all(&dir)
                    .map_err(|e| format!("cannot create `{dir}`: {e}"))?;
                for schedule in &result.best.schedules {
                    let mode = system.omsm().mode(schedule.mode());
                    let text = momsynth_sched::schedule_to_vcd(&system, schedule);
                    let file = format!("{dir}/{}.vcd", mode.name().replace(char::is_whitespace, "_"));
                    std::fs::write(&file, text)
                        .map_err(|e| format!("cannot write `{file}`: {e}"))?;
                    eprintln!("wrote {file}");
                }
            }

            if let Some(path) = output {
                let report = serde_json::json!({
                    "system": system.name(),
                    "average_power_mw": result.best.power.average.as_milli(),
                    "feasible": result.best.is_feasible(),
                    "mapping": result.best.mapping,
                    "alloc": result.best.alloc,
                    "schedules": result.best.schedules,
                    "power": result.best.power,
                    "generations": result.generations,
                    "evaluations": result.evaluations,
                });
                write_output(&path, &serde_json::to_string_pretty(&report)?)?;
            }
            Ok(())
        }
    }
}
