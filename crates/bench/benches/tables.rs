//! Criterion timing of the table-generating synthesis flows: one GA run
//! per flavour on the smallest suite benchmark (mul9), matching the
//! per-run cost that Tables 1–3 multiply by their run counts.

use criterion::{criterion_group, criterion_main, Criterion};
use momsynth_bench::HarnessOptions;
use momsynth_core::Synthesizer;
use momsynth_gen::suite::mul;

fn synthesis_flows(c: &mut Criterion) {
    let system = mul(9);
    let options = HarnessOptions { runs: 1, base_seed: 0, quick: true, out: None };

    let mut group = c.benchmark_group("table_flows_mul9");
    group.sample_size(10);
    group.bench_function("no_dvs_probability_aware", |b| {
        b.iter(|| Synthesizer::new(&system, options.config(0, true, false)).run())
    });
    group.bench_function("no_dvs_probability_neglecting", |b| {
        b.iter(|| Synthesizer::new(&system, options.config(0, false, false)).run())
    });
    group.bench_function("dvs_probability_aware", |b| {
        b.iter(|| Synthesizer::new(&system, options.config(0, true, true)).run())
    });
    group.finish();
}

criterion_group!(benches, synthesis_flows);
criterion_main!(benches);
