//! Criterion timing of the design-decision ablations (D2, D4, D5): how
//! much each knob costs per synthesis run. The *quality* impact of the
//! same knobs is reported by the `ablations` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use momsynth_bench::HarnessOptions;
use momsynth_core::Synthesizer;
use momsynth_gen::suite::mul;
use momsynth_sched::Priority;

fn ablation_costs(c: &mut Criterion) {
    let system = mul(9);
    let options = HarnessOptions { runs: 1, base_seed: 0, quick: true, out: None };

    let mut group = c.benchmark_group("ablation_costs_mul9");
    group.sample_size(10);
    group.bench_function("d2_improvement_on", |b| {
        b.iter(|| Synthesizer::new(&system, options.config(0, true, false)).run())
    });
    group.bench_function("d2_improvement_off", |b| {
        b.iter(|| {
            let mut cfg = options.config(0, true, false);
            cfg.improvement_operators = false;
            Synthesizer::new(&system, cfg).run()
        })
    });
    group.bench_function("d4_replication_off", |b| {
        b.iter(|| {
            let mut cfg = options.config(0, true, false);
            cfg.alloc.replicate = false;
            Synthesizer::new(&system, cfg).run()
        })
    });
    group.bench_function("d5_fifo_priorities", |b| {
        b.iter(|| {
            let mut cfg = options.config(0, true, false);
            cfg.scheduler.priority = Priority::Fifo;
            Synthesizer::new(&system, cfg).run()
        })
    });
    group.finish();
}

criterion_group!(benches, ablation_costs);
criterion_main!(benches);
