//! Criterion timing of the job server's durability substrate: fsync'd
//! journal record writes, recovery scans, and pending-queue operations.
//! The write path bounds how fast the server can admit jobs; the
//! recovery scan bounds restart latency after a crash.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use momsynth_serve::{JobRecord, JobSpec, JobState, Journal, PendingQueue, QueueEntry};

fn tmp_root(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_bench_journal_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn sample_record(seq: u64) -> JobRecord {
    let mut record = JobRecord::new(format!("job-{seq:06}"), seq, 5);
    record.transition(JobState::Analyzing, "admission checks");
    record.transition(JobState::Running, "worker 0");
    record
}

fn journal(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal");

    // One durable record transition: serialize, write to a temp file,
    // fsync, shadow the previous version, atomically rename.
    let root = tmp_root("write");
    let j = Journal::open(&root).expect("journal opens");
    let record = sample_record(1);
    group.bench_function("durable_record_write", |b| {
        b.iter(|| j.write_record(&record).expect("write succeeds"))
    });
    std::fs::remove_dir_all(&root).ok();

    // Recovery scan over a populated journal: what a restart pays
    // before it can accept work again.
    let root = tmp_root("scan");
    let j = Journal::open(&root).expect("journal opens");
    for seq in 1..=64 {
        j.write_record(&sample_record(seq)).expect("write succeeds");
    }
    group.bench_function("recovery_scan_64_jobs", |b| {
        b.iter(|| {
            let (records, notes) = j.load_all();
            assert_eq!(records.len(), 64);
            assert!(notes.is_empty());
        })
    });
    std::fs::remove_dir_all(&root).ok();

    // Spec round trip: the admission write plus the worker's read-back.
    let root = tmp_root("spec");
    let j = Journal::open(&root).expect("journal opens");
    let spec: JobSpec =
        serde_json::from_value(&serde_json::json!({
            "system": momsynth_gen::suite::mul(3),
            "priority": 5,
            "quick": true,
        }))
        .expect("valid spec");
    group.bench_function("spec_write_and_load", |b| {
        b.iter(|| {
            j.write_spec("job-000001", &spec).expect("write succeeds");
            j.load_spec("job-000001").expect("load succeeds")
        })
    });
    std::fs::remove_dir_all(&root).ok();

    // In-memory queue churn at capacity: push with shed-or-reject
    // against a full queue, then drain.
    group.bench_function("queue_push_pop_64", |b| {
        b.iter(|| {
            let mut q = PendingQueue::new(64);
            for seq in 0..64u64 {
                q.push(QueueEntry {
                    id: format!("job-{seq:06}"),
                    priority: (seq % 10) as u8,
                    seq,
                    not_before: None,
                });
            }
            let now = Instant::now();
            let mut drained = 0;
            while q.pop_due(now).is_some() {
                drained += 1;
            }
            assert_eq!(drained, 64);
        })
    });

    group.finish();
}

criterion_group!(benches, journal);
criterion_main!(benches);
