//! Criterion timing of the voltage-scaling layer: the Fig. 5 virtual-task
//! transformation and PV-DVS at coarse and fine quanta.

use criterion::{criterion_group, criterion_main, Criterion};
use momsynth_dvs::{scale_mode, virtual_tasks, DvsOptions};
use momsynth_gen::suite::{generate, GeneratorParams};
use momsynth_model::ids::ModeId;
use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

fn dvs(c: &mut Criterion) {
    let mut params = GeneratorParams::new("dvsbench", 7);
    params.modes = 1;
    params.tasks_per_mode = (24, 24);
    params.dvs_software_pes = 1;
    params.dvs_hardware_pes = 1;
    params.slack_factor = 1.8;
    let system = generate(&params);
    let hw = system.arch().hardware_pes().next().expect("one HW PE");
    let mapping = SystemMapping::from_fn(&system, |id| {
        let candidates = system.candidate_pes(id);
        *candidates.iter().find(|&&pe| pe == hw).unwrap_or(&candidates[0])
    });
    let alloc = CoreAllocation::minimal(&system, &mapping);
    let schedule =
        schedule_mode(&system, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())
            .expect("benchmark system schedules");

    let mut group = c.benchmark_group("dvs");
    group.bench_function("fig5_virtual_tasks", |b| {
        b.iter(|| virtual_tasks(&system, &schedule, hw))
    });
    group.bench_function("pvdvs_coarse", |b| {
        b.iter(|| scale_mode(&system, &schedule, &DvsOptions::default()))
    });
    group.bench_function("pvdvs_fine", |b| {
        b.iter(|| scale_mode(&system, &schedule, &DvsOptions::fine()))
    });
    group.finish();
}

criterion_group!(benches, dvs);
criterion_main!(benches);
