//! Criterion timing of the scheduling substrate: mobility analysis, list
//! scheduling and core-allocation derivation on a mid-size benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use momsynth_core::{derive_allocation, AllocOptions};
use momsynth_gen::suite::mul;
use momsynth_model::ids::ModeId;
use momsynth_sched::{
    schedule_mode, CoreAllocation, Priority, SchedulerOptions, SystemMapping, TimingAnalysis,
};

fn scheduling(c: &mut Criterion) {
    let system = mul(3);
    // Spread tasks over their first two candidates for realistic traffic.
    let mut flip = false;
    let mapping = SystemMapping::from_fn(&system, |id| {
        let candidates = system.candidate_pes(id);
        flip = !flip;
        candidates[usize::from(flip && candidates.len() > 1)]
    });
    let alloc = CoreAllocation::minimal(&system, &mapping);
    let mode = ModeId::new(0);

    let mut group = c.benchmark_group("scheduling_mul3");
    group.bench_function("timing_analysis", |b| {
        b.iter(|| TimingAnalysis::analyze(&system, mode, &mapping))
    });
    group.bench_function("list_schedule_mobility", |b| {
        b.iter(|| {
            schedule_mode(&system, mode, &mapping, &alloc, SchedulerOptions::default()).unwrap()
        })
    });
    group.bench_function("list_schedule_fifo", |b| {
        b.iter(|| {
            schedule_mode(
                &system,
                mode,
                &mapping,
                &alloc,
                SchedulerOptions { priority: Priority::Fifo },
            )
            .unwrap()
        })
    });
    group.bench_function("derive_allocation", |b| {
        b.iter(|| derive_allocation(&system, &mapping, &AllocOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, scheduling);
criterion_main!(benches);
