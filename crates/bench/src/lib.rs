//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every binary in this crate reproduces one experiment:
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 — mul1–mul12 without DVS |
//! | `table2` | Table 2 — mul1–mul12 with DVS |
//! | `table3` | Table 3 — smart phone, with and without DVS |
//! | `fig2_example1` | Fig. 2 — motivational Example 1 (exact energies) |
//! | `fig3_example2` | Fig. 3 — multiple task implementations |
//! | `fig5_transform` | Fig. 5 — DVS transformation of HW cores |
//! | `ablations` | design-decision ablations D2–D5 |
//!
//! Absolute numbers will not match the paper (the workloads are
//! regenerated and the hardware numbers synthesised), but the *shape* —
//! who wins, roughly by how much, and where DVS helps — is asserted by
//! the integration tests in the workspace root.
//!
//! Alongside the human-readable `results_<name>.txt` table, each table
//! binary persists the per-run [`RunSummary`] records as
//! `results_<name>.json` so downstream tooling can consume the raw
//! numbers without scraping stdout. Use `--out DIR` to pick the
//! destination directory.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::time::Instant;

use momsynth_core::{invariant_breach, SynthesisConfig, SynthesisResult, Synthesizer};
use momsynth_model::System;
use momsynth_telemetry::RunSummary;

/// One row of a Table 1/2-style comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Number of operational modes.
    pub modes: usize,
    /// Average power (mW) of the probability-neglecting flow.
    pub power_neglecting_mw: f64,
    /// Mean optimisation wall time (s) of the neglecting flow.
    pub time_neglecting_s: f64,
    /// Average power (mW) of the proposed probability-aware flow.
    pub power_aware_mw: f64,
    /// Mean optimisation wall time (s) of the proposed flow.
    pub time_aware_s: f64,
    /// Fraction of runs whose best solution met all constraints.
    pub feasible_fraction: f64,
    /// Mean relative optimality gap `(p̄ − p̄_LB)/p̄_LB` of the aware
    /// flow's runs against the static power lower bound, in percent.
    pub optimality_gap_percent: f64,
    /// Whether every run behind this row passed the independent
    /// `momsynth-check` re-verification. Unverified rows must not be
    /// persisted — see [`retain_verified`].
    pub verified: bool,
}

impl ComparisonRow {
    /// Power reduction of the proposed flow in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.power_neglecting_mw == 0.0 {
            return 0.0;
        }
        (1.0 - self.power_aware_mw / self.power_neglecting_mw) * 100.0
    }
}

/// Harness options shared by the table binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Optimisation repetitions per flow; reported powers/times are means
    /// over these runs (the paper averages 40 runs; default here is 5).
    pub runs: u64,
    /// Base RNG seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Shrink the GA (population/generations) for smoke tests.
    pub quick: bool,
    /// Directory receiving `results_<name>.{txt,json}` (default: cwd).
    pub out: Option<String>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self { runs: 5, base_seed: 1000, quick: false, out: None }
    }
}

impl HarnessOptions {
    /// Parses `--runs N`, `--seed N`, `--quick` and `--out DIR` from
    /// process arguments, ignoring anything else.
    pub fn from_args() -> Self {
        let mut options = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--runs" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        options.runs = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        options.base_seed = v;
                        i += 1;
                    }
                }
                "--quick" => options.quick = true,
                "--out" => {
                    if let Some(v) = args.get(i + 1) {
                        options.out = Some(v.clone());
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        options
    }

    /// The synthesis configuration for one run.
    pub fn config(&self, seed: u64, probability_aware: bool, dvs: bool) -> SynthesisConfig {
        let mut cfg = if self.quick {
            SynthesisConfig::fast_preset(seed)
        } else {
            SynthesisConfig::new(seed)
        };
        cfg.probability_aware = probability_aware;
        if dvs {
            cfg = cfg.with_dvs();
        }
        cfg
    }

    /// Resolves `results_<name>.<ext>` inside the `--out` directory.
    pub fn results_path(&self, name: &str, ext: &str) -> PathBuf {
        let dir = self.out.as_deref().map_or_else(|| Path::new(".").to_path_buf(), PathBuf::from);
        dir.join(format!("results_{name}.{ext}"))
    }
}

/// Runs both flows (`probability-aware` and `-neglecting`) on one system
/// and averages power and wall time over `options.runs` repetitions.
pub fn compare_flows(system: &System, dvs: bool, options: &HarnessOptions) -> ComparisonRow {
    compare_flows_detailed(system, dvs, options).0
}

/// Like [`compare_flows`], but also returns one [`RunSummary`] per
/// individual optimisation run (both flows, in execution order) for
/// machine-readable persistence.
pub fn compare_flows_detailed(
    system: &System,
    dvs: bool,
    options: &HarnessOptions,
) -> (ComparisonRow, Vec<RunSummary>) {
    let mut summaries = Vec::new();
    let mut run_flow = |aware: bool| -> (f64, f64, u64, bool, f64) {
        let mut power_sum = 0.0;
        let mut time_sum = 0.0;
        let mut feasible = 0u64;
        let mut verified = true;
        let mut gap_sum = 0.0;
        for i in 0..options.runs {
            let cfg = options.config(options.base_seed + i, aware, dvs);
            let synthesizer = Synthesizer::new(system, cfg);
            let start = Instant::now();
            let result = synthesizer.run().expect("schedulable system");
            time_sum += start.elapsed().as_secs_f64();
            power_sum += result.best.power.average.as_milli();
            if result.best.is_feasible() {
                feasible += 1;
            }
            let lb = result.power_lower_bound;
            if lb.value() > 0.0 {
                gap_sum += (result.best.power.average - lb) / lb;
            }
            match verified_summary(system, &synthesizer, &result) {
                Some(summary) => summaries.push(summary),
                None => verified = false,
            }
        }
        let n = options.runs as f64;
        (power_sum / n, time_sum / n, feasible, verified, gap_sum / n)
    };

    let (power_neglecting_mw, time_neglecting_s, feas_n, ver_n, _) = run_flow(false);
    let (power_aware_mw, time_aware_s, feas_a, ver_a, gap_a) = run_flow(true);
    let row = ComparisonRow {
        name: system.name().to_owned(),
        modes: system.omsm().mode_count(),
        power_neglecting_mw,
        time_neglecting_s,
        power_aware_mw,
        time_aware_s,
        feasible_fraction: (feas_n + feas_a) as f64 / (2 * options.runs) as f64,
        optimality_gap_percent: gap_a * 100.0,
        verified: ver_n && ver_a,
    };
    (row, summaries)
}

/// Re-proves a finished run with the independent `momsynth-check` oracle
/// and renders its [`RunSummary`]. Returns `None` — after a stderr
/// warning — when the checker disagrees with the synthesiser, so the
/// record never reaches `results_*.json` (every persisted Eq. 1 average
/// was independently recomputed to 1e-9).
pub fn verified_summary(
    system: &System,
    synthesizer: &Synthesizer<'_>,
    result: &SynthesisResult,
) -> Option<RunSummary> {
    match invariant_breach(system, &result.best) {
        Some(report) => {
            eprintln!(
                "warning: dropping a `{}` run from results — verification failed: {report}",
                system.name()
            );
            None
        }
        None => Some(result.summary(system, synthesizer.config())),
    }
}

/// Drops rows backed by any run that failed independent verification,
/// warning on stderr; returns how many were dropped. Table binaries call
/// this before rendering so `results_*.txt` never publishes a row the
/// checker rejected.
pub fn retain_verified(rows: &mut Vec<ComparisonRow>) -> usize {
    let before = rows.len();
    rows.retain(|row| {
        if !row.verified {
            eprintln!(
                "warning: dropping `{}` from the results table: a run failed verification",
                row.name
            );
        }
        row.verified
    });
    before - rows.len()
}

/// Renders rows in the paper's Table 1/2 layout.
pub fn render_table(title: &str, rows: &[ComparisonRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "{:<14} {:>6} | {:>14} {:>10} | {:>14} {:>10} | {:>8} {:>8} {:>6}",
        "Example",
        "modes",
        "p (w/o) [mW]",
        "CPU [s]",
        "p (with) [mW]",
        "CPU [s]",
        "Red. %",
        "Gap %",
        "feas"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(109)).unwrap();
    for row in rows {
        writeln!(
            out,
            "{:<14} {:>6} | {:>14.4} {:>10.2} | {:>14.4} {:>10.2} | {:>8.2} {:>8.2} {:>6.2}",
            row.name,
            row.modes,
            row.power_neglecting_mw,
            row.time_neglecting_s,
            row.power_aware_mw,
            row.time_aware_s,
            row.reduction_percent(),
            row.optimality_gap_percent,
            row.feasible_fraction,
        )
        .unwrap();
    }
    let mean: f64 =
        rows.iter().map(ComparisonRow::reduction_percent).sum::<f64>() / rows.len().max(1) as f64;
    let max = rows
        .iter()
        .map(ComparisonRow::reduction_percent)
        .fold(f64::NEG_INFINITY, f64::max);
    writeln!(out, "{}", "-".repeat(109)).unwrap();
    writeln!(out, "mean reduction {mean:.2} %, max reduction {max:.2} %").unwrap();
    out
}

/// Prints rows in the paper's Table 1/2 layout.
pub fn print_table(title: &str, rows: &[ComparisonRow]) {
    print!("{}", render_table(title, rows));
}

/// Persists one experiment's outputs: `results_<name>.txt` holds the
/// rendered human-readable report, `results_<name>.json` the raw
/// per-run [`RunSummary`] records. Write failures are reported on
/// stderr but do not abort the binary — the table already went to
/// stdout.
pub fn write_results(options: &HarnessOptions, name: &str, text: &str, summaries: &[RunSummary]) {
    let txt_path = options.results_path(name, "txt");
    if let Err(e) = std::fs::write(&txt_path, text) {
        eprintln!("warning: cannot write {}: {e}", txt_path.display());
    } else {
        println!("wrote {}", txt_path.display());
    }
    let json_path = options.results_path(name, "json");
    let json = serde_json::to_string_pretty(summaries).expect("summaries serialise");
    if let Err(e) = std::fs::write(&json_path, json) {
        eprintln!("warning: cannot write {}: {e}", json_path.display());
    } else {
        println!("wrote {}", json_path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_gen::suite::mul;

    #[test]
    fn comparison_row_reduction() {
        let row = ComparisonRow {
            name: "x".into(),
            modes: 3,
            power_neglecting_mw: 10.0,
            time_neglecting_s: 1.0,
            power_aware_mw: 7.5,
            time_aware_s: 1.0,
            feasible_fraction: 1.0,
            optimality_gap_percent: 50.0,
            verified: true,
        };
        assert!((row.reduction_percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn retain_verified_drops_unverified_rows() {
        let row = |name: &str, verified: bool| ComparisonRow {
            name: name.into(),
            modes: 1,
            power_neglecting_mw: 1.0,
            time_neglecting_s: 0.0,
            power_aware_mw: 1.0,
            time_aware_s: 0.0,
            feasible_fraction: 1.0,
            optimality_gap_percent: 0.0,
            verified,
        };
        let mut rows = vec![row("good", true), row("bad", false), row("also_good", true)];
        assert_eq!(retain_verified(&mut rows), 1);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["good", "also_good"]);
    }

    #[test]
    fn verified_summary_rejects_corrupted_results() {
        let system = mul(9);
        let options = HarnessOptions { runs: 1, base_seed: 5, quick: true, out: None };
        let synthesizer = Synthesizer::new(&system, options.config(5, true, false));
        let mut result = synthesizer.run().expect("schedulable system");
        assert!(verified_summary(&system, &synthesizer, &result).is_some());
        result.best.power.average = result.best.power.average * 2.0;
        assert!(verified_summary(&system, &synthesizer, &result).is_none());
    }

    #[test]
    fn quick_compare_runs_end_to_end() {
        let system = mul(9); // the smallest benchmark
        let options = HarnessOptions { runs: 1, base_seed: 5, quick: true, out: None };
        let (row, summaries) = compare_flows_detailed(&system, false, &options);
        assert!(row.power_aware_mw > 0.0);
        assert!(row.power_neglecting_mw > 0.0);
        assert_eq!(row.modes, 4);
        // One summary per run per flow, in execution order.
        assert_eq!(summaries.len(), 2);
        assert!(!summaries[0].probability_aware);
        assert!(summaries[1].probability_aware);
        assert_eq!(summaries[0].system, row.name);
        assert!((summaries[1].average_power_mw - row.power_aware_mw).abs() < 1e-9);
        assert!(row.verified, "genuine runs must pass re-verification");
        assert!(
            row.optimality_gap_percent >= 0.0,
            "a sound lower bound never exceeds an achieved power: {}",
            row.optimality_gap_percent
        );
        assert!(summaries.iter().all(|s| s.optimality_gap >= 0.0 && s.power_lower_bound_mw > 0.0));
    }

    #[test]
    fn options_config_respects_flags() {
        let options = HarnessOptions { runs: 1, base_seed: 0, quick: true, out: None };
        let cfg = options.config(3, false, true);
        assert_eq!(cfg.ga.seed, 3);
        assert!(!cfg.probability_aware);
        assert!(cfg.dvs.is_some());
    }

    #[test]
    fn results_path_respects_out_dir() {
        let options = HarnessOptions { out: Some("/tmp/bench".into()), ..Default::default() };
        assert_eq!(options.results_path("table1", "json"), PathBuf::from("/tmp/bench/results_table1.json"));
        let default = HarnessOptions::default();
        assert_eq!(default.results_path("table1", "txt"), PathBuf::from("./results_table1.txt"));
    }
}
