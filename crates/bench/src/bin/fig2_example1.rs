//! Regenerates Fig. 2 (motivational Example 1): evaluates the paper's two
//! hand-derived mappings exactly, then lets the synthesizer rediscover
//! the probability-aware optimum.

use momsynth_core::{SynthesisConfig, Synthesizer};
use momsynth_gen::examples::{
    example1_mapping_aware, example1_mapping_neglecting, example1_system,
};
use momsynth_power::{power_report, ModeImplementation};
use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

fn evaluate(system: &momsynth_model::System, mapping: &SystemMapping) -> f64 {
    let alloc = CoreAllocation::minimal(system, mapping);
    let schedules: Vec<_> = system
        .omsm()
        .mode_ids()
        .map(|m| {
            schedule_mode(system, m, mapping, &alloc, SchedulerOptions::default())
                .expect("example 1 schedules cleanly")
        })
        .collect();
    let imps: Vec<ModeImplementation> = schedules.iter().map(ModeImplementation::nominal).collect();
    power_report(system, &imps).average.as_milli()
}

fn main() {
    let system = example1_system();
    println!("{}", system.summary());

    let neglecting = evaluate(&system, &example1_mapping_neglecting());
    let aware = evaluate(&system, &example1_mapping_aware());
    println!("Fig. 2b (probability-neglecting mapping): {neglecting:.4} mWs  (paper: 26.7158)");
    println!("Fig. 2c (probability-aware mapping):      {aware:.4} mWs  (paper: 15.7423)");
    println!("reduction: {:.1} % (paper: 41 %)", (1.0 - aware / neglecting) * 100.0);

    // The synthesizer should rediscover the Fig. 2c optimum (best of a
    // few seeds, as the paper's 40-run averaging does).
    let result = (0..5)
        .map(|seed| Synthesizer::new(&system, SynthesisConfig::fast_preset(seed)).run().expect("schedulable system"))
        .min_by(|a, b| a.best.fitness.total_cmp(&b.best.fitness))
        .expect("at least one run");
    println!(
        "GA rediscovery (best of 5 seeds): {:.4} mWs with mapping {}",
        result.best.power.average.as_milli(),
        result.best.mapping.mapping_string()
    );
}
