//! Regenerates Table 2: mul1–mul12 with DVS — probability-neglecting vs
//! probability-aware synthesis, voltage scaling on software *and*
//! hardware PEs.
//!
//! Usage: `cargo run --release -p momsynth-bench --bin table2 [--runs N] [--seed S] [--quick]`

use momsynth_bench::{compare_flows, print_table, HarnessOptions};
use momsynth_gen::suite::mul_suite;

fn main() {
    let options = HarnessOptions::from_args();
    let rows: Vec<_> = mul_suite()
        .iter()
        .map(|system| {
            eprintln!("synthesising {} (DVS) …", system.name());
            compare_flows(system, true, &options)
        })
        .collect();
    print_table(
        &format!(
            "Table 2 — considering execution probabilities (with DVS), {} runs/flow",
            options.runs
        ),
        &rows,
    );
}
