//! Regenerates Table 2: mul1–mul12 with DVS — probability-neglecting vs
//! probability-aware synthesis, voltage scaling on software *and*
//! hardware PEs.
//!
//! Usage: `cargo run --release -p momsynth-bench --bin table2 [--runs N] [--seed S] [--quick] [--out DIR]`

use momsynth_bench::{
    compare_flows_detailed, render_table, retain_verified, write_results, HarnessOptions,
};
use momsynth_gen::suite::mul_suite;

fn main() {
    let options = HarnessOptions::from_args();
    let mut summaries = Vec::new();
    let mut rows: Vec<_> = mul_suite()
        .iter()
        .map(|system| {
            eprintln!("synthesising {} (DVS) …", system.name());
            let (row, runs) = compare_flows_detailed(system, true, &options);
            summaries.extend(runs);
            row
        })
        .collect();
    retain_verified(&mut rows);
    let table = render_table(
        &format!(
            "Table 2 — considering execution probabilities (with DVS), {} runs/flow",
            options.runs
        ),
        &rows,
    );
    print!("{table}");
    write_results(&options, "table2", &table, &summaries);
}
