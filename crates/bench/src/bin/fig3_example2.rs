//! Regenerates Fig. 3 (motivational Example 2): hardware sharing vs
//! multiple task implementations with component shut-down.

use momsynth_gen::examples::{
    example2_mapping_multiple, example2_mapping_shared, example2_system,
};
use momsynth_power::{power_report, ModeImplementation};
use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

fn report(
    system: &momsynth_model::System,
    mapping: &SystemMapping,
) -> momsynth_power::PowerReport {
    let alloc = CoreAllocation::minimal(system, mapping);
    let schedules: Vec<_> = system
        .omsm()
        .mode_ids()
        .map(|m| {
            schedule_mode(system, m, mapping, &alloc, SchedulerOptions::default())
                .expect("example 2 schedules cleanly")
        })
        .collect();
    let imps: Vec<ModeImplementation> = schedules.iter().map(ModeImplementation::nominal).collect();
    power_report(system, &imps)
}

fn main() {
    let system = example2_system();
    println!("{}", system.summary());

    let shared = report(&system, &example2_mapping_shared());
    let multiple = report(&system, &example2_mapping_multiple());

    println!("\nFig. 3b — resource sharing (both type-A tasks on the HW core):");
    print!("{shared}");
    println!("\nFig. 3c — multiple implementations (tau4 additionally in SW):");
    print!("{multiple}");
    println!(
        "\nshut-down of PE1+CL0 during O2 saves {:.2} % average power",
        multiple.reduction_vs(&shared)
    );
}
