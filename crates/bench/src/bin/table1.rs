//! Regenerates Table 1: mul1–mul12 without DVS — probability-neglecting
//! vs probability-aware synthesis.
//!
//! Usage: `cargo run --release -p momsynth-bench --bin table1 [--runs N] [--seed S] [--quick]`

use momsynth_bench::{compare_flows, print_table, HarnessOptions};
use momsynth_gen::suite::mul_suite;

fn main() {
    let options = HarnessOptions::from_args();
    let rows: Vec<_> = mul_suite()
        .iter()
        .map(|system| {
            eprintln!("synthesising {} …", system.name());
            compare_flows(system, false, &options)
        })
        .collect();
    print_table(
        &format!(
            "Table 1 — considering execution probabilities (w/o DVS), {} runs/flow",
            options.runs
        ),
        &rows,
    );
}
