//! Usage-profile sensitivity study (an extension beyond the paper's
//! experiments, enabled by its own observation that "mode probabilities
//! vary from user to user"): synthesise the smart phone for three user
//! profiles derived from semi-Markov usage models and compare both the
//! resulting implementations and the cost of running the *wrong* user's
//! implementation.
//!
//! Usage: `cargo run --release -p momsynth-bench --bin profile_sensitivity [--runs N] [--seed S] [--quick] [--out DIR]`

use std::fmt::Write;

use momsynth_bench::{write_results, HarnessOptions};
use momsynth_core::{Evaluator, SynthesisResult, Synthesizer};
use momsynth_dvs::DvsOptions;
use momsynth_gen::smartphone::smartphone;
use momsynth_model::usage::UsageModel;
use momsynth_model::units::Seconds;
use momsynth_model::System;
use momsynth_telemetry::RunSummary;

/// Builds a usage profile as (sojourn seconds, ring weights) over the
/// phone's 8 modes: gsm_rlc, rlc, network_search, photo_rlc, photo_ns,
/// mp3_rlc, mp3_ns, camera.
fn profile(sojourns: [f64; 8]) -> Vec<f64> {
    let mut usage = UsageModel::new(8);
    for (i, &s) in sojourns.iter().enumerate() {
        usage.set_sojourn(i, Seconds::new(s));
    }
    // Everything cycles through the RLC hub (mode 1), like Fig. 1a.
    for m in [0, 2, 3, 4, 5, 6, 7] {
        usage.set_transition_weight(1, m, 1.0);
        usage.set_transition_weight(m, 1, 1.0);
    }
    usage.mode_probabilities().expect("profiles are ergodic")
}

fn main() {
    let options = HarnessOptions::from_args();
    let base = smartphone();
    let mut summaries: Vec<RunSummary> = Vec::new();
    let mut report = String::new();

    // Sojourn seconds per visit: [gsm_rlc, rlc, ns, photo_rlc, photo_ns,
    // mp3_rlc, mp3_ns, camera].
    let profiles: [(&str, [f64; 8]); 3] = [
        ("talker", [600.0, 900.0, 10.0, 5.0, 5.0, 30.0, 5.0, 5.0]),
        ("music_lover", [60.0, 400.0, 10.0, 5.0, 5.0, 1800.0, 60.0, 5.0]),
        ("photographer", [60.0, 400.0, 10.0, 300.0, 30.0, 60.0, 5.0, 300.0]),
    ];

    // Synthesise one implementation per profile.
    let mut systems: Vec<(String, System)> = Vec::new();
    for (name, sojourns) in &profiles {
        let psi = profile(*sojourns);
        let omsm = base.omsm().with_probabilities(&psi).expect("valid probabilities");
        let system = System::new(
            format!("smartphone_{name}"),
            omsm,
            base.arch().clone(),
            base.tech().clone(),
        )
        .expect("valid system");
        systems.push((name.to_string(), system));
    }

    writeln!(report, "derived mode probabilities:").unwrap();
    for (name, system) in &systems {
        let psi: Vec<String> = system
            .omsm()
            .modes()
            .map(|(_, m)| format!("{}={:.2}", m.name(), m.probability()))
            .collect();
        writeln!(report, "  {:<13} {}", name, psi.join("  ")).unwrap();
    }

    let mut results = Vec::new();
    for (name, system) in &systems {
        eprintln!("synthesising for {name} ({} runs) …", options.runs);
        let mut best: Option<SynthesisResult> = None;
        for i in 0..options.runs {
            let cfg = options.config(options.base_seed + i, true, true);
            let synthesizer = Synthesizer::new(system, cfg);
            let result = synthesizer.run().expect("schedulable system");
            if let Some(summary) =
                momsynth_bench::verified_summary(system, &synthesizer, &result)
            {
                summaries.push(summary);
            }
            if best.as_ref().is_none_or(|b| result.best.fitness < b.best.fitness) {
                best = Some(result);
            }
        }
        let result = best.expect("at least one run");
        writeln!(
            report,
            "\n{name}: {:.4} mW (feasible: {})",
            result.best.power.average.as_milli(),
            result.best.is_feasible()
        )
        .unwrap();
        results.push((name.clone(), result));
    }

    // Cross-evaluation: what does user B pay for running user A's mapping?
    writeln!(report, "\ncross-evaluation (rows: mapping optimised for; columns: actual user) [mW]:")
        .unwrap();
    write!(report, "{:<13}", "").unwrap();
    for (name, _) in &systems {
        write!(report, " {name:>13}").unwrap();
    }
    writeln!(report).unwrap();
    for (row_name, result) in &results {
        write!(report, "{row_name:<13}").unwrap();
        for (_, system) in &systems {
            let cfg = options.config(options.base_seed, true, true);
            let evaluator = Evaluator::new(system, &cfg);
            let solution = evaluator
                .evaluate(result.best.mapping.clone(), Some(&DvsOptions::fine()))
                .expect("mapping transfers across profiles");
            write!(report, " {:>13.4}", solution.power.average.as_milli()).unwrap();
        }
        writeln!(report).unwrap();
    }
    writeln!(report, "\n(each column's minimum should sit on or near the diagonal: a user is served best\n by an implementation synthesised for a profile like theirs, and running a very\n different user's implementation can cost integer factors)").unwrap();

    print!("{report}");
    write_results(&options, "profile_sensitivity", &report, &summaries);
}
