//! Regenerates Fig. 5: the DVS transformation of parallel hardware-core
//! executions into equivalent sequential virtual tasks, and the voltage
//! scaling it enables.

use momsynth_dvs::{scale_mode, virtual_tasks, DvsOptions};
use momsynth_gen::suite::{generate, GeneratorParams};
use momsynth_model::ids::ModeId;
use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

fn main() {
    // A generated system with a DVS-enabled hardware PE.
    let mut params = GeneratorParams::new("fig5", 42);
    params.modes = 1;
    params.tasks_per_mode = (10, 10);
    params.hardware_pes = 1;
    params.dvs_hardware_pes = 1;
    params.slack_factor = 2.0;
    let system = generate(&params);

    // Map everything implementable onto the hardware PE.
    let hw = system.arch().hardware_pes().next().expect("one HW PE");
    let mapping = SystemMapping::from_fn(&system, |id| {
        let candidates = system.candidate_pes(id);
        *candidates.iter().find(|&&pe| pe == hw).unwrap_or(&candidates[0])
    });
    let alloc = CoreAllocation::minimal(&system, &mapping);
    let schedule =
        schedule_mode(&system, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())
            .expect("fig5 system schedules");

    println!("schedule on {}:", system.arch().pe(hw).name());
    print!("{}", schedule.to_gantt_string(&system));

    let groups = virtual_tasks(&system, &schedule, hw);
    println!("\nvirtual tasks after the Fig. 5 transformation:");
    for (i, g) in groups.iter().enumerate() {
        println!(
            "  v{i}: {} member(s), span {:.3}..{:.3} ms, energy {:.4} mWs, mean power {:.3} mW",
            g.members.len(),
            g.start.as_millis(),
            g.end.as_millis(),
            g.energy.as_milli_joules(),
            g.mean_power().as_milli(),
        );
    }

    let scaled = scale_mode(&system, &schedule, &DvsOptions::fine());
    let graph = system.omsm().mode(ModeId::new(0)).graph();
    let total_nominal: f64 = graph
        .task_ids()
        .map(|t| {
            let e = schedule.task(t);
            system
                .tech()
                .impl_of(graph.task(t).task_type(), e.pe)
                .expect("implementation exists")
                .energy()
                .as_milli_joules()
        })
        .sum();
    let total_scaled: f64 = graph
        .task_ids()
        .map(|t| {
            let e = schedule.task(t);
            let nominal = system
                .tech()
                .impl_of(graph.task(t).task_type(), e.pe)
                .expect("implementation exists")
                .energy()
                .as_milli_joules();
            nominal * scaled.energy_factor(t)
        })
        .sum();
    println!(
        "\nsingle-rail DVS over the virtual tasks: {total_nominal:.4} mWs -> {total_scaled:.4} mWs ({:.1} % saved, {} iterations)",
        (1.0 - total_scaled / total_nominal) * 100.0,
        scaled.iterations(),
    );
}
