//! Regenerates Table 3: the smart-phone real-life example, with and
//! without DVS, with and without mode execution probabilities.
//!
//! Usage: `cargo run --release -p momsynth-bench --bin table3 [--runs N] [--seed S] [--quick]`

use momsynth_bench::{compare_flows, print_table, HarnessOptions};
use momsynth_gen::smartphone::smartphone;

fn main() {
    let options = HarnessOptions::from_args();
    let phone = smartphone();
    println!("{}", phone.summary());

    eprintln!("synthesising smart phone (fixed voltage) …");
    let mut fixed = compare_flows(&phone, false, &options);
    fixed.name = "w/o DVS".into();
    eprintln!("synthesising smart phone (DVS) …");
    let mut dvs = compare_flows(&phone, true, &options);
    dvs.name = "with DVS".into();

    let overall = (1.0 - dvs.power_aware_mw / fixed.power_neglecting_mw) * 100.0;
    print_table(
        &format!("Table 3 — smart phone, {} runs/flow", options.runs),
        &[fixed, dvs],
    );
    println!("overall reduction (w/o DVS, w/o probab. -> DVS + probab.): {overall:.2} %");
}
