//! Regenerates Table 3: the smart-phone real-life example, with and
//! without DVS, with and without mode execution probabilities.
//!
//! Usage: `cargo run --release -p momsynth-bench --bin table3 [--runs N] [--seed S] [--quick] [--out DIR]`

use momsynth_bench::{
    compare_flows_detailed, render_table, retain_verified, write_results, HarnessOptions,
};
use momsynth_gen::smartphone::smartphone;

fn main() {
    let options = HarnessOptions::from_args();
    let phone = smartphone();
    println!("{}", phone.summary());

    eprintln!("synthesising smart phone (fixed voltage) …");
    let (mut fixed, mut summaries) = compare_flows_detailed(&phone, false, &options);
    fixed.name = "w/o DVS".into();
    eprintln!("synthesising smart phone (DVS) …");
    let (mut dvs, dvs_summaries) = compare_flows_detailed(&phone, true, &options);
    dvs.name = "with DVS".into();
    summaries.extend(dvs_summaries);

    let overall = (1.0 - dvs.power_aware_mw / fixed.power_neglecting_mw) * 100.0;
    let mut rows = vec![fixed, dvs];
    retain_verified(&mut rows);
    let mut report = render_table(
        &format!("Table 3 — smart phone, {} runs/flow", options.runs),
        &rows,
    );
    report.push_str(&format!(
        "overall reduction (w/o DVS, w/o probab. -> DVS + probab.): {overall:.2} %\n"
    ));
    print!("{report}");
    write_results(&options, "table3", &report, &summaries);
}
