//! Ablations of the design decisions called out in `DESIGN.md`:
//!
//! * **D2** — the four improvement mutation operators on/off;
//! * **D3** — hardware-rail DVS (Fig. 5 transform) vs software-only DVS;
//! * **D4** — core replication for parallel low-mobility tasks on/off;
//! * **D5** — mobility-priority list scheduling vs FIFO ordering.
//!
//! Each ablation synthesises the same benchmark with one knob flipped and
//! reports the achieved average power (mean over runs).
//!
//! Usage: `cargo run --release -p momsynth-bench --bin ablations [--runs N] [--seed S] [--quick] [--out DIR]`

use std::fmt::Write;

use momsynth_bench::{write_results, HarnessOptions};
use momsynth_core::{DvsSynthesisOptions, SynthesisConfig, Synthesizer};
use momsynth_telemetry::RunSummary;
use momsynth_gen::suite::{generate, mul, GeneratorParams};
use momsynth_model::units::{Cells, Seconds, Volts, Watts};
use momsynth_model::{
    ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind, System,
    TaskGraphBuilder, TechLibraryBuilder,
};

/// A tight workload that actually stresses core replication and list
/// scheduling: few types, many tasks, little slack, two DVS-capable
/// hardware PEs.
fn tight_system() -> System {
    let mut params = GeneratorParams::new("ablation_tight", 97);
    params.modes = 2;
    params.tasks_per_mode = (20, 24);
    params.type_pool = 2; // many same-type tasks -> replication matters
    params.hardware_pes = 2;
    params.dvs_hardware_pes = 2;
    params.slack_factor = 1.06;
    generate(&params)
}

/// Six independent type-A tasks against a period that needs three
/// parallel hardware cores: replication (D4) decides feasibility.
fn replication_system() -> System {
    let mut tech = TechLibraryBuilder::new();
    let ta = tech.add_type("A");
    let mut arch = ArchitectureBuilder::new();
    let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(2.0)));
    let hw = arch.add_pe(
        Pe::hardware("hw", PeKind::Asic, Cells::new(2_000), Watts::from_milli(1.0)).with_dvs(
            DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(1.2), Volts::new(1.8), Volts::new(2.4), Volts::new(3.3)],
            ),
        ),
    );
    arch.add_cl(Cl::bus(
        "bus",
        vec![cpu, hw],
        Seconds::from_micros(1.0),
        Watts::from_milli(1.0),
        Watts::from_milli(0.2),
    ))
    .expect("valid bus");
    // SW: 40 ms @ 300 mW; HW: 10 ms @ 5 mW, 300 cells.
    tech.set_impl(
        ta,
        cpu,
        Implementation::software(Seconds::from_millis(40.0), Watts::from_milli(300.0)),
    );
    tech.set_impl(
        ta,
        hw,
        Implementation::hardware(
            Seconds::from_millis(10.0),
            Watts::from_milli(5.0),
            Cells::new(300),
        ),
    );
    // Six independent tasks in an 11 ms period: SW impossible (240 ms),
    // one HW core impossible (60 ms) — only six replicated cores fit, and
    // the 1 ms mobility is low enough to trigger replication.
    let mut g = TaskGraphBuilder::new("burst", Seconds::from_millis(11.0));
    for i in 0..6 {
        g.add_task(format!("t{i}"), ta);
    }
    let mut omsm = OmsmBuilder::new();
    omsm.add_mode("burst", 1.0, g.build().expect("valid graph"));
    System::new(
        "replication",
        omsm.build().expect("valid OMSM"),
        arch.build().expect("valid architecture"),
        tech.build(),
    )
    .expect("valid system")
}

/// Mean reported power and feasible fraction over the runs; appends one
/// [`RunSummary`] per run to `summaries`.
fn measure(
    system: &System,
    options: &HarnessOptions,
    summaries: &mut Vec<RunSummary>,
    make: impl Fn(u64) -> SynthesisConfig,
) -> (f64, f64) {
    let mut power = 0.0;
    let mut feasible = 0u64;
    for i in 0..options.runs {
        let synthesizer = Synthesizer::new(system, make(options.base_seed + i));
        let result = synthesizer.run().expect("schedulable system");
        power += result.best.power.average.as_milli();
        if result.best.is_feasible() {
            feasible += 1;
        }
        if let Some(summary) = momsynth_bench::verified_summary(system, &synthesizer, &result) {
            summaries.push(summary);
        }
    }
    (power / options.runs as f64, feasible as f64 / options.runs as f64)
}

fn main() {
    let options = HarnessOptions::from_args();
    let bench = mul(6);
    let tight = tight_system();
    let mut summaries = Vec::new();
    let mut report = String::new();

    writeln!(report, "Ablations ({} runs each)", options.runs).unwrap();
    writeln!(report, "{:<48} {:>14} {:>10}", "variant", "power [mW]", "feasible").unwrap();
    writeln!(report, "{}", "-".repeat(76)).unwrap();
    writeln!(report, "(power is only meaningful at feasible = 1.00)").unwrap();

    // D2: improvement operators.
    for (label, on) in [("D2 improvement operators ON (default)", true), ("D2 improvement operators OFF", false)] {
        let (p, f) = measure(&bench, &options, &mut summaries, |seed| {
            let mut cfg = options.config(seed, true, false);
            cfg.improvement_operators = on;
            cfg
        });
        writeln!(report, "{label:<48} {p:>14.4} {f:>10.2}").unwrap();
    }

    // D3: hardware-rail DVS on mul6, whose two hardware PEs are
    // DVS-enabled.
    for (label, sw_only) in [("D3 DVS on SW+HW rails (default)", false), ("D3 DVS on SW rails only", true)] {
        let (p, f) = measure(&bench, &options, &mut summaries, |seed| {
            let mut cfg = options.config(seed, true, true);
            cfg.dvs = Some(if sw_only {
                DvsSynthesisOptions::software_only()
            } else {
                DvsSynthesisOptions::default()
            });
            cfg
        });
        writeln!(report, "{label:<48} {p:>14.4} {f:>10.2}").unwrap();
    }

    // D4: core replication, on a burst workload where only replicated
    // cores can meet the period.
    let burst = replication_system();
    for (label, replicate) in [("D4 core replication ON (default)", true), ("D4 core replication OFF", false)] {
        let (p, f) = measure(&burst, &options, &mut summaries, |seed| {
            let mut cfg = options.config(seed, true, true);
            cfg.alloc.replicate = replicate;
            cfg
        });
        writeln!(report, "{label:<48} {p:>14.4} {f:>10.2}").unwrap();
    }

    // D5: scheduler priority rule, on the tight workload where ordering
    // decides deadline feasibility.
    for (label, priority) in [("D5 mobility priorities (default)", momsynth_sched::Priority::Mobility), ("D5 FIFO priorities", momsynth_sched::Priority::Fifo)] {
        let (p, f) = measure(&tight, &options, &mut summaries, |seed| {
            let mut cfg = options.config(seed, true, false);
            cfg.scheduler.priority = priority;
            cfg
        });
        writeln!(report, "{label:<48} {p:>14.4} {f:>10.2}").unwrap();
    }

    print!("{report}");
    write_results(&options, "ablations", &report, &summaries);
}
