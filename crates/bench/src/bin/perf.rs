//! `perf` — wall-clock benchmark of the batched/parallel fitness
//! evaluator and the genome-keyed evaluation cache.
//!
//! Synthesises the smartphone, the automotive ECU and one generated
//! `mulN` benchmark at `--threads 1` and at a parallel thread count,
//! asserting along the way that every run returns the *identical* best
//! solution (the parallel path is bit-deterministic) and that every
//! persisted number passed the independent `momsynth-check` oracle.
//! Results go to `BENCH_perf.json`: per workload and thread count the
//! wall time, evaluation throughput, cache hit rate and speedup over the
//! serial run.
//!
//! Also times the smartphone workload with a fully enabled metrics
//! registry attached against a bare run, gating the instrumentation
//! overhead.
//!
//! Exit codes: `0` success; `1` when a run failed verification or the
//! parallel and serial runs disagree on the best solution; `2` when a
//! regression gate trips: the parallel run is >10% slower than serial
//! (on a machine that actually has multiple cores — on a single-core
//! machine the gate is reported but not enforced, with the reason
//! recorded in `gate_skip_reason`), or the metrics-instrumented run is
//! >2% slower than the bare run.

use std::process::ExitCode;
use std::time::Instant;

use momsynth_bench::{verified_summary, HarnessOptions};
use momsynth_core::{prove, ProveOptions, SynthControl, Synthesizer};
use momsynth_gen::automotive::automotive_ecu;
use momsynth_gen::smartphone::smartphone;
use momsynth_gen::suite::mul;
use momsynth_metrics::{MetricsSink, Registry};
use momsynth_model::System;
use serde::Serialize;

/// Thread count the serial baseline is compared against.
const PARALLEL_THREADS: usize = 4;

/// Maximum tolerated slowdown of the parallel run, in percent.
const MAX_SLOWDOWN_PERCENT: f64 = 10.0;

/// Maximum tolerated metrics-instrumentation overhead, in percent.
const MAX_METRICS_OVERHEAD_PERCENT: f64 = 2.0;

/// Timed runs per arm of the metrics-overhead measurement (min-of-N
/// defeats one-off scheduler noise).
const METRICS_OVERHEAD_RUNS: usize = 3;

/// Below this baseline wall time a 2% margin is smaller than timer and
/// scheduler noise, so the overhead gate is reported but not enforced.
const METRICS_GATE_MIN_BASELINE_S: f64 = 0.05;

/// Leaf-evaluation budget of the per-workload optimality certificate.
/// Enough to exhaust small spaces (gap 0); on the big benchmarks the
/// branch-and-bound degrades to a sound gap bound in well under a
/// second.
const PROVE_BUDGET_EVALS: u64 = 5_000;

#[derive(Debug, Serialize)]
struct PerfRow {
    threads: u64,
    wall_time_s: f64,
    evals_per_sec: f64,
    cache_hit_rate: f64,
    speedup_vs_serial: f64,
    evaluations: u64,
    best_power_mw: f64,
    feasible: bool,
    verified: bool,
}

#[derive(Debug, Serialize)]
struct PerfWorkload {
    system: String,
    dvs: bool,
    seed: u64,
    /// Whether every thread count produced the same best mapping and
    /// fitness (it must — the parallel path is bit-deterministic).
    identical_best: bool,
    /// Fraction of (task, candidate PE) pairs the static analyzer pruned
    /// from the genome domain.
    pruned_domain_ratio: f64,
    /// Serial wall time with static domain pruning on (the default).
    wall_time_pruning_on_s: f64,
    /// Serial wall time of an extra run with `prune_domains` disabled.
    wall_time_pruning_off_s: f64,
    /// Whether the pruning-on and pruning-off runs found the same best
    /// cost (pruning only removes provably infeasible genes).
    pruning_identical_best: bool,
    /// Certified relative optimality gap of the serial best under a
    /// [`PROVE_BUDGET_EVALS`]-leaf branch-and-bound certificate: `0.0`
    /// when proven optimal, positive for a sound residual bound, `null`
    /// when no finite certificate exists.
    certified_gap: Option<f64>,
    rows: Vec<PerfRow>,
}

#[derive(Debug, Serialize)]
struct PerfReport {
    parallel_threads: u64,
    machine_parallelism: u64,
    /// The gate only binds where parallelism is physically possible.
    gate_enforced: bool,
    /// Why the slowdown gate was not enforced (`None` when it was).
    gate_skip_reason: Option<String>,
    max_slowdown_percent: f64,
    /// Slowdown of the parallel runs over the serial runs, total wall
    /// time across all workloads, in percent (negative = speedup).
    aggregate_slowdown_percent: f64,
    metrics_overhead: MetricsOverhead,
    workloads: Vec<PerfWorkload>,
}

/// Wall-time cost of an enabled metrics registry on the smartphone
/// workload (serial, min-of-N on both arms).
#[derive(Debug, Serialize)]
struct MetricsOverhead {
    /// Timed runs per arm.
    runs: u64,
    /// Min wall time without any telemetry sink attached.
    baseline_s: f64,
    /// Min wall time with an enabled registry's [`MetricsSink`] attached.
    instrumented_s: f64,
    /// `(instrumented - baseline) / baseline`, in percent.
    overhead_percent: f64,
    max_overhead_percent: f64,
    gate_enforced: bool,
    /// Why the overhead gate was not enforced (`None` when it was).
    gate_skip_reason: Option<String>,
}

/// Effective machine parallelism. `MOMSYNTH_MACHINE_PARALLELISM`
/// overrides the probe (CI pins it so the gate decision is explicit);
/// otherwise the OS report is used, falling back to counting
/// `/proc/cpuinfo` processors (containers sometimes deny the syscall
/// while the file is still accurate), then to 1.
fn machine_parallelism() -> usize {
    if let Some(n) = std::env::var("MOMSYNTH_MACHINE_PARALLELISM")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    if let Ok(n) = std::thread::available_parallelism() {
        return n.get();
    }
    std::fs::read_to_string("/proc/cpuinfo")
        .map(|text| text.lines().filter(|l| l.starts_with("processor")).count())
        .ok()
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Times the smartphone workload bare and with a fully enabled metrics
/// registry attached, min-of-N per arm.
fn measure_metrics_overhead(options: &HarnessOptions) -> MetricsOverhead {
    let system = smartphone();
    let time_once = |registry: Option<&Registry>| -> f64 {
        let mut cfg = options.config(options.base_seed, true, true);
        cfg.threads = 1;
        let synthesizer = Synthesizer::new(&system, cfg);
        let sink = registry.map(MetricsSink::new);
        let start = Instant::now();
        let control = SynthControl {
            sink: sink.as_ref().map(|s| s as _),
            ..SynthControl::default()
        };
        synthesizer.run_controlled(control).expect("schedulable system");
        start.elapsed().as_secs_f64()
    };
    let registry = Registry::new();
    let mut baseline_runs = Vec::new();
    let mut instrumented_runs = Vec::new();
    // Alternate the arms so slow drift (thermal, noisy neighbours) hits
    // both equally.
    for _ in 0..METRICS_OVERHEAD_RUNS {
        baseline_runs.push(time_once(None));
        instrumented_runs.push(time_once(Some(&registry)));
    }
    let min = |runs: &[f64]| runs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = |runs: &[f64]| runs.iter().copied().fold(0.0f64, f64::max);
    let baseline_s = min(&baseline_runs);
    let instrumented_s = min(&instrumented_runs);
    let overhead_percent =
        if baseline_s > 0.0 { (instrumented_s / baseline_s - 1.0) * 100.0 } else { 0.0 };
    // The baseline arm's own min-to-max spread is the measurement noise
    // floor; a 2% verdict below it would gate on the scheduler, not on
    // the instrumentation.
    let noise_percent =
        if baseline_s > 0.0 { (max(&baseline_runs) / baseline_s - 1.0) * 100.0 } else { 0.0 };
    let gate_skip_reason = if baseline_s < METRICS_GATE_MIN_BASELINE_S {
        Some(format!(
            "baseline run too short ({baseline_s:.4} s < {METRICS_GATE_MIN_BASELINE_S} s) \
             to resolve a {MAX_METRICS_OVERHEAD_PERCENT}% margin above timer noise"
        ))
    } else if noise_percent > MAX_METRICS_OVERHEAD_PERCENT {
        Some(format!(
            "baseline run-to-run spread is {noise_percent:.1}%, wider than the \
             {MAX_METRICS_OVERHEAD_PERCENT}% margin the gate would have to resolve"
        ))
    } else {
        None
    };
    MetricsOverhead {
        runs: METRICS_OVERHEAD_RUNS as u64,
        baseline_s,
        instrumented_s,
        overhead_percent,
        max_overhead_percent: MAX_METRICS_OVERHEAD_PERCENT,
        gate_enforced: gate_skip_reason.is_none(),
        gate_skip_reason,
    }
}

fn bench_workload(
    system: &System,
    dvs: bool,
    options: &HarnessOptions,
    all_verified: &mut bool,
) -> PerfWorkload {
    let seed = options.base_seed;
    let mut rows = Vec::new();
    let mut identical_best = true;
    let mut serial_time = 0.0;
    let mut serial_best: Option<(f64, f64)> = None; // (fitness, power)
    let mut pruned_domain_ratio = 0.0;
    for threads in [1, PARALLEL_THREADS] {
        let mut cfg = options.config(seed, true, dvs);
        cfg.threads = threads;
        let synthesizer = Synthesizer::new(system, cfg);
        let start = Instant::now();
        let result = synthesizer.run().expect("schedulable system");
        let wall = start.elapsed().as_secs_f64();
        let verified = match verified_summary(system, &synthesizer, &result) {
            Some(_) => true,
            None => {
                *all_verified = false;
                false
            }
        };
        match serial_best {
            None => {
                serial_time = wall;
                serial_best = Some((result.best.fitness, result.best.power.average.as_milli()));
                pruned_domain_ratio = result.pruned_domain_ratio;
            }
            Some((fitness, _)) => {
                if result.best.fitness != fitness {
                    identical_best = false;
                }
            }
        }
        rows.push(PerfRow {
            threads: threads as u64,
            wall_time_s: wall,
            evals_per_sec: if wall > 0.0 { result.evaluations as f64 / wall } else { 0.0 },
            cache_hit_rate: result.counters.cache_hit_rate(),
            speedup_vs_serial: if wall > 0.0 { serial_time / wall } else { 0.0 },
            evaluations: result.evaluations as u64,
            best_power_mw: result.best.power.average.as_milli(),
            feasible: result.best.is_feasible(),
            verified,
        });
    }
    // An extra serial run with static domain pruning disabled, to record
    // what the pruned genome domains buy (or cost) in GA wall time.
    let mut cfg = options.config(seed, true, dvs);
    cfg.threads = 1;
    cfg.prune_domains = false;
    let synthesizer = Synthesizer::new(system, cfg);
    let start = Instant::now();
    let unpruned = synthesizer.run().expect("schedulable system");
    let wall_time_pruning_off_s = start.elapsed().as_secs_f64();
    let pruning_identical_best = serial_best
        .is_some_and(|(_, power)| (unpruned.best.power.average.as_milli() - power).abs() < 1e-9);

    // Certify the serial best with a budgeted branch-and-bound proof:
    // gap 0 when the pruned space was exhausted, a sound residual bound
    // otherwise.
    let certified_gap = serial_best.and_then(|(fitness, _)| {
        let cfg = options.config(seed, true, dvs);
        let prove_options = ProveOptions {
            max_evals: PROVE_BUDGET_EVALS,
            incumbent: Some(fitness),
            ..ProveOptions::default()
        };
        let gap = prove(system, &cfg, &prove_options).ok()?.epsilon();
        gap.is_finite().then_some(gap)
    });

    println!(
        "{:<14} serial {:>7.2}s, {}x {:>7.2}s — speedup {:.2}x, hit rate {:.1}%, \
         pruned {:.1}% (off: {:>7.2}s), certified gap {}{}{}",
        system.name(),
        rows[0].wall_time_s,
        PARALLEL_THREADS,
        rows[1].wall_time_s,
        rows[1].speedup_vs_serial,
        rows[1].cache_hit_rate * 100.0,
        pruned_domain_ratio * 100.0,
        wall_time_pruning_off_s,
        certified_gap.map_or_else(|| "-".to_owned(), |g| format!("{g:.4}")),
        if identical_best { "" } else { "  BEST SOLUTIONS DIFFER" },
        if pruning_identical_best { "" } else { "  PRUNING CHANGED THE BEST" },
    );
    PerfWorkload {
        system: system.name().to_owned(),
        dvs,
        seed,
        identical_best,
        pruned_domain_ratio,
        wall_time_pruning_on_s: rows[0].wall_time_s,
        wall_time_pruning_off_s,
        pruning_identical_best,
        certified_gap,
        rows,
    }
}

fn main() -> ExitCode {
    let options = HarnessOptions::from_args();
    let machine = machine_parallelism();
    let gate_enforced = machine >= 2;
    let gate_skip_reason = (!gate_enforced).then(|| {
        format!(
            "machine parallelism is {machine}: a {PARALLEL_THREADS}-thread run cannot be \
             expected to keep up with serial on a single core"
        )
    });

    // The DVS inner loop dominates the smartphone's evaluation cost, so
    // it is the workload where batching pays off most; the automotive
    // ECU and the generated benchmark exercise the fixed-voltage path.
    let mut all_verified = true;
    let workloads = vec![
        bench_workload(&smartphone(), true, &options, &mut all_verified),
        bench_workload(&automotive_ecu(), false, &options, &mut all_verified),
        bench_workload(&mul(if options.quick { 9 } else { 3 }), false, &options, &mut all_verified),
    ];

    let identical = workloads.iter().all(|w| w.identical_best);
    // Gate on the aggregate wall time: per-workload ratios are noisy for
    // sub-10ms systems where thread startup dominates.
    let total_serial: f64 = workloads.iter().filter_map(|w| Some(w.rows.first()?.wall_time_s)).sum();
    let total_parallel: f64 = workloads.iter().filter_map(|w| Some(w.rows.last()?.wall_time_s)).sum();
    let worst_slowdown =
        if total_serial > 0.0 { (total_parallel / total_serial - 1.0) * 100.0 } else { 0.0 };

    let metrics_overhead = measure_metrics_overhead(&options);
    println!(
        "metrics overhead: bare {:.3}s, instrumented {:.3}s — {:+.2}% (limit {}%{})",
        metrics_overhead.baseline_s,
        metrics_overhead.instrumented_s,
        metrics_overhead.overhead_percent,
        metrics_overhead.max_overhead_percent,
        if metrics_overhead.gate_enforced { "" } else { ", not enforced" },
    );

    let report = PerfReport {
        parallel_threads: PARALLEL_THREADS as u64,
        machine_parallelism: machine as u64,
        gate_enforced,
        gate_skip_reason,
        max_slowdown_percent: MAX_SLOWDOWN_PERCENT,
        aggregate_slowdown_percent: worst_slowdown,
        metrics_overhead,
        workloads,
    };
    let path = options
        .out
        .as_deref()
        .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from)
        .join("BENCH_perf.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    if !identical {
        eprintln!("error: parallel and serial runs returned different best solutions");
        return ExitCode::from(1);
    }
    if !all_verified {
        eprintln!("error: a run failed independent re-verification");
        return ExitCode::from(1);
    }
    if gate_enforced && worst_slowdown > MAX_SLOWDOWN_PERCENT {
        eprintln!(
            "error: parallel run is {worst_slowdown:.1}% slower than serial \
             (limit {MAX_SLOWDOWN_PERCENT}%)"
        );
        return ExitCode::from(2);
    }
    if let Some(reason) = &report.gate_skip_reason {
        println!("note: slowdown gate reported, not enforced — {reason}");
    }
    if report.metrics_overhead.gate_enforced
        && report.metrics_overhead.overhead_percent > MAX_METRICS_OVERHEAD_PERCENT
    {
        eprintln!(
            "error: metrics instrumentation costs {:.2}% wall time \
             (limit {MAX_METRICS_OVERHEAD_PERCENT}%)",
            report.metrics_overhead.overhead_percent
        );
        return ExitCode::from(2);
    }
    if let Some(reason) = &report.metrics_overhead.gate_skip_reason {
        println!("note: metrics-overhead gate reported, not enforced — {reason}");
    }
    ExitCode::SUCCESS
}
