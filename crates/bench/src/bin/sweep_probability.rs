//! Extension figure: how the value of probability-awareness grows with
//! the skew of the usage profile.
//!
//! Sweeps the mode probabilities of the paper's Fig. 2 system from
//! uniform (Ψ₂ = 0.5) to extreme (Ψ₂ = 0.99) and, because the design
//! space has only 2⁶ = 64 mappings, computes the *exact* optimum of both
//! flows by enumeration — no GA noise. The printed series is the
//! reduction column of Table 1 as a function of skew.
//!
//! Alongside stdout, the series is persisted as
//! `results_sweep_probability.{txt,json}` (no [`RunSummary`] records —
//! this binary enumerates exactly instead of running the GA).
//!
//! Usage: `cargo run --release -p momsynth-bench --bin sweep_probability [--out DIR]`

use std::fmt::Write;

use momsynth_bench::HarnessOptions;
use momsynth_core::{Evaluator, GenomeLayout, SynthesisConfig};
use momsynth_gen::examples::example1_system;
use momsynth_model::System;
use serde::Serialize;

/// One point of the skew sweep, serialised to the JSON results file.
#[derive(Serialize)]
struct SweepPoint {
    psi2: f64,
    neglecting_mws: f64,
    aware_mws: f64,
    reduction_percent: f64,
}

/// Exact best reported power (true-Ψ weighted) over all mappings, when
/// the optimiser weights modes by `weights`.
fn exact_optimum(system: &System, probability_aware: bool) -> f64 {
    let mut cfg = SynthesisConfig::new(0);
    cfg.probability_aware = probability_aware;
    let evaluator = Evaluator::new(system, &cfg);
    let layout = GenomeLayout::new(system);
    let mut best_fitness = f64::INFINITY;
    let mut best_power = f64::INFINITY;
    // Enumerate every genome (each locus has exactly 2 candidates here).
    let total: usize = 1 << layout.len();
    for code in 0..total {
        let genes: Vec<u16> =
            (0..layout.len()).map(|l| ((code >> l) & 1) as u16).collect();
        let solution = evaluator
            .evaluate(layout.decode(&genes), None)
            .expect("example 1 schedules cleanly");
        if !solution.is_feasible() {
            continue;
        }
        if solution.fitness < best_fitness {
            best_fitness = solution.fitness;
            best_power = solution.power.average.as_milli();
        }
    }
    best_power
}

fn main() {
    let options = HarnessOptions::from_args();
    let base = example1_system();
    let mut report = String::new();
    writeln!(report, "exact optima of the Fig. 2 design space vs probability skew").unwrap();
    writeln!(
        report,
        "{:>6} {:>16} {:>16} {:>10}",
        "Ψ(O2)", "neglecting [mWs]", "aware [mWs]", "red. %"
    )
    .unwrap();
    let mut series = Vec::new();
    for psi2 in [0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99] {
        let omsm = base
            .omsm()
            .with_probabilities(&[1.0 - psi2, psi2])
            .expect("valid probabilities");
        let system = System::new(
            format!("example1_psi{psi2}"),
            omsm,
            base.arch().clone(),
            base.tech().clone(),
        )
        .expect("valid system");
        let aware = exact_optimum(&system, true);
        let neglecting = exact_optimum(&system, false);
        let reduction = (1.0 - aware / neglecting) * 100.0;
        writeln!(report, "{psi2:>6.2} {neglecting:>16.4} {aware:>16.4} {reduction:>10.2}").unwrap();
        series.push(SweepPoint {
            psi2,
            neglecting_mws: neglecting,
            aware_mws: aware,
            reduction_percent: reduction,
        });
    }
    writeln!(report, "\n(at Ψ = 0.5 the flows coincide; the gap grows with skew — the").unwrap();
    writeln!(report, " quantitative core of the paper's argument)").unwrap();
    print!("{report}");

    let txt_path = options.results_path("sweep_probability", "txt");
    if let Err(e) = std::fs::write(&txt_path, &report) {
        eprintln!("warning: cannot write {}: {e}", txt_path.display());
    } else {
        println!("wrote {}", txt_path.display());
    }
    let json_path = options.results_path("sweep_probability", "json");
    let json = serde_json::to_string_pretty(&series).expect("series serialises");
    if let Err(e) = std::fs::write(&json_path, json) {
        eprintln!("warning: cannot write {}: {e}", json_path.display());
    } else {
        println!("wrote {}", json_path.display());
    }
}
