//! Exact optimality certification of mapping fitness (`momsynth prove`).
//!
//! The GA returns a good mapping; this module says how good. It wraps
//! the deterministic branch-and-bound engine of `momsynth-ga` around the
//! same [`Evaluator`] the GA prices candidates with, enumerating the
//! statically pruned assignment space of the pre-synthesis analyzer and
//! cutting subtrees with an admissible fitness lower bound. The result
//! is a [`Certificate`]: either *Optimal* (the space was exhausted, the
//! cheapest assignment is known exactly) or *GapBound(ε)* (the budget
//! ran out first, but no assignment can price more than a factor `1+ε`
//! below the incumbent).
//!
//! # Bound soundness
//!
//! The fitness is `F_M = p̄ · tp · ap · rp [· boost]` with every penalty
//! factor at least 1, so any lower bound on the optimisation-weighted
//! average power `p̄` lower-bounds the fitness. For a prefix with loci
//! `0..depth` assigned, the bound sums, per mode `m` with weight `w_m`
//! and period `φ_m`:
//!
//! - **assigned loci** — `w_m · E(τ, pe) · δ(pe) / φ_m` for the chosen
//!   PE, where `δ(pe) = (V_min/V_max)²` on DVS-capable PEs under a DVS
//!   configuration (the quadratic energy factor at the lowest supply
//!   level — no voltage schedule can price below it) and `1` otherwise;
//! - **unassigned loci** — the minimum of that term over the locus's
//!   candidate domain;
//! - **communications with both endpoints assigned** to distinct PEs —
//!   `w_m / φ_m` times the cheapest transfer energy over the CLs
//!   connecting the two PEs (infinite when no CL does: the leaf cannot
//!   be scheduled at all, so the subtree prunes).
//!
//! Static power, idle CL power and transfers whose endpoints are not
//! both fixed contribute nothing — every dropped term is non-negative,
//! so the bound stays admissible for *any* completion, feasible or not,
//! at any DVS resolution (coarse search pricing, fine refinement, or
//! none).

use std::panic::{catch_unwind, AssertUnwindSafe};

use momsynth_analyze::{analyze_system, DomainReduction};
use momsynth_ga::bnb::{branch_and_bound, BnbBudget, BnbProblem};
use momsynth_model::System;

use crate::config::SynthesisConfig;
use crate::fitness::{Evaluator, Solution};
use crate::genome::{Gene, GenomeLayout};
use crate::synthesis::SynthesisError;

/// Controls of one [`prove`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProveOptions {
    /// Maximum leaf evaluations before the search degrades from a proof
    /// to a gap bound.
    pub max_evals: u64,
    /// Optional wall-clock deadline for the search (same graceful
    /// degradation; makes the run non-deterministic).
    pub deadline: Option<std::time::Instant>,
    /// Externally known achievable fitness (the GA's best) seeding the
    /// search: subtrees at or above it are cut immediately.
    pub incumbent: Option<f64>,
    /// Use the admissible prefix bound to prune. Disabled only by the
    /// soundness oracle, which compares bounded search against plain
    /// exhaustive enumeration.
    pub use_bounds: bool,
}

impl Default for ProveOptions {
    fn default() -> Self {
        Self { max_evals: 100_000, deadline: None, incumbent: None, use_bounds: true }
    }
}

/// How strong a [`Certificate`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CertificateStatus {
    /// The pruned assignment space was exhausted: no mapping prices
    /// below [`Certificate::lower_bound`], and
    /// [`Certificate::best_fitness`] attains it (up to bound slack).
    Optimal,
    /// The budget ran out first. `epsilon` is the certified relative
    /// gap: the optimum lies within `[lower_bound, best_fitness]` and
    /// `best_fitness ≤ (1 + epsilon) · lower_bound`. Infinite when no
    /// incumbent exists at all.
    GapBound {
        /// The certified relative optimality gap.
        epsilon: f64,
    },
}

impl CertificateStatus {
    /// The certified relative gap: `0` for [`CertificateStatus::Optimal`].
    pub fn epsilon(&self) -> f64 {
        match self {
            Self::Optimal => 0.0,
            Self::GapBound { epsilon } => *epsilon,
        }
    }
}

impl std::fmt::Display for CertificateStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Optimal => write!(f, "optimal"),
            Self::GapBound { epsilon } => write!(f, "gap-bound(ε = {epsilon:.6})"),
        }
    }
}

/// The outcome of [`prove`]: a machine-checkable optimality statement
/// about the mapping fitness of one system under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Proof strength.
    pub status: CertificateStatus,
    /// Certified fitness lower bound: no complete assignment in the
    /// (full) mapping space prices below this.
    pub lower_bound: f64,
    /// The cheapest *achievable* fitness known: the minimum of the
    /// search's best leaf and the seeded incumbent. `None` only when the
    /// budget expired before any leaf and no incumbent was given.
    pub best_fitness: Option<f64>,
    /// The search's own best solution, fully evaluated — absent when the
    /// seeded incumbent already priced at or below every explored leaf.
    pub best: Option<Solution>,
    /// Leaves priced by the evaluator.
    pub explored: u64,
    /// Subtrees cut by the admissible bound.
    pub pruned_by_bound: u64,
    /// Genome-domain reduction of the static analyzer (deadline and
    /// dominance candidate pruning) the search space was built from.
    pub domain_reduction: DomainReduction,
    /// Number of complete assignments in the searched (pruned) space.
    pub search_space: f64,
    /// The evaluation budget the search ran under.
    pub max_evals: u64,
}

impl Certificate {
    /// The certified relative optimality gap (`0` when optimal).
    pub fn epsilon(&self) -> f64 {
        self.status.epsilon()
    }

    /// Renders the certificate as the JSON document `momsynth prove`
    /// writes and the CI smoke job asserts over.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "status": match self.status {
                CertificateStatus::Optimal => "optimal",
                CertificateStatus::GapBound { .. } => "gap-bound",
            },
            "certified_gap": self.epsilon(),
            "lower_bound": self.lower_bound,
            "best_fitness": self.best_fitness,
            "explored": self.explored,
            "pruned_by_bound": self.pruned_by_bound,
            "pruned_by_deadline": self.domain_reduction.pruned_by_deadline,
            "pruned_by_dominance": self.domain_reduction.pruned_by_dominance,
            "total_candidates": self.domain_reduction.total_candidates,
            "search_space": self.search_space,
            "max_evals": self.max_evals,
        })
    }
}

/// The mapping space as a [`BnbProblem`]: leaves priced by the real
/// [`Evaluator`], prefixes bounded by the admissible power floor
/// described in the module docs.
struct MappingBnb<'a> {
    layout: &'a GenomeLayout,
    evaluator: &'a Evaluator<'a>,
    dvs: Option<momsynth_dvs::DvsOptions>,
    /// `terms[locus][choice]`: the locus's certified average-power
    /// contribution when mapped on its `choice`-th candidate.
    terms: Vec<Vec<f64>>,
    /// `suffix_min[depth]`: Σ over loci ≥ `depth` of the cheapest term.
    suffix_min: Vec<f64>,
    /// Per communication: both endpoint loci and the cost matrix
    /// `[src_choice][dst_choice]` (0 when PE-local, ∞ when unroutable).
    edges: Vec<(usize, usize, Vec<Vec<f64>>)>,
    use_bounds: bool,
    genes: Vec<Gene>,
}

impl<'a> MappingBnb<'a> {
    fn new(
        system: &'a System,
        config: &SynthesisConfig,
        layout: &'a GenomeLayout,
        evaluator: &'a Evaluator<'a>,
        use_bounds: bool,
    ) -> Self {
        let arch = system.arch();
        let tech = system.tech();
        let dvs_on = config.dvs.is_some();
        // δ(pe): the quadratic energy factor at the lowest supply level —
        // no voltage schedule prices a task below it.
        let dvs_floor = |pe: momsynth_model::ids::PeId| -> f64 {
            if !dvs_on {
                return 1.0;
            }
            match arch.pe(pe).dvs() {
                Some(cap) => {
                    let v_min = cap
                        .levels()
                        .iter()
                        .fold(cap.v_max(), |acc, &v| if v < acc { v } else { acc });
                    let r = v_min.value() / cap.v_max().value();
                    (r * r).clamp(0.0, 1.0)
                }
                None => 1.0,
            }
        };

        let mut terms = Vec::with_capacity(layout.len());
        for locus in 0..layout.len() {
            let id = layout.global(locus);
            let graph = system.omsm().mode(id.mode).graph();
            let ty = graph.task(id.task).task_type();
            let weight = evaluator.weights()[id.mode.index()];
            let period = graph.period().value();
            let row: Vec<f64> = layout
                .candidates(locus)
                .iter()
                .map(|&pe| {
                    let energy = tech
                        .impl_of(ty, pe)
                        .map_or(0.0, |i| i.energy().value());
                    if period > 0.0 {
                        weight * energy * dvs_floor(pe) / period
                    } else {
                        0.0
                    }
                })
                .collect();
            terms.push(row);
        }

        let mut suffix_min = vec![0.0; layout.len() + 1];
        for locus in (0..layout.len()).rev() {
            let cheapest =
                terms[locus].iter().cloned().fold(f64::INFINITY, f64::min);
            suffix_min[locus] = suffix_min[locus + 1] + cheapest.max(0.0);
        }

        let mut edges = Vec::new();
        for (mode, m) in system.omsm().modes() {
            let graph = m.graph();
            let weight = evaluator.weights()[mode.index()];
            let period = graph.period().value();
            if period <= 0.0 {
                continue;
            }
            for (_, comm) in graph.comms() {
                let src = layout.locus(mode, comm.src());
                let dst = layout.locus(mode, comm.dst());
                let matrix: Vec<Vec<f64>> = layout
                    .candidates(src)
                    .iter()
                    .map(|&pa| {
                        layout
                            .candidates(dst)
                            .iter()
                            .map(|&pb| {
                                if pa == pb {
                                    return 0.0;
                                }
                                arch.cls_between(pa, pb)
                                    .map(|cl_id| {
                                        let cl = arch.cl(cl_id);
                                        let t = cl.transfer_time(comm.data_units());
                                        (cl.transfer_power() * t).value()
                                    })
                                    .fold(f64::INFINITY, f64::min)
                                    * weight
                                    / period
                            })
                            .collect()
                    })
                    .collect();
                edges.push((src, dst, matrix));
            }
        }

        Self {
            layout,
            evaluator,
            dvs: config.dvs.as_ref().map(|d| d.eval),
            terms,
            suffix_min,
            edges,
            use_bounds,
            genes: vec![0; layout.len()],
        }
    }
}

impl BnbProblem for MappingBnb<'_> {
    fn len(&self) -> usize {
        self.layout.len()
    }

    fn domain_size(&self, locus: usize) -> usize {
        self.layout.candidates(locus).len()
    }

    fn prefix_bound(&self, choices: &[usize], depth: usize) -> f64 {
        if !self.use_bounds {
            return f64::NEG_INFINITY;
        }
        let mut bound = self.suffix_min[depth];
        for (locus, row) in self.terms[..depth].iter().enumerate() {
            bound += row[choices[locus]];
        }
        for (src, dst, matrix) in &self.edges {
            if *src < depth && *dst < depth {
                bound += matrix[choices[*src]][choices[*dst]];
            }
        }
        bound
    }

    fn leaf_cost(&mut self, choices: &[usize]) -> f64 {
        for (gene, &choice) in self.genes.iter_mut().zip(choices) {
            *gene = choice as Gene;
        }
        let mapping = self.layout.decode(&self.genes);
        let (evaluator, dvs) = (self.evaluator, self.dvs.as_ref());
        match catch_unwind(AssertUnwindSafe(|| evaluator.evaluate(mapping, dvs))) {
            Ok(Ok(solution)) if solution.fitness.is_finite() => solution.fitness,
            // Unschedulable or panicking assignments cannot be the
            // optimum; infinity keeps them out of `best` and above every
            // admissible bound.
            _ => f64::INFINITY,
        }
    }
}

/// Certifies the optimal mapping fitness of `system` under `config` by
/// exact branch-and-bound over the statically pruned assignment space.
///
/// The fitness domain is the same one the GA optimises (coarse-DVS
/// pricing, [`Evaluator::weights`] objective), so a GA best fitness
/// passed as [`ProveOptions::incumbent`] is directly comparable.
///
/// # Errors
///
/// Returns [`SynthesisError::Infeasible`] when the static analyzer
/// proves the specification unsatisfiable (same failure as synthesis).
pub fn prove(
    system: &System,
    config: &SynthesisConfig,
    options: &ProveOptions,
) -> Result<Certificate, SynthesisError> {
    let analysis = analyze_system(system);
    if analysis.has_errors() {
        return Err(SynthesisError::Infeasible(Box::new(analysis)));
    }
    let (layout, domain_reduction) = if config.prune_domains {
        (
            GenomeLayout::with_domains(system, analysis.capable_pes()),
            analysis.domain_reduction(),
        )
    } else {
        let layout = GenomeLayout::new(system);
        let total_candidates =
            (0..layout.len()).map(|l| layout.candidates(l).len()).sum();
        (
            layout,
            DomainReduction {
                total_candidates,
                pruned_by_deadline: 0,
                pruned_by_dominance: 0,
            },
        )
    };
    let search_space: f64 =
        (0..layout.len()).map(|l| layout.candidates(l).len() as f64).product();

    let evaluator = Evaluator::new(system, config);
    let mut problem =
        MappingBnb::new(system, config, &layout, &evaluator, options.use_bounds);
    let budget = BnbBudget { max_evals: options.max_evals, deadline: options.deadline };
    let outcome = branch_and_bound(&mut problem, budget, options.incumbent);

    let explored_best = outcome.best.as_ref().filter(|(_, c)| c.is_finite());
    let best_fitness = match (explored_best.map(|(_, c)| *c), options.incumbent) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let status = if outcome.proven {
        CertificateStatus::Optimal
    } else {
        let epsilon = match best_fitness {
            Some(best) if outcome.lower_bound > 0.0 => {
                ((best - outcome.lower_bound) / outcome.lower_bound).max(0.0)
            }
            _ => f64::INFINITY,
        };
        CertificateStatus::GapBound { epsilon }
    };
    // Re-evaluate the winning leaf into a full Solution so callers can
    // re-prove it with the independent checker.
    let best = explored_best
        .filter(|(_, cost)| options.incumbent.is_none_or(|seed| *cost <= seed))
        .and_then(|(choices, _)| {
            let genes: Vec<Gene> = choices.iter().map(|&c| c as Gene).collect();
            let dvs = config.dvs.as_ref().map(|d| d.eval);
            evaluator.evaluate(layout.decode(&genes), dvs.as_ref()).ok()
        });
    Ok(Certificate {
        status,
        lower_bound: outcome.lower_bound,
        best_fitness,
        best,
        explored: outcome.explored,
        pruned_by_bound: outcome.pruned_by_bound,
        domain_reduction,
        search_space,
        max_evals: options.max_evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::units::{Cells, Seconds, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };

    /// Two tasks on {CPU, ASIC} each: 4 assignments, optimum known by
    /// hand (both on the ASIC — cheapest energy, no transfer needed).
    fn small_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let hw = arch.add_pe(Pe::hardware(
            "hw",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();
        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(5.0), Watts::from_milli(30.0)),
        );
        tech.set_impl(
            ta,
            hw,
            Implementation::hardware(
                Seconds::from_millis(0.5),
                Watts::from_milli(1.0),
                Cells::new(200),
            ),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        let x = g.add_task("x", ta);
        let y = g.add_task("y", ta);
        g.add_comm(x, y, 10.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("small", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap()
    }

    #[test]
    fn small_space_is_certified_optimal() {
        let system = small_system();
        let config = SynthesisConfig::fast_preset(0);
        let cert =
            prove(&system, &config, &ProveOptions::default()).expect("feasible");
        assert_eq!(cert.status, CertificateStatus::Optimal);
        assert_eq!(cert.epsilon(), 0.0);
        let best = cert.best_fitness.expect("space was searched");
        assert!(cert.lower_bound <= best + 1e-12);
        assert!(cert.explored >= 1);
        assert_eq!(cert.search_space, 4.0);
        // The certified optimum is the exhaustive optimum.
        let exhaustive = prove(
            &system,
            &{
                let mut c = config.clone();
                c.prune_domains = false;
                c
            },
            &ProveOptions { use_bounds: false, ..ProveOptions::default() },
        )
        .unwrap();
        assert_eq!(exhaustive.status, CertificateStatus::Optimal);
        let reference = exhaustive.best_fitness.unwrap();
        assert!((best - reference).abs() <= 1e-9 * reference.max(1.0));
        // The winning leaf comes back as a full, checkable solution.
        let solution = cert.best.expect("unseeded search returns its best");
        assert!((solution.fitness - best).abs() <= 1e-12);
    }

    #[test]
    fn zero_budget_degrades_to_gap_bound_with_incumbent() {
        let system = small_system();
        let config = SynthesisConfig::fast_preset(0);
        // Price the all-software seed as the external incumbent.
        let evaluator = Evaluator::new(&system, &config);
        let layout = GenomeLayout::new(&system);
        let seed = evaluator
            .evaluate(layout.decode(&vec![0; layout.len()]), None)
            .unwrap()
            .fitness;
        let options = ProveOptions {
            max_evals: 0,
            incumbent: Some(seed),
            ..ProveOptions::default()
        };
        let cert = prove(&system, &config, &options).unwrap();
        match cert.status {
            CertificateStatus::GapBound { epsilon } => {
                assert!(epsilon >= 0.0 && epsilon.is_finite())
            }
            CertificateStatus::Optimal => panic!("zero budget cannot prove"),
        }
        assert_eq!(cert.explored, 0);
        assert!(cert.lower_bound <= seed);
        assert_eq!(cert.best_fitness, Some(seed));
        assert!(cert.best.is_none(), "no leaf was explored");
        let json = cert.to_json();
        assert_eq!(json["status"], serde_json::json!("gap-bound"));
        assert!(json["certified_gap"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn infeasible_spec_is_rejected_like_synthesis() {
        // A deadline below any execution time is statically infeasible.
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(50.0), Watts::from_milli(30.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(1.0));
        g.add_task("x", ta);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("bad", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let err = prove(&system, &SynthesisConfig::fast_preset(0), &ProveOptions::default())
            .expect_err("statically infeasible");
        assert!(matches!(err, SynthesisError::Infeasible(_)));
    }

    #[test]
    fn ga_best_lies_inside_its_own_certificate() {
        let system = small_system();
        let config = SynthesisConfig::fast_preset(1);
        let result = crate::synthesis::Synthesizer::new(&system, config.clone())
            .run()
            .unwrap();
        let options = ProveOptions {
            incumbent: Some(result.best.fitness),
            ..ProveOptions::default()
        };
        let cert = prove(&system, &config, &options).unwrap();
        // The refined GA fitness can price *below* coarse leaves, but
        // never below the certified bound.
        assert!(
            result.best.fitness >= cert.lower_bound - 1e-9,
            "GA best {} under certificate bound {}",
            result.best.fitness,
            cert.lower_bound
        );
        assert_eq!(cert.status, CertificateStatus::Optimal);
    }
}
