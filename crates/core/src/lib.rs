//! Energy-efficient co-synthesis for multi-mode embedded systems.
//!
//! This crate implements the primary contribution of the DATE 2003 paper
//! *“A Co-Design Methodology for Energy-Efficient Multi-Mode Embedded
//! Systems with Consideration of Mode Execution Probabilities”*: a
//! GA-based task-mapping and core-allocation loop whose fitness is the
//! probability-weighted average power of the candidate implementation,
//! multiplied by timing, area and mode-transition penalty factors, and
//! steered by four domain-specific improvement operators.
//!
//! The flow (paper Fig. 4):
//!
//! 1. encode every task of every mode as a locus over its candidate PEs
//!    ([`GenomeLayout`]);
//! 2. for each individual: derive the hardware core allocation with
//!    mobility-driven replication ([`derive_allocation`]), schedule each
//!    mode (inner loop, `momsynth-sched`), optionally voltage-scale
//!    (`momsynth-dvs`), and price the result ([`Evaluator`]);
//! 3. evolve with tournament selection, two-point crossover and the four
//!    improvement mutations ([`improve`]);
//! 4. refine the winner with fine-grained DVS ([`Synthesizer::run`]).
//!
//! # Examples
//!
//! ```no_run
//! use momsynth_core::{SynthesisConfig, Synthesizer};
//! # fn get_system() -> momsynth_model::System { unimplemented!() }
//!
//! let system = get_system();
//! let config = SynthesisConfig::new(42).with_dvs();
//! let result = Synthesizer::new(&system, config).run().expect("schedulable system");
//! println!(
//!     "best: {:.4} mW ({} generations, feasible: {}, stopped: {})",
//!     result.best.power.average.as_milli(),
//!     result.generations,
//!     result.best.is_feasible(),
//!     result.stop_reason,
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod fitness;
pub mod genome;
pub mod improve;
pub mod local_search;
pub mod prove;
pub mod synthesis;
pub mod transition;
pub mod verify;

pub use alloc::{derive_allocation, AllocOptions};
pub use cache::{CacheEntry, CacheState, EvalCache, HotSlot, SharedEvalCache};
pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use config::{
    DvsSynthesisOptions, FaultInjection, InjectedFault, PenaltyWeights, SynthesisConfig,
};
pub use fitness::{AreaOverrun, Evaluator, Solution};
pub use genome::{Gene, GenomeLayout};
pub use improve::{improve_random, ImprovementOp};
pub use local_search::{polish, LocalSearchOptions, LocalSearchStats, PolishControl};
pub use momsynth_ga::StopReason;
pub use prove::{prove, Certificate, CertificateStatus, ProveOptions};
pub use momsynth_telemetry as telemetry;
pub use synthesis::{CheckpointSpec, SynthControl, SynthesisError, SynthesisResult, Synthesizer};
pub use transition::{transition_timings, TransitionTiming};
pub use verify::{invariant_breach, verify_solution};
