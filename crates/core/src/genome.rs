//! The multi-mode mapping string and its genome encoding.
//!
//! Every task of every mode is one locus; the allele is an index into the
//! task's *candidate list* — the PEs that implement its type according to
//! the technology library. Encoding candidates (rather than raw PE ids)
//! guarantees that crossover and mutation always produce mappings where
//! every task lands on a capable PE, so the GA never wastes evaluations on
//! trivially broken individuals.

use momsynth_model::ids::{GlobalTaskId, ModeId, PeId, TaskId};
use momsynth_model::System;
use momsynth_sched::SystemMapping;

/// The gene type: an index into the locus's candidate PE list.
pub type Gene = u16;

/// Static description of the genome: one locus per `(mode, task)` with its
/// candidate PEs.
#[derive(Debug, Clone)]
pub struct GenomeLayout {
    entries: Vec<(GlobalTaskId, Vec<PeId>)>,
    mode_offsets: Vec<usize>,
}

impl GenomeLayout {
    /// Builds the layout for `system`.
    ///
    /// # Panics
    ///
    /// Panics if a task type has no implementation (rejected by
    /// [`System::new`], so unreachable for valid systems) or if a candidate
    /// list exceeds [`Gene`] range.
    pub fn new(system: &System) -> Self {
        Self::build(system, |_, id| system.candidate_pes(id))
    }

    /// Builds the layout for `system` with externally supplied per-locus
    /// candidate domains — typically the statically pruned capable-PE
    /// sets of `momsynth-analyze`, in the same `(mode, task)` locus
    /// order. Mutation and crossover then never generate a gene outside
    /// its proven domain.
    ///
    /// # Panics
    ///
    /// Panics if `domains` has the wrong length, contains an empty
    /// domain, lists a PE that is not a library candidate for its task,
    /// or exceeds [`Gene`] range.
    pub fn with_domains(system: &System, domains: &[Vec<PeId>]) -> Self {
        assert_eq!(
            domains.len(),
            system.omsm().total_task_count(),
            "domain count must match the total task count"
        );
        Self::build(system, |locus, id| {
            let domain = domains[locus].clone();
            debug_assert!(
                {
                    let full = system.candidate_pes(id);
                    domain.iter().all(|pe| full.contains(pe))
                },
                "domain of task {id} lists a PE outside its candidate list"
            );
            domain
        })
    }

    fn build(system: &System, mut candidates_of: impl FnMut(usize, GlobalTaskId) -> Vec<PeId>) -> Self {
        let mut entries = Vec::with_capacity(system.omsm().total_task_count());
        let mut mode_offsets = Vec::with_capacity(system.omsm().mode_count());
        for (mode, m) in system.omsm().modes() {
            mode_offsets.push(entries.len());
            for task in m.graph().task_ids() {
                let id = GlobalTaskId::new(mode, task);
                let candidates = candidates_of(entries.len(), id);
                assert!(!candidates.is_empty(), "task {id} has no candidate PEs");
                assert!(
                    candidates.len() <= Gene::MAX as usize,
                    "too many candidate PEs for gene type"
                );
                entries.push((id, candidates));
            }
        }
        Self { entries, mode_offsets }
    }

    /// Number of loci (total tasks across all modes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the system has no tasks (impossible for validated
    /// systems, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The candidate PEs of a locus.
    ///
    /// # Panics
    ///
    /// Panics if `locus` is out of range.
    pub fn candidates(&self, locus: usize) -> &[PeId] {
        &self.entries[locus].1
    }

    /// The task a locus encodes.
    ///
    /// # Panics
    ///
    /// Panics if `locus` is out of range.
    pub fn global(&self, locus: usize) -> GlobalTaskId {
        self.entries[locus].0
    }

    /// The locus of a task.
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are out of range.
    pub fn locus(&self, mode: ModeId, task: TaskId) -> usize {
        self.mode_offsets[mode.index()] + task.index()
    }

    /// Decodes a genome into a [`SystemMapping`]. In release builds
    /// out-of-range alleles are clamped to the last candidate (cannot
    /// occur for genes produced by the engine, but keeps decoding total);
    /// debug builds assert instead, catching mapping-string corruption at
    /// the source rather than as a constructive-loop penalty.
    ///
    /// # Panics
    ///
    /// Panics if `genes.len()` differs from [`GenomeLayout::len`], and in
    /// debug builds if an allele is outside its locus's candidate domain.
    pub fn decode(&self, genes: &[Gene]) -> SystemMapping {
        assert_eq!(genes.len(), self.entries.len(), "genome length mismatch");
        let mut per_mode: Vec<Vec<PeId>> = vec![Vec::new(); self.mode_offsets.len()];
        for (locus, ((id, candidates), &gene)) in self.entries.iter().zip(genes).enumerate() {
            debug_assert!(
                (gene as usize) < candidates.len(),
                "gene {gene} at locus {locus} is outside the candidate domain (len {})",
                candidates.len()
            );
            let idx = (gene as usize).min(candidates.len() - 1);
            per_mode[id.mode.index()].push(candidates[idx]);
        }
        SystemMapping::from_vecs(per_mode)
    }

    /// Encodes a mapping back into a genome.
    ///
    /// # Panics
    ///
    /// Panics if the mapping assigns a task to a PE outside its candidate
    /// list or has the wrong shape.
    pub fn encode(&self, mapping: &SystemMapping) -> Vec<Gene> {
        self.entries
            .iter()
            .map(|(id, candidates)| {
                let pe = mapping.pe_of_global(*id);
                let idx = candidates
                    .iter()
                    .position(|&c| c == pe)
                    .unwrap_or_else(|| panic!("{pe} is not a candidate for task {id}"));
                idx as Gene
            })
            .collect()
    }

    /// Looks up the PE a gene encodes at a locus (with the same clamping
    /// — and debug-build domain assertion — as [`GenomeLayout::decode`]).
    ///
    /// # Panics
    ///
    /// Panics if `locus` is out of range, and in debug builds if `gene`
    /// is outside the locus's candidate domain.
    pub fn pe_at(&self, locus: usize, gene: Gene) -> PeId {
        let candidates = &self.entries[locus].1;
        debug_assert!(
            (gene as usize) < candidates.len(),
            "gene {gene} at locus {locus} is outside the candidate domain (len {})",
            candidates.len()
        );
        candidates[(gene as usize).min(candidates.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::units::{Cells, Seconds, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };

    /// Two modes; type A on {PE0, PE1}, type B on {PE0} only.
    fn sys() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(1.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(ta, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        tech.set_impl(
            ta,
            hw,
            Implementation::hardware(Seconds::new(0.001), Watts::ZERO, Cells::new(10)),
        );
        tech.set_impl(tb, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut g0 = TaskGraphBuilder::new("m0", Seconds::new(1.0));
        g0.add_task("a", ta);
        g0.add_task("b", tb);
        let mut g1 = TaskGraphBuilder::new("m1", Seconds::new(1.0));
        g1.add_task("c", ta);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m0", 0.5, g0.build().unwrap());
        omsm.add_mode("m1", 0.5, g1.build().unwrap());
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    #[test]
    fn layout_covers_all_tasks_in_order() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        assert_eq!(layout.len(), 3);
        assert!(!layout.is_empty());
        assert_eq!(layout.global(0), GlobalTaskId::new(ModeId::new(0), TaskId::new(0)));
        assert_eq!(layout.global(2), GlobalTaskId::new(ModeId::new(1), TaskId::new(0)));
        assert_eq!(layout.locus(ModeId::new(1), TaskId::new(0)), 2);
        assert_eq!(layout.candidates(0), &[PeId::new(0), PeId::new(1)]);
        assert_eq!(layout.candidates(1), &[PeId::new(0)]);
    }

    #[test]
    fn decode_produces_candidate_respecting_mapping() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mapping = layout.decode(&[1, 0, 0]);
        assert_eq!(mapping.pe_of(ModeId::new(0), TaskId::new(0)), PeId::new(1));
        assert_eq!(mapping.pe_of(ModeId::new(0), TaskId::new(1)), PeId::new(0));
        assert_eq!(mapping.pe_of(ModeId::new(1), TaskId::new(0)), PeId::new(0));
        assert!(mapping.validate(&system).is_ok());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn out_of_range_gene_is_clamped_in_release() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mapping = layout.decode(&[9, 9, 9]);
        assert!(mapping.validate(&system).is_ok());
        assert_eq!(mapping.pe_of(ModeId::new(0), TaskId::new(1)), PeId::new(0));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside the candidate domain")]
    fn out_of_range_gene_asserts_in_debug() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let _ = layout.decode(&[9, 9, 9]);
    }

    #[test]
    fn with_domains_restricts_candidates() {
        let system = sys();
        let domains = vec![vec![PeId::new(1)], vec![PeId::new(0)], vec![PeId::new(0)]];
        let layout = GenomeLayout::with_domains(&system, &domains);
        assert_eq!(layout.candidates(0), &[PeId::new(1)]);
        let mapping = layout.decode(&[0, 0, 0]);
        assert_eq!(mapping.pe_of(ModeId::new(0), TaskId::new(0)), PeId::new(1));
        assert!(mapping.validate(&system).is_ok());
    }

    #[test]
    #[should_panic(expected = "domain count")]
    fn with_domains_rejects_wrong_length() {
        let system = sys();
        let _ = GenomeLayout::with_domains(&system, &[vec![PeId::new(0)]]);
    }

    #[test]
    #[should_panic(expected = "no candidate PEs")]
    fn with_domains_rejects_empty_domain() {
        let system = sys();
        let domains = vec![vec![], vec![PeId::new(0)], vec![PeId::new(0)]];
        let _ = GenomeLayout::with_domains(&system, &domains);
    }

    #[test]
    fn encode_round_trips_decode() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        for genes in [[0, 0, 0], [1, 0, 1], [1, 0, 0]] {
            let mapping = layout.decode(&genes);
            assert_eq!(layout.encode(&mapping), genes.to_vec());
        }
    }

    #[test]
    fn pe_at_matches_decode() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        assert_eq!(layout.pe_at(0, 1), PeId::new(1));
        assert_eq!(layout.pe_at(1, 0), PeId::new(0));
    }

    #[test]
    #[should_panic(expected = "genome length mismatch")]
    fn decode_rejects_wrong_length() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let _ = layout.decode(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "not a candidate")]
    fn encode_rejects_foreign_pe() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mapping = momsynth_sched::SystemMapping::from_vecs(vec![
            vec![PeId::new(0), PeId::new(1)], // b on PE1 is not a candidate
            vec![PeId::new(0)],
        ]);
        let _ = layout.encode(&mapping);
    }
}
