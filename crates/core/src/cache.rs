//! Genome-keyed evaluation cache.
//!
//! The mapping fitness `F_M` (Eq. 1 plus penalties) is a pure function of
//! the multi-mode mapping string: the inner loop consumes no randomness
//! and no mutable state, so a genome's cost can be memoised soundly. The
//! GA revisits genomes constantly — elites survive, crossover recreates
//! parents, improvement operators undo each other — which makes a bounded
//! cache in front of the constructive inner loop one of the cheapest
//! speedups available.
//!
//! [`EvalCache`] is a sharded, bounded, least-recently-used map from
//! genome to sanitized cost. Determinism is non-negotiable here:
//!
//! - Lookups compare the stored genome, not just its hash, so a 64-bit
//!   collision can never serve a wrong cost.
//! - Recency is a global monotonic tick. Ticks are unique, so the
//!   evicted entry (minimum tick in the full shard) is unambiguous and
//!   independent of `HashMap` iteration order.
//! - All mutation happens on the driver thread ([`EvalCache`] is probed
//!   and filled serially, before and after a parallel batch), so the
//!   cache contents never depend on worker scheduling.
//! - [`EvalCache::state`] exports entries sorted by tick, giving
//!   byte-identical checkpoints for identical runs.

use std::collections::HashMap;

use momsynth_sync::sync::atomic::{AtomicU64, Ordering};
use momsynth_sync::sync::Mutex;
use serde::{Deserialize, Serialize};

use crate::genome::Gene;

/// Number of independent shards. Sharding bounds the linear min-tick
/// eviction scan to `capacity / SHARD_COUNT` entries.
const SHARD_COUNT: usize = 16;

/// One cached evaluation, as persisted in checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The multi-mode mapping string.
    pub genome: Vec<Gene>,
    /// Its sanitized cost (finite; rejected genomes store the sentinel).
    pub cost: f64,
    /// Last-use tick (larger = more recent).
    pub tick: u64,
}

/// Serializable image of an [`EvalCache`], persisted in checkpoints so a
/// resumed run replays the exact hit/miss sequence of an uninterrupted
/// one. Entries are sorted by tick; an empty state is a valid (empty or
/// disabled) cache.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheState {
    /// Next tick the cache will assign.
    pub tick: u64,
    /// Cached evaluations, ascending by tick.
    pub entries: Vec<CacheEntry>,
}

#[derive(Debug, Default)]
struct Shard {
    /// Hash → entries with that hash (collision chain, normally 1 long).
    map: HashMap<u64, Vec<CacheEntry>>,
    /// Number of entries across all chains.
    len: usize,
}

impl Shard {
    /// Drops the least-recently-used entry (unique minimum tick).
    fn evict_oldest(&mut self) {
        let Some((&hash, _)) = self
            .map
            .iter()
            .min_by_key(|(_, chain)| chain.iter().map(|e| e.tick).min().unwrap_or(u64::MAX))
        else {
            return;
        };
        let chain = self.map.get_mut(&hash).expect("key just found");
        let oldest = chain
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.tick)
            .map(|(i, _)| i)
            .expect("chains are never empty");
        chain.remove(oldest);
        if chain.is_empty() {
            self.map.remove(&hash);
        }
        self.len -= 1;
    }
}

/// Bounded LRU cache from genome to cost. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<Shard>,
    /// Per-shard entry bound (`total capacity / SHARD_COUNT`, min 1).
    shard_capacity: usize,
    /// Monotonic recency clock; incremented by every get-hit and insert.
    tick: u64,
    /// LRU evictions since construction (or since the last
    /// [`EvalCache::restore`] — a resume's base total lives in the
    /// restored counter set, so the live count restarts at zero).
    /// Deterministic: eviction happens only in the serial cache-fill
    /// stage on the driver thread, never inside parallel pricing.
    evictions: u64,
}

impl EvalCache {
    /// Creates a cache holding at most (roughly) `capacity` entries,
    /// split over [`SHARD_COUNT`] shards. `capacity` must be non-zero —
    /// a disabled cache is represented by not constructing one.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "use Option<EvalCache> for a disabled cache");
        Self {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            shard_capacity: capacity.div_ceil(SHARD_COUNT),
            tick: 0,
            evictions: 0,
        }
    }

    /// LRU evictions performed since construction or the last restore.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len).sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// FNV-1a over the genes with a SplitMix finisher, so low-entropy
    /// genomes still spread across shards (same construction as
    /// [`crate::config::FaultInjection::roll`]).
    fn hash(genome: &[Gene]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &gene in genome {
            hash = (hash ^ u64::from(gene)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The cached cost of `genome`, refreshing its recency on a hit.
    pub fn get(&mut self, genome: &[Gene]) -> Option<f64> {
        let hash = Self::hash(genome);
        let shard = &mut self.shards[(hash % SHARD_COUNT as u64) as usize];
        let entry = shard
            .map
            .get_mut(&hash)?
            .iter_mut()
            .find(|e| e.genome == genome)?;
        entry.tick = self.tick;
        self.tick += 1;
        Some(entry.cost)
    }

    /// Caches `cost` for `genome`, evicting the shard's least-recently
    /// used entry when full. Re-inserting an existing genome refreshes
    /// its recency and cost.
    pub fn insert(&mut self, genome: &[Gene], cost: f64) {
        let hash = Self::hash(genome);
        let tick = self.tick;
        self.tick += 1;
        let shard = &mut self.shards[(hash % SHARD_COUNT as u64) as usize];
        if let Some(chain) = shard.map.get_mut(&hash) {
            if let Some(entry) = chain.iter_mut().find(|e| e.genome == genome) {
                entry.cost = cost;
                entry.tick = tick;
                return;
            }
        }
        if shard.len >= self.shard_capacity {
            shard.evict_oldest();
            self.evictions += 1;
        }
        shard
            .map
            .entry(hash)
            .or_default()
            .push(CacheEntry { genome: genome.to_vec(), cost, tick });
        shard.len += 1;
    }

    /// Exports the cache for checkpointing: all entries, ascending by
    /// tick (deterministic despite `HashMap` iteration order).
    pub fn state(&self) -> CacheState {
        let mut entries: Vec<CacheEntry> = self
            .shards
            .iter()
            .flat_map(|s| s.map.values().flatten().cloned())
            .collect();
        entries.sort_by_key(|e| e.tick);
        CacheState { tick: self.tick, entries }
    }

    /// Rebuilds the cache from a checkpointed state. Entries are
    /// replayed in tick order, so when this cache's capacity is smaller
    /// than the captured one, the least recent entries of each full
    /// shard are deterministically dropped.
    pub fn restore(&mut self, state: &CacheState) {
        for shard in &mut self.shards {
            *shard = Shard::default();
        }
        self.tick = 0;
        for entry in &state.entries {
            self.insert(&entry.genome, entry.cost);
            // Keep the captured recency, not the replay order's.
            let hash = Self::hash(&entry.genome);
            let shard = &mut self.shards[(hash % SHARD_COUNT as u64) as usize];
            if let Some(e) = shard
                .map
                .get_mut(&hash)
                .and_then(|chain| chain.iter_mut().find(|e| e.genome == entry.genome))
            {
                e.tick = entry.tick;
            }
        }
        self.tick = state.tick.max(self.tick);
        // Replaying into a smaller cache may evict, but those drops were
        // never evictions of the original run; the cumulative total up
        // to the checkpoint is restored into the counter set instead.
        self.evictions = 0;
    }
}

/// A lock-free single-entry memo publishing the most recently filled
/// `(genome hash, cost)` pair — the "hot" genome (typically the elite,
/// which the GA re-probes constantly).
///
/// The protocol is a sequence-lock specialised to a single writer and
/// atomic payload words, with Release stores and Acquire loads
/// throughout. The even/odd version plus the double read makes a torn
/// pair (hash from one publish, cost from another) impossible: if a
/// reader observes a payload word from publish *k+1*, the Acquire load
/// synchronizes with that Release store, which makes the odd version
/// marker of publish *k+1* visible, so the trailing version check
/// fails and the probe misses instead of lying. The loom model in
/// `tests/loom_cache.rs` proves exactly this claim — and the seeded
/// `loom_mutation` variant (the hash store downgraded to Relaxed)
/// proves the model catches the tear when the ordering is broken.
///
/// The memo is keyed by the 64-bit genome hash alone — unlike
/// [`EvalCache`] it does not compare genomes, so a hash collision can
/// serve the colliding genome's cost. It is therefore used only as the
/// concurrent fast path of [`SharedEvalCache`], never by the serial
/// deterministic batch pipeline, which keeps the strict contract.
#[derive(Debug, Default)]
pub struct HotSlot {
    /// Even = stable, odd = publish in progress, 0 = never published.
    version: AtomicU64,
    hash: AtomicU64,
    cost_bits: AtomicU64,
}

/// Bounded retries before a reader gives up and reports a miss instead
/// of spinning against a storm of writers.
const HOT_PROBE_RETRIES: usize = 4;

impl HotSlot {
    /// An empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes `(hash, cost)`, overwriting the previous pair.
    ///
    /// Callers must serialize publishes (single writer at a time; in
    /// [`SharedEvalCache`] the cache mutex is that serialization).
    pub fn publish(&self, hash: u64, cost: f64) {
        let version = self.version.load(Ordering::Relaxed);
        // Odd marker: readers that see it retry instead of trusting a
        // half-written pair.
        self.version.store(version.wrapping_add(1), Ordering::Release);
        // Seeded bug for the loom mutation check (DESIGN.md §17): a
        // Relaxed hash store breaks the synchronizes-with edge readers
        // rely on to detect publishes racing their double-read, letting
        // a torn (new hash, old cost) pair validate.
        #[cfg(loom_mutation)]
        self.hash.store(hash, Ordering::Relaxed);
        #[cfg(not(loom_mutation))]
        self.hash.store(hash, Ordering::Release);
        self.cost_bits.store(cost.to_bits(), Ordering::Release);
        self.version.store(version.wrapping_add(2), Ordering::Release);
    }

    /// The published cost for `hash`, if the slot currently holds that
    /// hash. Lock-free; a probe racing a publish misses rather than
    /// returning a torn pair.
    pub fn probe(&self, hash: u64) -> Option<f64> {
        for _ in 0..HOT_PROBE_RETRIES {
            let before = self.version.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                return None;
            }
            let slot_hash = self.hash.load(Ordering::Acquire);
            let cost_bits = self.cost_bits.load(Ordering::Acquire);
            let after = self.version.load(Ordering::Acquire);
            if before == after {
                if slot_hash == hash {
                    return Some(f64::from_bits(cost_bits));
                }
                return None;
            }
        }
        None
    }
}

/// A thread-safe evaluation cache: the serial [`EvalCache`] behind a
/// mutex, fronted by a lock-free [`HotSlot`] for the most recently
/// filled genome.
///
/// This is the sharing layer the islands-GA work needs (ROADMAP item
/// 1): islands evolve on their own threads but share evaluated costs.
/// The serial batch pipeline keeps using [`EvalCache`] directly — its
/// determinism contract (drive-thread-only mutation) is unchanged.
/// `SharedEvalCache` makes the weaker, loom-checked guarantee that no
/// fill is ever lost and no probe ever observes a torn hot-slot pair.
#[derive(Debug)]
pub struct SharedEvalCache {
    inner: Mutex<EvalCache>,
    hot: HotSlot,
}

impl SharedEvalCache {
    /// A shared cache holding at most (roughly) `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self { inner: Mutex::new(EvalCache::new(capacity)), hot: HotSlot::new() }
    }

    /// The cached cost of `genome`: the lock-free hot slot first, the
    /// locked cache second (refreshing recency on a hit there).
    pub fn probe(&self, genome: &[Gene]) -> Option<f64> {
        let hash = EvalCache::hash(genome);
        if let Some(cost) = self.hot.probe(hash) {
            return Some(cost);
        }
        self.inner.lock().expect("shared eval cache poisoned").get(genome)
    }

    /// Caches `cost` for `genome` and publishes it as the hot pair.
    pub fn fill(&self, genome: &[Gene], cost: f64) {
        let hash = EvalCache::hash(genome);
        let mut cache = self.inner.lock().expect("shared eval cache poisoned");
        cache.insert(genome, cost);
        // Published under the cache lock: the mutex is the hot slot's
        // single-writer serialization.
        self.hot.publish(hash, cost);
    }

    /// Total entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("shared eval cache poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// LRU evictions since construction or the last restore.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().expect("shared eval cache poisoned").evictions()
    }

    /// Exports the underlying cache state (see [`EvalCache::state`]).
    pub fn state(&self) -> CacheState {
        self.inner.lock().expect("shared eval cache poisoned").state()
    }

    /// Rebuilds from a checkpointed state (see [`EvalCache::restore`]).
    /// The hot slot is left untouched; it repopulates on the next fill.
    pub fn restore(&self, state: &CacheState) {
        self.inner.lock().expect("shared eval cache poisoned").restore(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome(seed: u16, len: usize) -> Vec<Gene> {
        (0..len as u16).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect()
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let mut cache = EvalCache::new(64);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&genome(1, 4)), None);
        cache.insert(&genome(1, 4), 2.5);
        cache.insert(&genome(2, 4), 7.0);
        assert_eq!(cache.get(&genome(1, 4)), Some(2.5));
        assert_eq!(cache.get(&genome(2, 4)), Some(7.0));
        assert_eq!(cache.get(&genome(3, 4)), None);
        assert_eq!(cache.len(), 2);
        // Re-inserting updates the cost instead of duplicating.
        cache.insert(&genome(1, 4), 3.5);
        assert_eq!(cache.get(&genome(1, 4)), Some(3.5));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_drops_the_least_recently_used() {
        // Capacity 16 → one slot per shard: any two genomes landing in
        // the same shard compete, and the older one must go.
        let mut cache = EvalCache::new(16);
        let genomes: Vec<Vec<Gene>> = (0..64).map(|i| genome(i, 6)).collect();
        for (i, g) in genomes.iter().enumerate() {
            cache.insert(g, i as f64);
        }
        assert!(cache.len() <= 16);
        // Every entry beyond capacity was evicted, and counted.
        assert_eq!(cache.evictions(), 64 - cache.len() as u64);
        // The most recent insert of every non-empty shard must survive.
        let survivors: Vec<usize> =
            (0..64).filter(|&i| cache.get(&genomes[i]).is_some()).collect();
        assert!(!survivors.is_empty());
        // Refreshing an entry's recency protects it from eviction by a
        // same-shard newcomer; verify via the tick ordering invariant.
        let state = cache.state();
        assert!(state.entries.windows(2).all(|w| w[0].tick < w[1].tick));
    }

    #[test]
    fn state_restore_round_trips_and_trims_to_capacity() {
        // Shard capacity 40: the 40 inserts cannot evict anything.
        let mut cache = EvalCache::new(640);
        for i in 0..40 {
            cache.insert(&genome(i, 5), i as f64);
        }
        // Touch a few entries so recency differs from insertion order.
        assert!(cache.get(&genome(0, 5)).is_some());
        assert!(cache.get(&genome(1, 5)).is_some());
        let state = cache.state();

        let mut back = EvalCache::new(640);
        back.restore(&state);
        assert_eq!(back.state(), state);

        // Restoring into a smaller cache keeps the most recent entries
        // of each shard and stays within capacity.
        let mut small = EvalCache::new(16);
        small.restore(&state);
        assert!(small.len() <= 16);
        assert!(small.get(&genome(0, 5)).is_some() || small.get(&genome(1, 5)).is_some());
        assert!(small.tick >= state.tick);
        // Capacity trimming during a restore is not an eviction of the
        // resumed run: the live counter restarts at zero.
        assert_eq!(small.evictions(), 0);
    }

    #[test]
    fn state_is_deterministic_across_identical_histories() {
        let build = || {
            let mut cache = EvalCache::new(32);
            for i in 0..50 {
                cache.insert(&genome(i % 20, 4), f64::from(i));
                cache.get(&genome((i * 7) % 20, 4));
            }
            cache.state()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn hot_slot_serves_only_the_published_hash() {
        let slot = HotSlot::new();
        assert_eq!(slot.probe(0), None, "an empty slot must miss, even for hash 0");
        slot.publish(11, 2.5);
        assert_eq!(slot.probe(11), Some(2.5));
        assert_eq!(slot.probe(12), None);
        slot.publish(12, 7.5);
        assert_eq!(slot.probe(12), Some(7.5));
        assert_eq!(slot.probe(11), None, "a slot holds exactly one pair");
    }

    #[test]
    fn shared_cache_round_trips_fills_and_state() {
        let cache = SharedEvalCache::new(64);
        assert!(cache.is_empty());
        assert_eq!(cache.probe(&genome(1, 4)), None);
        cache.fill(&genome(1, 4), 2.5);
        cache.fill(&genome(2, 4), 7.0);
        // The second fill owns the hot slot; the first is served by the
        // locked cache.
        assert_eq!(cache.probe(&genome(2, 4)), Some(7.0));
        assert_eq!(cache.probe(&genome(1, 4)), Some(2.5));
        assert_eq!(cache.len(), 2);

        let state = cache.state();
        let back = SharedEvalCache::new(64);
        back.restore(&state);
        assert_eq!(back.state(), state);
        assert_eq!(back.probe(&genome(1, 4)), Some(2.5));
    }

    #[test]
    fn shared_cache_fills_from_many_threads_are_never_lost() {
        let cache = momsynth_sync::sync::Arc::new(SharedEvalCache::new(1024));
        let handles: Vec<_> = (0..4u16)
            .map(|t| {
                let cache = momsynth_sync::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        let g = genome(t * 100 + i, 5);
                        cache.fill(&g, f64::from(t * 100 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u16 {
            for i in 0..16 {
                let g = genome(t * 100 + i, 5);
                assert_eq!(cache.probe(&g), Some(f64::from(t * 100 + i)));
            }
        }
    }

    #[test]
    fn colliding_hashes_cannot_serve_the_wrong_cost() {
        // Force a collision chain by inserting through the public API and
        // checking genome equality still discriminates within a shard.
        let mut cache = EvalCache::new(1024);
        let a = genome(7, 3);
        let b = genome(8, 3);
        cache.insert(&a, 1.0);
        cache.insert(&b, 2.0);
        assert_eq!(cache.get(&a), Some(1.0));
        assert_eq!(cache.get(&b), Some(2.0));
    }
}
