//! Candidate evaluation: schedules, voltage scaling, power and the
//! penalty fitness `F_M` (Fig. 4, lines 3–14).
//!
//! For a given multi-mode mapping the evaluator derives the core
//! allocation, schedules every mode, optionally applies PV-DVS, and
//! computes
//!
//! ```text
//! F_M = p̄ · tp · (1 + w_A · Σ_{π ∈ P_v} (a_U − a_max)/(a_max · 0.01))
//!           · Π_{T ∈ Θ_v} max(1, w_R · t_T/t_T^max)
//! ```
//!
//! where `p̄` is the average power under the *optimisation* weights (true
//! probabilities for the proposed flow, uniform weights for the
//! probability-neglecting baseline), `tp` the timing penalty, `P_v` the
//! PEs with area violations and `Θ_v` the transitions exceeding their
//! limits. The reported [`Solution::power`] always uses the true
//! probabilities.

use std::cell::{Cell, RefCell};

use momsynth_dvs::{scale_mode_with, DvsOptions, DvsScratch, VoltageSchedule};
use momsynth_model::ids::PeId;
use momsynth_model::units::{Cells, Seconds, Watts};
use momsynth_model::System;
use momsynth_power::{power_report_with, ModeImplementation, PowerReport};
use momsynth_sched::{
    schedule_mode_with, CoreAllocation, ListScratch, SchedError, Schedule, SystemMapping,
};
use momsynth_telemetry::{Phase, PhaseAccumulator, PhaseTiming};

use crate::alloc::derive_allocation;
use crate::config::SynthesisConfig;
use crate::transition::{transition_timings, TransitionTiming};

/// An area violation on one hardware PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaOverrun {
    /// The over-subscribed PE.
    pub pe: PeId,
    /// Cells required by the allocation.
    pub used: Cells,
    /// The PE's capacity.
    pub capacity: Cells,
}

/// A fully elaborated implementation candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The task mapping (`Mτ^O` for every mode).
    pub mapping: SystemMapping,
    /// The hardware core allocation.
    pub alloc: CoreAllocation,
    /// Per-mode schedules (voltage-stretched when DVS is enabled).
    pub schedules: Vec<Schedule>,
    /// Per-mode, per-task voltage schedules (`None` where unscaled).
    pub voltage_schedules: Vec<Vec<Option<VoltageSchedule>>>,
    /// Power report under the true mode execution probabilities.
    pub power: PowerReport,
    /// Total deadline/period lateness over all modes.
    pub total_lateness: Seconds,
    /// Hardware PEs whose area constraint is violated.
    pub area_overruns: Vec<AreaOverrun>,
    /// Reconfiguration timing of every mode transition.
    pub transitions: Vec<TransitionTiming>,
    /// The fitness `F_M` this candidate was judged by.
    pub fitness: f64,
}

impl Solution {
    /// `true` when the candidate satisfies all timing, area and
    /// transition-time constraints.
    pub fn is_feasible(&self) -> bool {
        self.total_lateness.value() <= 1e-12
            && self.area_overruns.is_empty()
            && self.transitions.iter().all(TransitionTiming::is_feasible)
    }

    /// Renders a complete human-readable implementation report: average
    /// power, per-mode mapping with shut-down state, hardware core
    /// allocation and transition timing.
    pub fn describe(&self, system: &System) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "implementation of `{}` — {:.6} mW average, {}",
            system.name(),
            self.power.average.as_milli(),
            if self.is_feasible() { "feasible" } else { "INFEASIBLE" }
        );
        for (mode, m) in system.omsm().modes() {
            let mp = &self.power.modes[mode.index()];
            let on: Vec<&str> =
                mp.active_pes.iter().map(|&pe| system.arch().pe(pe).name()).collect();
            let _ = writeln!(
                out,
                "  mode {:<16} Ψ={:<6.3} {:>10.4} mW   on: {}",
                m.name(),
                m.probability(),
                mp.total().as_milli(),
                on.join(", ")
            );
            let cores: Vec<String> = self
                .alloc
                .mode_cores(mode)
                .map(|((pe, ty), count)| {
                    format!(
                        "{}×{} on {}",
                        count,
                        system.tech().type_name(ty),
                        system.arch().pe(pe).name()
                    )
                })
                .collect();
            if !cores.is_empty() {
                let _ = writeln!(out, "    cores: {}", cores.join(", "));
            }
        }
        for t in &self.transitions {
            if t.time.value() > 0.0 || !t.is_feasible() {
                let _ = writeln!(
                    out,
                    "  transition {}: {:.3} ms / limit {:.3} ms{}",
                    t.transition,
                    t.time.as_millis(),
                    t.limit.as_millis(),
                    if t.is_feasible() { "" } else { "  VIOLATED" }
                );
            }
        }
        for a in &self.area_overruns {
            let _ = writeln!(
                out,
                "  AREA VIOLATION on {}: {} of {}",
                system.arch().pe(a.pe).name(),
                a.used,
                a.capacity
            );
        }
        out
    }
}

/// Reusable working memory for one evaluator: the list scheduler's and
/// PV-DVS's per-call buffers. One evaluation allocates these once and
/// every later evaluation on the same [`Evaluator`] reuses them, which
/// removes the dominant allocation churn from the GA's hot loop.
#[derive(Debug, Default)]
struct EvalScratch {
    sched: ListScratch,
    dvs: DvsScratch,
}

/// Evaluates mapping candidates for one system under one configuration.
///
/// Not `Sync` (scratch buffers, counters and timers use interior
/// mutability): parallel batch evaluation gives each worker thread its
/// own evaluator and folds the counters back together afterwards.
#[derive(Debug)]
pub struct Evaluator<'a> {
    system: &'a System,
    config: &'a SynthesisConfig,
    /// Mode weights used in the optimisation objective.
    weights: Vec<f64>,
    /// Per-phase wall-clock accumulator (disabled unless a telemetry
    /// sink asks for traces).
    phases: PhaseAccumulator,
    /// Total PV-DVS inner-loop iterations across all evaluations.
    dvs_iterations: Cell<u64>,
    /// Scratch buffers reused across evaluations (`RefCell` because
    /// [`Evaluator::evaluate`] takes `&self`; evaluation never re-enters).
    scratch: RefCell<EvalScratch>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator; the optimisation weights are the true mode
    /// probabilities when `config.probability_aware`, uniform otherwise.
    pub fn new(system: &'a System, config: &'a SynthesisConfig) -> Self {
        let weights = if config.probability_aware {
            system.omsm().modes().map(|(_, m)| m.probability()).collect()
        } else {
            momsynth_power::uniform_weights(system)
        };
        Self {
            system,
            config,
            weights,
            phases: PhaseAccumulator::disabled(),
            dvs_iterations: Cell::new(0),
            scratch: RefCell::new(EvalScratch::default()),
        }
    }

    /// The mode weights driving the optimisation objective.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Turns on per-phase wall-clock measurement for subsequent
    /// evaluations.
    pub fn enable_phase_timing(&mut self) {
        self.phases.enable();
    }

    /// Whether per-phase wall-clock measurement is on — mirrored onto
    /// per-worker evaluators so a parallel batch measures exactly the
    /// phases a serial run would.
    pub fn phase_timing_enabled(&self) -> bool {
        self.phases.enabled()
    }

    /// Accumulated per-phase timings (empty while timing is disabled).
    pub fn phase_timings(&self) -> Vec<PhaseTiming> {
        self.phases.timings()
    }

    /// Folds a worker evaluator's phase timings into this one after a
    /// parallel batch. No-op while timing is disabled.
    pub fn absorb_phase_timings(&self, timings: &[PhaseTiming]) {
        self.phases.absorb(timings);
    }

    /// Total PV-DVS inner-loop iterations performed so far. Counted
    /// deterministically — independent of whether phase timing is on.
    pub fn dvs_iterations(&self) -> u64 {
        self.dvs_iterations.get()
    }

    /// Adds a worker evaluator's PV-DVS iteration count to this one.
    pub fn add_dvs_iterations(&self, n: u64) {
        self.dvs_iterations.set(self.dvs_iterations.get() + n);
    }

    /// Fully evaluates a mapping. `dvs` selects the voltage-scaling
    /// resolution (coarse during search, fine for the final solution);
    /// `None` evaluates at fixed voltage.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's error when two communicating tasks are
    /// mapped to unconnected PEs — possible only on architectures whose
    /// communication graph is not complete.
    pub fn evaluate(
        &self,
        mapping: SystemMapping,
        dvs: Option<&DvsOptions>,
    ) -> Result<Solution, SchedError> {
        self.phases.measure(Phase::FitnessEval, || self.evaluate_inner(mapping, dvs))
    }

    fn evaluate_inner(
        &self,
        mapping: SystemMapping,
        dvs: Option<&DvsOptions>,
    ) -> Result<Solution, SchedError> {
        let system = self.system;
        // One borrow for the whole evaluation; never re-entered.
        let scratch = &mut *self.scratch.borrow_mut();
        let alloc = self
            .phases
            .measure(Phase::CoreAllocation, || derive_allocation(system, &mapping, &self.config.alloc));

        let mut schedules = Vec::with_capacity(system.omsm().mode_count());
        let mut voltage_schedules = Vec::with_capacity(system.omsm().mode_count());
        let mut factors: Vec<Vec<f64>> = Vec::with_capacity(system.omsm().mode_count());
        for (mode, m) in system.omsm().modes() {
            let sched_scratch = &mut scratch.sched;
            let schedule = self.phases.measure(Phase::ListScheduling, || {
                schedule_mode_with(system, mode, &mapping, &alloc, self.config.scheduler, sched_scratch)
            })?;
            match dvs {
                Some(options) => {
                    let dvs_scratch = &mut scratch.dvs;
                    let scaled = self.phases.measure(Phase::VoltageScaling, || {
                        scale_mode_with(system, &schedule, options, dvs_scratch)
                    });
                    self.dvs_iterations
                        .set(self.dvs_iterations.get() + scaled.iterations() as u64);
                    factors.push(scaled.energy_factors().to_vec());
                    voltage_schedules.push(
                        m.graph()
                            .task_ids()
                            .map(|t| scaled.task_voltage(t).cloned())
                            .collect(),
                    );
                    schedules.push(scaled.schedule().clone());
                }
                None => {
                    factors.push(vec![1.0; m.graph().task_count()]);
                    voltage_schedules.push(vec![None; m.graph().task_count()]);
                    schedules.push(schedule);
                }
            }
        }

        let _pricing = self.phases.measure_guard(Phase::PowerPricing);
        let implementations: Vec<ModeImplementation<'_>> = schedules
            .iter()
            .zip(&factors)
            .map(|(s, f)| ModeImplementation::scaled(s, f))
            .collect();
        let true_probabilities: Vec<f64> =
            system.omsm().modes().map(|(_, m)| m.probability()).collect();
        let power = power_report_with(system, &implementations, &true_probabilities);
        let weighted: Watts = power
            .modes
            .iter()
            .zip(&self.weights)
            .map(|(m, &w)| m.total() * w)
            .sum();

        let total_lateness: Seconds = schedules
            .iter()
            .map(|s| s.total_lateness(system.omsm().mode(s.mode()).graph()))
            .sum();
        let mut timing_penalty = 1.0;
        for s in &schedules {
            let graph = system.omsm().mode(s.mode()).graph();
            timing_penalty +=
                self.config.weights.timing * (s.total_lateness(graph) / graph.period());
        }

        let mut area_overruns = Vec::new();
        let mut area_penalty = 1.0;
        for pe in system.arch().hardware_pes() {
            let info = system.arch().pe(pe);
            let capacity = info.area().expect("hardware PEs declare area");
            let used = if info.kind().is_reconfigurable() {
                system
                    .omsm()
                    .mode_ids()
                    .map(|m| alloc.mode_area(system, pe, m))
                    .max()
                    .unwrap_or(Cells::ZERO)
            } else {
                alloc.static_area(system, pe)
            };
            if used > capacity {
                area_overruns.push(AreaOverrun { pe, used, capacity });
                let overshoot_percent = (used.value() - capacity.value()) as f64
                    / (capacity.value().max(1) as f64 * 0.01);
                area_penalty += self.config.weights.area * overshoot_percent;
            }
        }

        let transitions = transition_timings(system, &alloc);
        let mut transition_penalty = 1.0;
        for t in &transitions {
            if !t.is_feasible() {
                transition_penalty *= (self.config.weights.transition * t.overrun()).max(1.0);
            }
        }

        let mut fitness = weighted.value() * timing_penalty * area_penalty * transition_penalty;
        let violated = total_lateness.value() > 1e-12
            || !area_overruns.is_empty()
            || transitions.iter().any(|t| !t.is_feasible());
        if violated {
            fitness *= self.config.weights.infeasibility_boost.max(1.0);
        }
        Ok(Solution {
            mapping,
            alloc,
            schedules,
            voltage_schedules,
            power,
            total_lateness,
            area_overruns,
            transitions,
            fitness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{ModeId, TaskId};
    use momsynth_model::units::{Seconds, Volts, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind,
        TaskGraphBuilder, TechLibraryBuilder,
    };

    /// The testbed mirrors the paper's Example 1 flavour: one CPU, one
    /// small ASIC, two modes with very different probabilities.
    fn sys(asic_cells: u64, period_ms: f64) -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.2)).with_dvs(
                DvsCapability::new(
                    Volts::new(3.3),
                    Volts::new(0.8),
                    vec![Volts::new(1.2), Volts::new(2.1), Volts::new(3.3)],
                ),
            ),
        );
        let hw = arch.add_pe(Pe::hardware(
            "hw",
            PeKind::Asic,
            Cells::new(asic_cells),
            Watts::from_milli(0.1),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.05),
        ))
        .unwrap();
        for ty in [ta, tb] {
            tech.set_impl(
                ty,
                cpu,
                Implementation::software(Seconds::from_millis(20.0), Watts::from_milli(500.0)),
            );
            tech.set_impl(
                ty,
                hw,
                Implementation::hardware(
                    Seconds::from_millis(2.0),
                    Watts::from_milli(5.0),
                    Cells::new(240),
                ),
            );
        }
        let mk = |name: &str, ty| {
            let mut g = TaskGraphBuilder::new(name, Seconds::from_millis(period_ms));
            let x = g.add_task("x", ty);
            let y = g.add_task("y", ty);
            g.add_comm(x, y, 10.0).unwrap();
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("rare", 0.1, mk("rare", ta));
        omsm.add_mode("common", 0.9, mk("common", tb));
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn all_cpu(system: &System) -> SystemMapping {
        SystemMapping::from_fn(system, |_| PeId::new(0))
    }

    #[test]
    fn feasible_software_solution_has_plain_power_fitness() {
        let system = sys(600, 100.0);
        let config = SynthesisConfig::new(0);
        let ev = Evaluator::new(&system, &config);
        let sol = ev.evaluate(all_cpu(&system), None).unwrap();
        assert!(sol.is_feasible());
        // No penalties: fitness equals the weighted average power.
        assert!((sol.fitness - sol.power.average.value()).abs() < 1e-15);
        assert_eq!(sol.total_lateness, Seconds::ZERO);
        assert!(sol.area_overruns.is_empty());
    }

    #[test]
    fn probability_neglecting_weights_change_fitness_not_report() {
        let system = sys(600, 100.0);
        // Put the common mode on hardware so the modes differ in power.
        let mut mapping = all_cpu(&system);
        mapping.set(ModeId::new(1), TaskId::new(0), PeId::new(1));
        mapping.set(ModeId::new(1), TaskId::new(1), PeId::new(1));

        let aware_cfg = SynthesisConfig::new(0);
        let neglect_cfg = SynthesisConfig::new(0).probability_neglecting();
        let aware = Evaluator::new(&system, &aware_cfg)
            .evaluate(mapping.clone(), None)
            .unwrap();
        let neglect = Evaluator::new(&system, &neglect_cfg).evaluate(mapping, None).unwrap();
        // The reported power is identical (true probabilities)…
        assert_eq!(aware.power.average, neglect.power.average);
        // …but the fitness differs (uniform weights overweight the rare,
        // expensive mode).
        assert!(neglect.fitness > aware.fitness);
    }

    #[test]
    fn timing_violation_inflates_fitness() {
        // 30 ms period cannot hold two sequential 20 ms software tasks.
        let system = sys(600, 30.0);
        let config = SynthesisConfig::new(0);
        let ev = Evaluator::new(&system, &config);
        let sol = ev.evaluate(all_cpu(&system), None).unwrap();
        assert!(!sol.is_feasible());
        assert!(sol.total_lateness.value() > 0.0);
        assert!(sol.fitness > sol.power.average.value() * 2.0);
    }

    #[test]
    fn area_violation_is_detected_and_penalised() {
        // ASIC of 300 cells cannot hold two 240-cell cores (types A and B).
        let system = sys(300, 100.0);
        let config = SynthesisConfig::new(0);
        let ev = Evaluator::new(&system, &config);
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(1));
        let sol = ev.evaluate(mapping, None).unwrap();
        assert_eq!(sol.area_overruns.len(), 1);
        assert_eq!(sol.area_overruns[0].used, Cells::new(480));
        assert!(!sol.is_feasible());
        let feasible = ev.evaluate(all_cpu(&system), None).unwrap();
        assert!(sol.fitness > feasible.fitness);
    }

    #[test]
    fn dvs_reduces_fitness_and_power() {
        let system = sys(600, 100.0);
        let config = SynthesisConfig::new(0).with_dvs();
        let ev = Evaluator::new(&system, &config);
        let nominal = ev.evaluate(all_cpu(&system), None).unwrap();
        let scaled = ev
            .evaluate(all_cpu(&system), Some(&DvsOptions::fine()))
            .unwrap();
        assert!(scaled.power.average < nominal.power.average);
        assert!(scaled.is_feasible());
        // Voltage schedules are populated for scaled tasks.
        let vs = &scaled.voltage_schedules[0];
        assert!(vs.iter().any(Option::is_some));
        assert!(nominal.voltage_schedules[0].iter().all(Option::is_none));
    }

    #[test]
    fn describe_reports_modes_cores_and_feasibility() {
        let system = sys(600, 100.0);
        let config = SynthesisConfig::new(0);
        let ev = Evaluator::new(&system, &config);
        let mut mapping = all_cpu(&system);
        mapping.set(ModeId::new(1), TaskId::new(0), PeId::new(1));
        let sol = ev.evaluate(mapping, None).unwrap();
        let text = sol.describe(&system);
        assert!(text.contains("feasible"));
        assert!(text.contains("rare"));
        assert!(text.contains("common"));
        assert!(text.contains("cores:"));
        assert!(text.contains("mW average"));

        // An infeasible solution is called out.
        let tight = sys(600, 30.0);
        let ev = Evaluator::new(&tight, &config);
        let sol = ev
            .evaluate(SystemMapping::from_fn(&tight, |_| PeId::new(0)), None)
            .unwrap();
        assert!(sol.describe(&tight).contains("INFEASIBLE"));
    }

    #[test]
    fn scratch_reuse_across_evaluations_is_transparent() {
        // One evaluator reused over alternating mappings must price each
        // exactly like a fresh evaluator: the scratch buffers carry no
        // state between evaluations.
        let system = sys(600, 100.0);
        let config = SynthesisConfig::new(0).with_dvs();
        let shared = Evaluator::new(&system, &config);
        let mut hw = all_cpu(&system);
        hw.set(ModeId::new(1), TaskId::new(0), PeId::new(1));
        hw.set(ModeId::new(1), TaskId::new(1), PeId::new(1));
        for mapping in [all_cpu(&system), hw.clone(), all_cpu(&system), hw] {
            let fresh = Evaluator::new(&system, &config);
            let reused = shared.evaluate(mapping.clone(), Some(&DvsOptions::fine())).unwrap();
            let pristine = fresh.evaluate(mapping, Some(&DvsOptions::fine())).unwrap();
            assert_eq!(reused, pristine);
        }
    }

    #[test]
    fn shutdown_is_rewarded_for_rare_mode_hardware() {
        // With probabilities 0.1/0.9, keeping the common mode pure-software
        // lets the ASIC+bus power down 90% of the time; putting the *rare*
        // mode on HW instead keeps the expensive SW execution in the
        // common mode. The evaluator must price this correctly.
        let system = sys(600, 100.0);
        let config = SynthesisConfig::new(0);
        let ev = Evaluator::new(&system, &config);
        // Variant 1: common mode on HW (shuts CPU-heavy work down where it
        // matters most).
        let mut common_hw = all_cpu(&system);
        common_hw.set(ModeId::new(1), TaskId::new(0), PeId::new(1));
        common_hw.set(ModeId::new(1), TaskId::new(1), PeId::new(1));
        // Variant 2: rare mode on HW.
        let mut rare_hw = all_cpu(&system);
        rare_hw.set(ModeId::new(0), TaskId::new(0), PeId::new(1));
        rare_hw.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        let s1 = ev.evaluate(common_hw, None).unwrap();
        let s2 = ev.evaluate(rare_hw, None).unwrap();
        assert!(
            s1.power.average < s2.power.average,
            "common-mode HW {} should beat rare-mode HW {}",
            s1.power.average,
            s2.power.average
        );
    }
}
