//! First-improvement local search over mapping genomes.
//!
//! A memetic polish stage applied to the GA's winner: sweep the loci in a
//! seeded random order, try every alternative candidate PE at each locus
//! and keep the first strict improvement; repeat until a full sweep finds
//! nothing (or the pass budget is exhausted). Single-gene moves cannot
//! escape the coordinated local optima of the multi-mode landscape, but
//! they reliably remove drift artefacts — rare-mode genes parked on
//! hardware the mode does not need — which the probability-weighted
//! fitness is nearly blind to during evolution.

use std::time::Instant;

use momsynth_sync::sync::atomic::{AtomicBool, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use momsynth_ga::REJECTED_COST;

use crate::fitness::Evaluator;
use crate::genome::{Gene, GenomeLayout};
use momsynth_dvs::DvsOptions;

/// Options of the local-search polish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchOptions {
    /// Maximum number of full sweeps over the genome (0 disables).
    pub max_passes: usize,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        Self { max_passes: 2 }
    }
}

/// Cooperative interruption controls for [`polish`]. The default never
/// interrupts. All limits are checked between candidate evaluations, so
/// an interrupted polish costs at most one extra evaluation and always
/// leaves `genes` in a valid, no-worse-than-input state.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolishControl<'a> {
    /// Cancellation flag (e.g. raised by a Ctrl-C handler).
    pub stop: Option<&'a AtomicBool>,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cap on candidate evaluations for this polish stage.
    pub max_evaluations: Option<usize>,
}

impl PolishControl<'_> {
    fn interrupted(&self, evaluations: usize) -> bool {
        // Acquire pairs with the raiser's Release store: observing the
        // cancellation must also show the state written before it.
        self.stop.is_some_and(|f| f.load(Ordering::Acquire))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.max_evaluations.is_some_and(|m| evaluations >= m)
    }
}

/// The outcome of a polish run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSearchStats {
    /// Number of single-gene moves accepted.
    pub moves_accepted: usize,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
    /// Fitness before and after.
    pub fitness_before: f64,
    /// Final fitness.
    pub fitness_after: f64,
    /// `true` if the polish was cut short by its [`PolishControl`].
    pub interrupted: bool,
}

/// Polishes `genes` in place; returns statistics.
///
/// `dvs` selects the voltage-scaling resolution used to price candidate
/// moves (usually the coarse evaluation options of the synthesis config).
/// Candidates whose evaluation fails, panics or prices to a non-finite
/// fitness are treated as [`REJECTED_COST`] and never accepted. `control`
/// can interrupt the sweep between evaluations; the genome then keeps the
/// best state reached so far.
pub fn polish(
    evaluator: &Evaluator<'_>,
    layout: &GenomeLayout,
    genes: &mut [Gene],
    dvs: Option<&DvsOptions>,
    options: &LocalSearchOptions,
    seed: u64,
    control: &PolishControl<'_>,
) -> LocalSearchStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut evaluations = 0usize;
    let cost = |genes: &[Gene], evals: &mut usize| -> f64 {
        *evals += 1;
        let priced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            evaluator.evaluate(layout.decode(genes), dvs).map(|s| s.fitness)
        }));
        match priced {
            Ok(Ok(fitness)) if fitness.is_finite() => fitness,
            _ => REJECTED_COST,
        }
    };

    let mut current = cost(genes, &mut evaluations);
    let fitness_before = current;
    let mut moves_accepted = 0usize;
    let mut interrupted = false;

    'passes: for _ in 0..options.max_passes {
        let mut improved = false;
        // Random sweep order avoids systematic bias across passes.
        let mut order: Vec<usize> = (0..layout.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &locus in &order {
            let original = genes[locus];
            let alternatives = layout.candidates(locus).len();
            if alternatives < 2 {
                continue;
            }
            let mut best_alt: Option<(Gene, f64)> = None;
            for alt in 0..alternatives as Gene {
                if alt == original {
                    continue;
                }
                if control.interrupted(evaluations) {
                    genes[locus] = original;
                    interrupted = true;
                    break 'passes;
                }
                genes[locus] = alt;
                let c = cost(genes, &mut evaluations);
                if c < current && best_alt.is_none_or(|(_, b)| c < b) {
                    best_alt = Some((alt, c));
                }
            }
            match best_alt {
                Some((alt, c)) => {
                    genes[locus] = alt;
                    current = c;
                    moves_accepted += 1;
                    improved = true;
                }
                None => genes[locus] = original,
            }
        }
        if !improved {
            break;
        }
    }

    LocalSearchStats {
        moves_accepted,
        evaluations,
        fitness_before,
        fitness_after: current,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use momsynth_gen::suite::{generate, GeneratorParams};

    fn small_system() -> momsynth_model::System {
        let mut params = GeneratorParams::new("ls", 17);
        params.modes = 2;
        params.tasks_per_mode = (6, 8);
        generate(&params)
    }

    #[test]
    fn polish_never_worsens_fitness() {
        let system = small_system();
        let config = SynthesisConfig::new(0);
        let evaluator = Evaluator::new(&system, &config);
        let layout = GenomeLayout::new(&system);
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut genes: Vec<Gene> = (0..layout.len())
                .map(|l| rng.gen_range(0..layout.candidates(l).len()) as Gene)
                .collect();
            let stats = polish(
                &evaluator,
                &layout,
                &mut genes,
                None,
                &LocalSearchOptions::default(),
                seed,
                &PolishControl::default(),
            );
            assert!(stats.fitness_after <= stats.fitness_before);
            // Result must still decode to a valid mapping.
            assert!(layout.decode(&genes).validate(&system).is_ok());
        }
    }

    #[test]
    fn polish_improves_a_random_genome() {
        let system = small_system();
        let config = SynthesisConfig::new(0);
        let evaluator = Evaluator::new(&system, &config);
        let layout = GenomeLayout::new(&system);
        let mut rng = StdRng::seed_from_u64(1);
        let mut genes: Vec<Gene> = (0..layout.len())
            .map(|l| rng.gen_range(0..layout.candidates(l).len()) as Gene)
            .collect();
        let stats = polish(
            &evaluator,
            &layout,
            &mut genes,
            None,
            &LocalSearchOptions::default(),
            0,
            &PolishControl::default(),
        );
        assert!(stats.moves_accepted > 0, "random genome should be improvable");
        assert!(stats.fitness_after < stats.fitness_before);
        assert!(stats.evaluations > 0);
    }

    #[test]
    fn zero_passes_is_a_noop() {
        let system = small_system();
        let config = SynthesisConfig::new(0);
        let evaluator = Evaluator::new(&system, &config);
        let layout = GenomeLayout::new(&system);
        let mut genes: Vec<Gene> = vec![0; layout.len()];
        let before = genes.clone();
        let stats = polish(
            &evaluator,
            &layout,
            &mut genes,
            None,
            &LocalSearchOptions { max_passes: 0 },
            0,
            &PolishControl::default(),
        );
        assert_eq!(genes, before);
        assert_eq!(stats.moves_accepted, 0);
        assert_eq!(stats.fitness_before, stats.fitness_after);
    }

    #[test]
    fn polish_is_deterministic_per_seed() {
        let system = small_system();
        let config = SynthesisConfig::new(0);
        let evaluator = Evaluator::new(&system, &config);
        let layout = GenomeLayout::new(&system);
        let mut a: Vec<Gene> = vec![1; layout.len()]
            .iter()
            .enumerate()
            .map(|(l, _)| 1u16.min(layout.candidates(l).len() as u16 - 1))
            .collect();
        let mut b = a.clone();
        let ctl = PolishControl::default();
        let sa = polish(&evaluator, &layout, &mut a, None, &LocalSearchOptions::default(), 9, &ctl);
        let sb = polish(&evaluator, &layout, &mut b, None, &LocalSearchOptions::default(), 9, &ctl);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }
}
