//! The four improvement mutation operators (Fig. 4, lines 19–22).
//!
//! These problem-specific operators push the GA away from infeasible and
//! low-quality design-space regions:
//!
//! * **Shut-down improvement** — empty a non-essential PE in one mode so
//!   the component can be powered off there (static power);
//! * **Area improvement** — move hardware tasks back to software when
//!   area-infeasible regions dominate;
//! * **Timing improvement** — move software tasks to faster
//!   implementations when deadlines are missed;
//! * **Transition improvement** — move tasks away from FPGAs that cause
//!   transition-time violations.
//!
//! The paper triggers each strategy after observing repeated
//! infeasibility; this implementation applies a uniformly random one of
//! the four to each individual handed to the hook, which keeps the engine
//! generic while exercising the same moves (documented deviation).

use rand::{Rng, RngCore};

use momsynth_model::ids::{ModeId, PeId};
use momsynth_model::System;

use crate::genome::{Gene, GenomeLayout};

/// Which operator to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImprovementOp {
    /// Empty a non-essential PE in one mode.
    Shutdown,
    /// Re-map a hardware task to software.
    Area,
    /// Re-map a software task to its fastest implementation.
    Timing,
    /// Re-map a task away from reconfigurable hardware.
    Transition,
}

impl ImprovementOp {
    /// All four operators.
    pub const ALL: [Self; 4] = [Self::Shutdown, Self::Area, Self::Timing, Self::Transition];

    /// Dense index of the operator in [`ImprovementOp::ALL`]; matches the
    /// per-operator telemetry counters
    /// ([`momsynth_telemetry::OPERATOR_NAMES`]).
    pub fn index(self) -> usize {
        match self {
            Self::Shutdown => 0,
            Self::Area => 1,
            Self::Timing => 2,
            Self::Transition => 3,
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Shutdown => "shutdown",
            Self::Area => "area",
            Self::Timing => "timing",
            Self::Transition => "transition",
        }
    }
}

/// Applies a uniformly random improvement operator to `genes`. Returns
/// the operator drawn and whether it changed the genome, so callers can
/// track per-operator efficacy.
pub fn improve_random(
    system: &System,
    layout: &GenomeLayout,
    genes: &mut [Gene],
    rng: &mut dyn RngCore,
) -> (ImprovementOp, bool) {
    let op = ImprovementOp::ALL[rng.gen_range(0..ImprovementOp::ALL.len())];
    let changed = apply(system, layout, genes, op, rng);
    (op, changed)
}

/// Applies one specific improvement operator to `genes`. Returns `true`
/// if the genome was changed.
pub fn apply(
    system: &System,
    layout: &GenomeLayout,
    genes: &mut [Gene],
    op: ImprovementOp,
    rng: &mut dyn RngCore,
) -> bool {
    match op {
        ImprovementOp::Shutdown => shutdown_improvement(system, layout, genes, rng),
        ImprovementOp::Area => area_improvement(system, layout, genes, rng),
        ImprovementOp::Timing => timing_improvement(system, layout, genes, rng),
        ImprovementOp::Transition => transition_improvement(system, layout, genes, rng),
    }
}

/// Loci of one mode, with their current PEs.
fn mode_loci(
    layout: &GenomeLayout,
    genes: &[Gene],
    mode: ModeId,
) -> Vec<(usize, PeId)> {
    (0..layout.len())
        .filter(|&l| layout.global(l).mode == mode)
        .map(|l| (l, layout.pe_at(l, genes[l])))
        .collect()
}

fn shutdown_improvement(
    system: &System,
    layout: &GenomeLayout,
    genes: &mut [Gene],
    rng: &mut dyn RngCore,
) -> bool {
    let mode = ModeId::new(rng.gen_range(0..system.omsm().mode_count()));
    let loci = mode_loci(layout, genes, mode);
    // Candidate victims: PEs used in this mode where every task has an
    // alternative implementation elsewhere ("non-essential" PEs).
    let mut used: Vec<PeId> = loci.iter().map(|&(_, pe)| pe).collect();
    used.sort_unstable();
    used.dedup();
    let victims: Vec<PeId> = used
        .into_iter()
        .filter(|&pe| {
            loci.iter()
                .filter(|&&(_, p)| p == pe)
                .all(|&(l, _)| layout.candidates(l).len() >= 2)
        })
        .collect();
    let Some(&victim) = pick(&victims, rng) else { return false };
    let mut changed = false;
    for (l, pe) in loci {
        if pe != victim {
            continue;
        }
        let alternatives: Vec<Gene> = layout
            .candidates(l)
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != victim)
            .map(|(i, _)| i as Gene)
            .collect();
        if let Some(&g) = pick(&alternatives, rng) {
            genes[l] = g;
            changed = true;
        }
    }
    changed
}

fn area_improvement(
    system: &System,
    layout: &GenomeLayout,
    genes: &mut [Gene],
    rng: &mut dyn RngCore,
) -> bool {
    // Loci currently on hardware that have a software alternative.
    let movable: Vec<usize> = (0..layout.len())
        .filter(|&l| {
            system.arch().pe(layout.pe_at(l, genes[l])).kind().is_hardware()
                && layout
                    .candidates(l)
                    .iter()
                    .any(|&c| system.arch().pe(c).kind().is_software())
        })
        .collect();
    let Some(&locus) = pick(&movable, rng) else { return false };
    let sw: Vec<Gene> = layout
        .candidates(locus)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| system.arch().pe(c).kind().is_software())
        .map(|(i, _)| i as Gene)
        .collect();
    if let Some(&g) = pick(&sw, rng) {
        genes[locus] = g;
        true
    } else {
        false
    }
}

fn timing_improvement(
    system: &System,
    layout: &GenomeLayout,
    genes: &mut [Gene],
    rng: &mut dyn RngCore,
) -> bool {
    // Loci on software whose type has a strictly faster candidate.
    let exec = |locus: usize, pe: PeId| {
        let id = layout.global(locus);
        system
            .tech()
            .impl_of(system.task_type_of(id), pe)
            .expect("candidates are implementable")
            .exec_time()
    };
    let movable: Vec<usize> = (0..layout.len())
        .filter(|&l| {
            let current = layout.pe_at(l, genes[l]);
            system.arch().pe(current).kind().is_software()
                && layout
                    .candidates(l)
                    .iter()
                    .any(|&c| exec(l, c) < exec(l, current))
        })
        .collect();
    let Some(&locus) = pick(&movable, rng) else { return false };
    // Jump to the fastest implementation.
    let best = layout
        .candidates(locus)
        .iter()
        .enumerate()
        .min_by(|(_, &a), (_, &b)| {
            exec(locus, a).value().total_cmp(&exec(locus, b).value())
        })
        .map(|(i, _)| i as Gene)
        .expect("candidate list is non-empty");
    genes[locus] = best;
    true
}

fn transition_improvement(
    system: &System,
    layout: &GenomeLayout,
    genes: &mut [Gene],
    rng: &mut dyn RngCore,
) -> bool {
    // Loci on reconfigurable hardware with any non-FPGA alternative.
    let movable: Vec<usize> = (0..layout.len())
        .filter(|&l| {
            system
                .arch()
                .pe(layout.pe_at(l, genes[l]))
                .kind()
                .is_reconfigurable()
                && layout
                    .candidates(l)
                    .iter()
                    .any(|&c| !system.arch().pe(c).kind().is_reconfigurable())
        })
        .collect();
    let Some(&locus) = pick(&movable, rng) else { return false };
    let alternatives: Vec<Gene> = layout
        .candidates(locus)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| !system.arch().pe(c).kind().is_reconfigurable())
        .map(|(i, _)| i as Gene)
        .collect();
    if let Some(&g) = pick(&alternatives, rng) {
        genes[locus] = g;
        true
    } else {
        false
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut dyn RngCore) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::units::{Cells, Seconds, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// CPU + ASIC + FPGA, all connected; type X implementable everywhere
    /// (HW faster), type Y on CPU only. Mode 0 has two X and one Y task.
    fn sys() -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let ty = tech.add_type("Y");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let asic = arch.add_pe(Pe::hardware("asic", PeKind::Asic, Cells::new(500), Watts::ZERO));
        let fpga = arch.add_pe(
            Pe::hardware("fpga", PeKind::Fpga, Cells::new(500), Watts::ZERO)
                .with_reconfig_time_per_cell(Seconds::from_micros(10.0)),
        );
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, asic, fpga],
            Seconds::from_micros(1.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(10.0)),
        );
        for hw in [asic, fpga] {
            tech.set_impl(
                tx,
                hw,
                Implementation::hardware(
                    Seconds::from_millis(1.0),
                    Watts::from_milli(1.0),
                    Cells::new(100),
                ),
            );
        }
        tech.set_impl(
            ty,
            cpu,
            Implementation::software(Seconds::from_millis(5.0), Watts::from_milli(5.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        g.add_task("x0", tx);
        g.add_task("x1", tx);
        g.add_task("y", ty);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    #[test]
    fn area_improvement_moves_hw_task_to_software() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mut rng = StdRng::seed_from_u64(0);
        // Start with both X tasks on the ASIC (candidate index 1).
        let mut genes = vec![1, 1, 0];
        assert!(apply(&system, &layout, &mut genes, ImprovementOp::Area, &mut rng));
        let moved = (0..2)
            .filter(|&l| system.arch().pe(layout.pe_at(l, genes[l])).kind().is_software())
            .count();
        assert_eq!(moved, 1);
    }

    #[test]
    fn area_improvement_noop_without_hw_tasks() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mut rng = StdRng::seed_from_u64(0);
        let mut genes = vec![0, 0, 0];
        assert!(!apply(&system, &layout, &mut genes, ImprovementOp::Area, &mut rng));
        assert_eq!(genes, vec![0, 0, 0]);
    }

    #[test]
    fn timing_improvement_moves_to_fastest() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mut rng = StdRng::seed_from_u64(1);
        let mut genes = vec![0, 0, 0]; // everything on CPU
        assert!(apply(&system, &layout, &mut genes, ImprovementOp::Timing, &mut rng));
        // One X task must now sit on hardware (the fastest candidate).
        let on_hw = (0..2)
            .filter(|&l| system.arch().pe(layout.pe_at(l, genes[l])).kind().is_hardware())
            .count();
        assert_eq!(on_hw, 1);
        // Task y (type Y) has a single candidate and can never move.
        assert_eq!(genes[2], 0);
    }

    #[test]
    fn transition_improvement_evacuates_fpga() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mut rng = StdRng::seed_from_u64(2);
        let mut genes = vec![2, 2, 0]; // both X tasks on the FPGA
        assert!(apply(&system, &layout, &mut genes, ImprovementOp::Transition, &mut rng));
        let on_fpga = (0..2)
            .filter(|&l| {
                system
                    .arch()
                    .pe(layout.pe_at(l, genes[l]))
                    .kind()
                    .is_reconfigurable()
            })
            .count();
        assert_eq!(on_fpga, 1);
    }

    #[test]
    fn shutdown_improvement_can_empty_a_pe() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        // Mix: x0 on ASIC, x1 on CPU, y on CPU. CPU is essential for y (one
        // candidate) so the ASIC is the only victim; after the move the
        // ASIC must be empty.
        let mut emptied = false;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut genes = vec![1, 0, 0];
            if apply(&system, &layout, &mut genes, ImprovementOp::Shutdown, &mut rng) {
                let on_asic = (0..3)
                    .filter(|&l| layout.pe_at(l, genes[l]) == PeId::new(1))
                    .count();
                assert_eq!(on_asic, 0);
                emptied = true;
            }
        }
        assert!(emptied, "shutdown improvement never fired over 20 seeds");
    }

    #[test]
    fn random_improvement_keeps_genome_decodable() {
        let system = sys();
        let layout = GenomeLayout::new(&system);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let mut genes = vec![
                rng.gen_range(0..3) as Gene,
                rng.gen_range(0..3) as Gene,
                0,
            ];
            improve_random(&system, &layout, &mut genes, &mut rng);
            let mapping = layout.decode(&genes);
            assert!(mapping.validate(&system).is_ok());
        }
    }
}
