//! Bridge to the independent `momsynth-check` oracle.
//!
//! The checker lives *below* this crate in the dependency graph and
//! re-derives every constraint from the model alone; this module only
//! adapts [`Solution`]'s parts into the checker's view and states the
//! invariant the synthesis loop holds itself to.

use momsynth_check::{check_solution, CheckReport, SolutionView};
use momsynth_model::System;

use crate::fitness::Solution;

/// Verifies a finished [`Solution`] with the independent checker,
/// returning every finding (constraint and consistency alike).
pub fn verify_solution(system: &System, solution: &Solution) -> CheckReport {
    check_solution(
        system,
        &SolutionView {
            mapping: &solution.mapping,
            alloc: &solution.alloc,
            schedules: &solution.schedules,
            voltage_schedules: &solution.voltage_schedules,
            power: &solution.power,
        },
    )
}

/// The synthesis loop's invariant over any solution it prices:
///
/// * no internal-consistency violation, ever — the parts of a solution
///   must agree with each other regardless of feasibility;
/// * a solution the evaluator reports as feasible must be completely
///   clean (an infeasible candidate may legitimately carry
///   design-constraint findings — that is what its penalty priced).
///
/// Returns the offending report when the invariant is breached.
pub fn invariant_breach(system: &System, solution: &Solution) -> Option<CheckReport> {
    let report = verify_solution(system, solution);
    if report.has_consistency_violations() || (solution.is_feasible() && !report.is_clean()) {
        Some(report)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthesisConfig;
    use crate::synthesis::Synthesizer;
    use momsynth_gen::examples::example1_system;

    #[test]
    fn final_solutions_verify_cleanly() {
        let system = example1_system();
        let config = SynthesisConfig::fast_preset(3).with_dvs();
        let result = Synthesizer::new(&system, config).run().expect("schedulable system");
        let report = verify_solution(&system, &result.best);
        if result.best.is_feasible() {
            assert!(report.is_clean(), "{report}");
        } else {
            assert!(!report.has_consistency_violations(), "{report}");
        }
        assert!(invariant_breach(&system, &result.best).is_none());
    }

    #[test]
    fn corrupted_power_breaches_the_invariant() {
        let system = example1_system();
        let config = SynthesisConfig::fast_preset(3);
        let result = Synthesizer::new(&system, config).run().expect("schedulable system");
        let mut bad = result.best.clone();
        bad.power.average = bad.power.average * 2.0;
        let report = invariant_breach(&system, &bad).expect("inflated p̄ must be caught");
        assert!(report.has_consistency_violations());
    }
}
