//! Configuration of the co-synthesis flow.

use momsynth_dvs::DvsOptions;
use momsynth_ga::GaConfig;
use momsynth_sched::SchedulerOptions;

use crate::alloc::AllocOptions;
use crate::local_search::LocalSearchOptions;

/// Weights of the penalty terms in the mapping fitness `F_M`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyWeights {
    /// Weight of the timing penalty (`tp`): per unit of lateness relative
    /// to the mode period.
    pub timing: f64,
    /// `w_A`: weight of the area penalty, applied per percent of area
    /// overshoot (the paper's `(a_U − a_max)/(a_max · 0.01)` term).
    pub area: f64,
    /// `w_R`: weight of the transition-time penalty, applied per violating
    /// transition's overrun ratio.
    pub transition: f64,
    /// Extra multiplicative factor applied once to any candidate with at
    /// least one constraint violation. The paper's purely relative
    /// penalties can let a massively cheaper infeasible mapping outrank a
    /// feasible one (e.g. area-violating all-hardware mappings three
    /// orders of magnitude below any software alternative); this boost
    /// keeps the search ordered among infeasible candidates while
    /// guaranteeing that feasible candidates dominate. Set to `1.0` to
    /// reproduce the paper's formula verbatim.
    pub infeasibility_boost: f64,
}

impl Default for PenaltyWeights {
    fn default() -> Self {
        Self { timing: 20.0, area: 0.5, transition: 2.0, infeasibility_boost: 1e6 }
    }
}

/// DVS settings used inside the synthesis loop.
///
/// Fitness evaluation runs thousands of voltage-scaling passes, so it uses
/// a coarse slack quantum; the final best solution is re-scaled with a
/// fine quantum before reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsSynthesisOptions {
    /// Coarse options used for every fitness evaluation.
    pub eval: DvsOptions,
    /// Fine options used once, on the final best solution.
    pub refine: DvsOptions,
}

impl Default for DvsSynthesisOptions {
    fn default() -> Self {
        Self {
            eval: DvsOptions { quantum_divisor: 24.0, max_iterations: 4_000, scale_hw: true },
            refine: DvsOptions::fine(),
        }
    }
}

impl DvsSynthesisOptions {
    /// DVS restricted to software PEs (ablation D3).
    pub fn software_only() -> Self {
        let mut o = Self::default();
        o.eval.scale_hw = false;
        o.refine.scale_hw = false;
        o
    }
}

/// A fault injected into one candidate evaluation by [`FaultInjection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The evaluator panics.
    Panic,
    /// The evaluator reports a NaN fitness.
    Nan,
    /// The evaluator returns a scheduling error.
    Err,
}

/// Deterministic fault injection into candidate evaluation (chaos
/// testing).
///
/// Each rate is the probability (in `[0, 1]`) that an evaluation fails in
/// the corresponding way. The decision is a pure function of the genome
/// and `seed` — the same candidate always fails the same way regardless of
/// evaluation order — so faulty runs stay reproducible and
/// checkpoint/resume equivalence holds even under injected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// Probability that an evaluation panics.
    pub panic_rate: f64,
    /// Probability that an evaluation produces a NaN fitness.
    pub nan_rate: f64,
    /// Probability that an evaluation returns a scheduling error.
    pub err_rate: f64,
    /// Seed decorrelating the fault pattern from the GA seed.
    pub seed: u64,
}

impl FaultInjection {
    /// Decides whether (and how) the evaluation of `genome` fails.
    pub fn roll(&self, genome: &[u16]) -> Option<InjectedFault> {
        // FNV-1a over the seed and the genes, finished with a SplitMix
        // mix so low-entropy genomes still spread over [0, 1).
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for &gene in genome {
            hash = (hash ^ u64::from(gene)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.panic_rate {
            Some(InjectedFault::Panic)
        } else if unit < self.panic_rate + self.nan_rate {
            Some(InjectedFault::Nan)
        } else if unit < self.panic_rate + self.nan_rate + self.err_rate {
            Some(InjectedFault::Err)
        } else {
            None
        }
    }
}

/// Complete configuration of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// Genetic-algorithm engine settings.
    pub ga: GaConfig,
    /// Optimise with the true mode execution probabilities (the paper's
    /// proposal). When `false`, the optimiser weights all modes uniformly
    /// — the baseline both result tables compare against. The *reported*
    /// power always uses the true probabilities.
    pub probability_aware: bool,
    /// Voltage scaling; `None` synthesises a fixed-voltage implementation
    /// (Table 1), `Some` enables DVS (Table 2).
    pub dvs: Option<DvsSynthesisOptions>,
    /// Penalty weights of the fitness function.
    pub weights: PenaltyWeights,
    /// Hardware core allocation options.
    pub alloc: AllocOptions,
    /// List-scheduler options.
    pub scheduler: SchedulerOptions,
    /// Apply the paper's four improvement mutation operators (design
    /// decision D2; disable for the ablation).
    pub improvement_operators: bool,
    /// First-improvement local search applied to the GA's winner before
    /// the final refinement (memetic polish; set `max_passes` to 0 to
    /// disable).
    pub local_search: LocalSearchOptions,
    /// Deterministic evaluator fault injection for chaos testing; `None`
    /// (the default) evaluates faithfully.
    pub fault_injection: Option<FaultInjection>,
    /// Re-verify the best individual of every generation (and the final
    /// refined solution) with the independent `momsynth-check` oracle.
    /// A failed check panics in debug builds and emits a telemetry
    /// `Warning` event in release builds. Defaults to `true` under
    /// `debug_assertions` (tests), `false` in release builds.
    pub verify_each_generation: bool,
    /// Worker threads for batch fitness evaluation: `1` (the default)
    /// evaluates serially, `0` uses every available core. The evolution
    /// trajectory is bit-identical at any thread count.
    pub threads: usize,
    /// Bound of the genome-keyed evaluation cache (entries across all
    /// shards); `0` disables caching. Sound because the fitness is a
    /// pure function of the genome.
    pub cache_capacity: usize,
    /// Build the genome from the statically pruned capable-PE domains of
    /// the pre-synthesis analyzer, so mutation and crossover never
    /// generate a gene that provably violates a deadline or period.
    /// Pruning only removes provably infeasible genes; it never changes
    /// which solutions are reachable.
    pub prune_domains: bool,
}

impl SynthesisConfig {
    /// The default configuration with the given GA seed.
    pub fn new(seed: u64) -> Self {
        Self {
            ga: GaConfig { seed, ..GaConfig::default() },
            probability_aware: true,
            dvs: None,
            weights: PenaltyWeights::default(),
            alloc: AllocOptions::default(),
            scheduler: SchedulerOptions::default(),
            improvement_operators: true,
            local_search: LocalSearchOptions::default(),
            fault_injection: None,
            verify_each_generation: cfg!(debug_assertions),
            threads: 1,
            cache_capacity: 4096,
            prune_domains: true,
        }
    }

    /// The worker-thread count [`SynthesisConfig::threads`] resolves to:
    /// itself when non-zero, otherwise the machine's available
    /// parallelism (at least 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// A small/fast configuration for examples and tests.
    pub fn fast_preset(seed: u64) -> Self {
        let mut cfg = Self::new(seed);
        cfg.ga.population_size = 20;
        cfg.ga.max_generations = 40;
        cfg.ga.stagnation_limit = 12;
        cfg.local_search = LocalSearchOptions { max_passes: 1 };
        cfg
    }

    /// Enables DVS with default synthesis options.
    #[must_use]
    pub fn with_dvs(mut self) -> Self {
        self.dvs = Some(DvsSynthesisOptions::default());
        self
    }

    /// Switches to the probability-neglecting baseline (uniform mode
    /// weights during optimisation).
    #[must_use]
    pub fn probability_neglecting(mut self) -> Self {
        self.probability_aware = false;
        self
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = SynthesisConfig::default();
        assert!(cfg.probability_aware);
        assert!(cfg.dvs.is_none());
        assert!(cfg.improvement_operators);
        assert!(cfg.weights.timing > 0.0);
        assert_eq!(cfg.threads, 1, "parallelism is opt-in");
        assert!(cfg.cache_capacity > 0, "caching defaults on");
        assert!(cfg.prune_domains, "static domain pruning defaults on");
    }

    #[test]
    fn effective_threads_resolves_zero_to_the_machine() {
        let mut cfg = SynthesisConfig::default();
        assert_eq!(cfg.effective_threads(), 1);
        cfg.threads = 3;
        assert_eq!(cfg.effective_threads(), 3);
        cfg.threads = 0;
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn builder_helpers_compose() {
        let cfg = SynthesisConfig::new(7).with_dvs().probability_neglecting();
        assert_eq!(cfg.ga.seed, 7);
        assert!(cfg.dvs.is_some());
        assert!(!cfg.probability_aware);
    }

    #[test]
    fn fast_preset_is_smaller() {
        let fast = SynthesisConfig::fast_preset(0);
        let full = SynthesisConfig::new(0);
        assert!(fast.ga.population_size < full.ga.population_size);
        assert!(fast.ga.max_generations < full.ga.max_generations);
    }

    #[test]
    fn fault_injection_is_deterministic_per_genome() {
        let fault = FaultInjection { panic_rate: 0.2, nan_rate: 0.2, err_rate: 0.2, seed: 7 };
        for genome in [vec![0u16, 1, 2], vec![3, 3], vec![]] {
            assert_eq!(fault.roll(&genome), fault.roll(&genome));
        }
        // Roughly 60% of random genomes should draw some fault.
        let faulty = (0..1000u16)
            .filter(|&i| fault.roll(&[i, i.wrapping_mul(31)]).is_some())
            .count();
        assert!((450..750).contains(&faulty), "{faulty}");
        let none = FaultInjection { panic_rate: 0.0, nan_rate: 0.0, err_rate: 0.0, seed: 7 };
        assert_eq!(none.roll(&[1, 2, 3]), None);
        let always = FaultInjection { panic_rate: 1.0, nan_rate: 0.0, err_rate: 0.0, seed: 7 };
        assert_eq!(always.roll(&[1, 2, 3]), Some(InjectedFault::Panic));
    }

    #[test]
    fn software_only_dvs_disables_hw_scaling() {
        let o = DvsSynthesisOptions::software_only();
        assert!(!o.eval.scale_hw);
        assert!(!o.refine.scale_hw);
        assert!(DvsSynthesisOptions::default().eval.scale_hw);
    }
}
