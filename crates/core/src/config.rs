//! Configuration of the co-synthesis flow.

use momsynth_dvs::DvsOptions;
use momsynth_ga::GaConfig;
use momsynth_sched::SchedulerOptions;

use crate::alloc::AllocOptions;
use crate::local_search::LocalSearchOptions;

/// Weights of the penalty terms in the mapping fitness `F_M`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyWeights {
    /// Weight of the timing penalty (`tp`): per unit of lateness relative
    /// to the mode period.
    pub timing: f64,
    /// `w_A`: weight of the area penalty, applied per percent of area
    /// overshoot (the paper's `(a_U − a_max)/(a_max · 0.01)` term).
    pub area: f64,
    /// `w_R`: weight of the transition-time penalty, applied per violating
    /// transition's overrun ratio.
    pub transition: f64,
    /// Extra multiplicative factor applied once to any candidate with at
    /// least one constraint violation. The paper's purely relative
    /// penalties can let a massively cheaper infeasible mapping outrank a
    /// feasible one (e.g. area-violating all-hardware mappings three
    /// orders of magnitude below any software alternative); this boost
    /// keeps the search ordered among infeasible candidates while
    /// guaranteeing that feasible candidates dominate. Set to `1.0` to
    /// reproduce the paper's formula verbatim.
    pub infeasibility_boost: f64,
}

impl Default for PenaltyWeights {
    fn default() -> Self {
        Self { timing: 20.0, area: 0.5, transition: 2.0, infeasibility_boost: 1e6 }
    }
}

/// DVS settings used inside the synthesis loop.
///
/// Fitness evaluation runs thousands of voltage-scaling passes, so it uses
/// a coarse slack quantum; the final best solution is re-scaled with a
/// fine quantum before reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsSynthesisOptions {
    /// Coarse options used for every fitness evaluation.
    pub eval: DvsOptions,
    /// Fine options used once, on the final best solution.
    pub refine: DvsOptions,
}

impl Default for DvsSynthesisOptions {
    fn default() -> Self {
        Self {
            eval: DvsOptions { quantum_divisor: 24.0, max_iterations: 4_000, scale_hw: true },
            refine: DvsOptions::fine(),
        }
    }
}

impl DvsSynthesisOptions {
    /// DVS restricted to software PEs (ablation D3).
    pub fn software_only() -> Self {
        let mut o = Self::default();
        o.eval.scale_hw = false;
        o.refine.scale_hw = false;
        o
    }
}

/// Complete configuration of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// Genetic-algorithm engine settings.
    pub ga: GaConfig,
    /// Optimise with the true mode execution probabilities (the paper's
    /// proposal). When `false`, the optimiser weights all modes uniformly
    /// — the baseline both result tables compare against. The *reported*
    /// power always uses the true probabilities.
    pub probability_aware: bool,
    /// Voltage scaling; `None` synthesises a fixed-voltage implementation
    /// (Table 1), `Some` enables DVS (Table 2).
    pub dvs: Option<DvsSynthesisOptions>,
    /// Penalty weights of the fitness function.
    pub weights: PenaltyWeights,
    /// Hardware core allocation options.
    pub alloc: AllocOptions,
    /// List-scheduler options.
    pub scheduler: SchedulerOptions,
    /// Apply the paper's four improvement mutation operators (design
    /// decision D2; disable for the ablation).
    pub improvement_operators: bool,
    /// First-improvement local search applied to the GA's winner before
    /// the final refinement (memetic polish; set `max_passes` to 0 to
    /// disable).
    pub local_search: LocalSearchOptions,
}

impl SynthesisConfig {
    /// The default configuration with the given GA seed.
    pub fn new(seed: u64) -> Self {
        Self {
            ga: GaConfig { seed, ..GaConfig::default() },
            probability_aware: true,
            dvs: None,
            weights: PenaltyWeights::default(),
            alloc: AllocOptions::default(),
            scheduler: SchedulerOptions::default(),
            improvement_operators: true,
            local_search: LocalSearchOptions::default(),
        }
    }

    /// A small/fast configuration for examples and tests.
    pub fn fast_preset(seed: u64) -> Self {
        let mut cfg = Self::new(seed);
        cfg.ga.population_size = 20;
        cfg.ga.max_generations = 40;
        cfg.ga.stagnation_limit = 12;
        cfg.local_search = LocalSearchOptions { max_passes: 1 };
        cfg
    }

    /// Enables DVS with default synthesis options.
    #[must_use]
    pub fn with_dvs(mut self) -> Self {
        self.dvs = Some(DvsSynthesisOptions::default());
        self
    }

    /// Switches to the probability-neglecting baseline (uniform mode
    /// weights during optimisation).
    #[must_use]
    pub fn probability_neglecting(mut self) -> Self {
        self.probability_aware = false;
        self
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = SynthesisConfig::default();
        assert!(cfg.probability_aware);
        assert!(cfg.dvs.is_none());
        assert!(cfg.improvement_operators);
        assert!(cfg.weights.timing > 0.0);
    }

    #[test]
    fn builder_helpers_compose() {
        let cfg = SynthesisConfig::new(7).with_dvs().probability_neglecting();
        assert_eq!(cfg.ga.seed, 7);
        assert!(cfg.dvs.is_some());
        assert!(!cfg.probability_aware);
    }

    #[test]
    fn fast_preset_is_smaller() {
        let fast = SynthesisConfig::fast_preset(0);
        let full = SynthesisConfig::new(0);
        assert!(fast.ga.population_size < full.ga.population_size);
        assert!(fast.ga.max_generations < full.ga.max_generations);
    }

    #[test]
    fn software_only_dvs_disables_hw_scaling() {
        let o = DvsSynthesisOptions::software_only();
        assert!(!o.eval.scale_hw);
        assert!(!o.refine.scale_hw);
        assert!(DvsSynthesisOptions::default().eval.scale_hw);
    }
}
