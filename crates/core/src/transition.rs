//! Mode-transition timing: FPGA reconfiguration against `t_T^max`.
//!
//! When the system changes from mode `O_x` to `O_y`, every reconfigurable
//! PE must load the cores `O_y` needs that are not already present. The
//! reconfiguration time is the area of those cores times the PE's per-cell
//! reconfiguration time; the transition is feasible when the total stays
//! within the transition's limit. ASIC cores are static and never
//! contribute.

use momsynth_model::ids::TransitionId;
use momsynth_model::units::Seconds;
use momsynth_model::System;
use momsynth_sched::CoreAllocation;

/// The reconfiguration timing of one mode transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionTiming {
    /// The transition.
    pub transition: TransitionId,
    /// Total reconfiguration time over all FPGAs.
    pub time: Seconds,
    /// The specification's limit `t_T^max`.
    pub limit: Seconds,
}

impl TransitionTiming {
    /// Whether the transition meets its limit.
    pub fn is_feasible(&self) -> bool {
        self.time.value() <= self.limit.value() + 1e-12
    }

    /// Overrun ratio `time / limit` (1.0 when exactly at the limit).
    pub fn overrun(&self) -> f64 {
        if self.limit.value() <= 0.0 {
            return f64::INFINITY;
        }
        self.time / self.limit
    }
}

/// Computes the reconfiguration timing of every transition under `alloc`.
pub fn transition_timings(system: &System, alloc: &CoreAllocation) -> Vec<TransitionTiming> {
    system
        .omsm()
        .transitions()
        .map(|(id, t)| {
            let mut time = Seconds::ZERO;
            for pe in system.arch().hardware_pes() {
                let info = system.arch().pe(pe);
                if !info.kind().is_reconfigurable() {
                    continue;
                }
                let area = alloc.reconfig_area(system, pe, t.from(), t.to());
                time += info.reconfig_time_per_cell() * area.value() as f64;
            }
            TransitionTiming { transition: id, time, limit: t.max_time() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{ModeId, PeId, TaskTypeId};
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use momsynth_sched::SystemMapping;

    /// Two modes with disjoint types A/B; both implementable on the FPGA
    /// (200-cell cores) or the CPU. Transition limits given per direction.
    fn sys(reconfig_us_per_cell: f64, limit_ms: f64, kind: PeKind) -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(
            Pe::hardware("hw", kind, Cells::new(400), Watts::ZERO)
                .with_reconfig_time_per_cell(Seconds::from_micros(reconfig_us_per_cell)),
        );
        for ty in [ta, tb] {
            tech.set_impl(ty, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
            tech.set_impl(
                ty,
                hw,
                Implementation::hardware(Seconds::new(0.001), Watts::ZERO, Cells::new(200)),
            );
        }
        let mk = |name: &str, ty| {
            let mut g = TaskGraphBuilder::new(name, Seconds::new(1.0));
            g.add_task("t", ty);
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("m0", 0.5, mk("m0", ta));
        let m1 = omsm.add_mode("m1", 0.5, mk("m1", tb));
        omsm.add_transition(m0, m1, Seconds::from_millis(limit_ms)).unwrap();
        omsm.add_transition(m1, m0, Seconds::from_millis(limit_ms)).unwrap();
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn hw_alloc(system: &System) -> CoreAllocation {
        let mapping = SystemMapping::from_fn(system, |_| PeId::new(1));
        CoreAllocation::minimal(system, &mapping)
    }

    #[test]
    fn fpga_reconfiguration_is_charged() {
        // 200 cells at 10 us/cell = 2 ms per direction, limit 5 ms: feasible.
        let system = sys(10.0, 5.0, PeKind::Fpga);
        let timings = transition_timings(&system, &hw_alloc(&system));
        assert_eq!(timings.len(), 2);
        for t in &timings {
            assert!((t.time.as_millis() - 2.0).abs() < 1e-9);
            assert!(t.is_feasible());
            assert!((t.overrun() - 0.4).abs() < 1e-9);
        }
    }

    #[test]
    fn tight_limit_is_violated() {
        // 2 ms reconfiguration against a 1 ms limit.
        let system = sys(10.0, 1.0, PeKind::Fpga);
        let timings = transition_timings(&system, &hw_alloc(&system));
        for t in &timings {
            assert!(!t.is_feasible());
            assert!((t.overrun() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn asic_never_reconfigures() {
        let system = sys(10.0, 1.0, PeKind::Asic);
        let timings = transition_timings(&system, &hw_alloc(&system));
        for t in &timings {
            assert_eq!(t.time, Seconds::ZERO);
            assert!(t.is_feasible());
        }
    }

    #[test]
    fn shared_cores_avoid_reconfiguration() {
        // Same type in both modes: nothing to reload.
        let system = sys(10.0, 1.0, PeKind::Fpga);
        let mut alloc = CoreAllocation::new(2);
        alloc.set_instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0), 1);
        alloc.set_instances(ModeId::new(1), PeId::new(1), TaskTypeId::new(0), 1);
        let timings = transition_timings(&system, &alloc);
        for t in &timings {
            assert_eq!(t.time, Seconds::ZERO);
        }
    }

    #[test]
    fn software_only_mapping_transitions_freely() {
        let system = sys(10.0, 1.0, PeKind::Fpga);
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let alloc = CoreAllocation::minimal(&system, &mapping);
        let timings = transition_timings(&system, &alloc);
        for t in &timings {
            assert_eq!(t.time, Seconds::ZERO);
            assert!(t.is_feasible());
        }
    }
}
