//! Hardware core allocation (Fig. 4, lines 4–5).
//!
//! Every task type mapped to a hardware PE needs at least one core. On top
//! of that minimum, the paper allocates *additional* cores for parallel
//! tasks with low mobility, increasing the chance to exploit application
//! parallelism — which also helps energy, especially under DVS, where the
//! shortened schedule leaves more slack to convert into voltage reduction.
//! Replication stops as soon as it would violate the PE's area constraint
//! (ASICs count the static union of all modes' cores; FPGAs count each
//! mode separately because cores are swapped at mode changes).

use momsynth_model::ids::{PeId, TaskTypeId};
use momsynth_model::units::Seconds;
use momsynth_model::System;
use momsynth_sched::{CoreAllocation, SystemMapping, TimingAnalysis};

/// Options controlling core replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocOptions {
    /// Replicate cores for parallel low-mobility tasks (design decision
    /// D4; disable for the ablation).
    pub replicate: bool,
    /// A task counts as low-mobility when its mobility is below this
    /// fraction of the mode's period.
    pub mobility_threshold: f64,
}

impl Default for AllocOptions {
    fn default() -> Self {
        Self { replicate: true, mobility_threshold: 0.25 }
    }
}

/// Derives the core allocation implied by `mapping`, optionally
/// replicating cores for parallel low-mobility tasks while area allows.
pub fn derive_allocation(
    system: &System,
    mapping: &SystemMapping,
    options: &AllocOptions,
) -> CoreAllocation {
    let mut alloc = CoreAllocation::minimal(system, mapping);
    if !options.replicate {
        return alloc;
    }

    for (mode, m) in system.omsm().modes() {
        let graph = m.graph();
        let analysis = TimingAnalysis::analyze(system, mode, mapping);
        let threshold = graph.period() * options.mobility_threshold;

        // Demand per (hardware PE, type): the peak number of concurrently
        // runnable low-mobility tasks, estimated by sweeping ASAP windows.
        type Window = (Seconds, Seconds);
        let mut groups: Vec<((PeId, TaskTypeId), Vec<Window>)> = Vec::new();
        for (task, t) in graph.tasks() {
            let pe = mapping.pe_of(mode, task);
            if !system.arch().pe(pe).kind().is_hardware() {
                continue;
            }
            if analysis.mobility(task) > threshold {
                continue;
            }
            let window = (
                analysis.asap(task),
                analysis.asap(task) + analysis.exec_time(task),
            );
            let key = (pe, t.task_type());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, windows)) => windows.push(window),
                None => groups.push((key, vec![window])),
            }
        }

        for ((pe, ty), windows) in groups {
            let demand = peak_overlap(&windows);
            let current = alloc.instances(mode, pe, ty);
            let capacity = system
                .arch()
                .pe(pe)
                .area()
                .expect("hardware PEs declare area");
            for want in (current + 1)..=demand {
                alloc.set_instances(mode, pe, ty, want);
                let used = if system.arch().pe(pe).kind().is_reconfigurable() {
                    alloc.mode_area(system, pe, mode)
                } else {
                    alloc.static_area(system, pe)
                };
                if used > capacity {
                    alloc.set_instances(mode, pe, ty, want - 1);
                    break;
                }
            }
        }
    }
    alloc
}

/// Maximum number of simultaneously open intervals.
fn peak_overlap(windows: &[(Seconds, Seconds)]) -> usize {
    let mut events: Vec<(f64, i32)> = Vec::with_capacity(windows.len() * 2);
    for &(start, end) in windows {
        events.push((start.value(), 1));
        events.push((end.value(), -1));
    }
    // Close before open at identical instants: back-to-back tasks share a core.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut open = 0i32;
    let mut peak = 0i32;
    for (_, delta) in events {
        open += delta;
        peak = peak.max(open);
    }
    peak.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::ModeId;
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };

    /// `n` independent type-X tasks on an ASIC of `area` cells; each core
    /// is 100 cells, runs 10 ms against the given period.
    fn parallel_system(n: usize, area: u64, period_ms: f64, kind: PeKind) -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let _cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", kind, Cells::new(area), Watts::ZERO));
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(
                Seconds::from_millis(10.0),
                Watts::from_milli(1.0),
                Cells::new(100),
            ),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(period_ms));
        for i in 0..n {
            g.add_task(format!("t{i}"), tx);
        }
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn hw_mapping(system: &System) -> SystemMapping {
        SystemMapping::from_fn(system, |_| PeId::new(1))
    }

    #[test]
    fn peak_overlap_counts_concurrency() {
        let s = Seconds::new;
        assert_eq!(peak_overlap(&[]), 0);
        assert_eq!(peak_overlap(&[(s(0.0), s(1.0))]), 1);
        // Two overlapping, one after.
        assert_eq!(
            peak_overlap(&[(s(0.0), s(2.0)), (s(1.0), s(3.0)), (s(3.0), s(4.0))]),
            2
        );
        // Back-to-back intervals do not stack.
        assert_eq!(peak_overlap(&[(s(0.0), s(1.0)), (s(1.0), s(2.0))]), 1);
    }

    #[test]
    fn low_mobility_parallel_tasks_get_replicas() {
        // Period 20 ms, three 10 ms tasks: mobility 10 ms = 0.5 period with
        // one core each would be needed… at threshold 0.25 the mobility
        // (20-10=10ms → 0.5·period) is *not* low.
        // Use a tight 12 ms period: mobility 2 ms = 0.1667 < 0.25.
        let system = parallel_system(3, 1000, 12.0, PeKind::Asic);
        let mapping = hw_mapping(&system);
        let alloc = derive_allocation(&system, &mapping, &AllocOptions::default());
        assert_eq!(
            alloc.instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0)),
            3
        );
    }

    #[test]
    fn replication_respects_area() {
        // Three parallel tasks but only room for two 100-cell cores.
        let system = parallel_system(3, 250, 12.0, PeKind::Asic);
        let mapping = hw_mapping(&system);
        let alloc = derive_allocation(&system, &mapping, &AllocOptions::default());
        assert_eq!(
            alloc.instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0)),
            2
        );
    }

    #[test]
    fn high_mobility_tasks_share_one_core() {
        // Plenty of slack: period 100 ms, mobility 90 ms — no replication.
        let system = parallel_system(3, 1000, 100.0, PeKind::Asic);
        let mapping = hw_mapping(&system);
        let alloc = derive_allocation(&system, &mapping, &AllocOptions::default());
        assert_eq!(
            alloc.instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0)),
            1
        );
    }

    #[test]
    fn replication_can_be_disabled() {
        let system = parallel_system(3, 1000, 12.0, PeKind::Asic);
        let mapping = hw_mapping(&system);
        let opts = AllocOptions { replicate: false, ..AllocOptions::default() };
        let alloc = derive_allocation(&system, &mapping, &opts);
        assert_eq!(
            alloc.instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0)),
            1
        );
    }

    #[test]
    fn fpga_uses_per_mode_area() {
        // FPGA with room for two cores per mode still replicates to 2.
        let system = parallel_system(3, 250, 12.0, PeKind::Fpga);
        let mapping = hw_mapping(&system);
        let alloc = derive_allocation(&system, &mapping, &AllocOptions::default());
        assert_eq!(
            alloc.instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0)),
            2
        );
    }

    #[test]
    fn software_only_mapping_needs_no_cores() {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        tech.set_impl(tx, cpu, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut g = TaskGraphBuilder::new("m", Seconds::new(1.0));
        g.add_task("t", tx);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let mapping = SystemMapping::from_fn(&system, |_| cpu);
        let alloc = derive_allocation(&system, &mapping, &AllocOptions::default());
        assert_eq!(alloc.mode_cores(ModeId::new(0)).count(), 0);
    }
}
