//! The co-synthesis driver: the paper's nested two-loop optimisation.
//!
//! The outer loop (the GA over multi-mode mapping strings, Fig. 4)
//! optimises task mapping and core allocation; the inner loop
//! (list scheduling + communication mapping + PV-DVS) constructs the rest
//! of each implementation candidate. [`Synthesizer::run`] wires the
//! [`GenomeLayout`], [`Evaluator`] and improvement operators into the
//! generic GA engine and refines the winning candidate with fine-grained
//! voltage scaling.

use std::time::{Duration, Instant};

use rand::{Rng, RngCore};

use momsynth_ga::{GaConfig, GaProblem};
use momsynth_model::System;

use crate::config::SynthesisConfig;
use crate::fitness::{Evaluator, Solution};
use crate::genome::{Gene, GenomeLayout};
use crate::improve::improve_random;
use crate::local_search::{polish, LocalSearchOptions};

/// The outcome of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    /// The best implementation found, refined with fine-grained DVS.
    pub best: Solution,
    /// Generations executed by the GA.
    pub generations: usize,
    /// Fitness evaluations performed.
    pub evaluations: usize,
    /// Best fitness after each generation.
    pub history: Vec<f64>,
    /// Wall-clock optimisation time.
    pub wall_time: Duration,
}

/// Multi-mode mapping as a [`GaProblem`].
#[derive(Debug)]
struct MappingProblem<'a> {
    layout: &'a GenomeLayout,
    evaluator: &'a Evaluator<'a>,
    system: &'a System,
    config: &'a SynthesisConfig,
}

impl GaProblem for MappingProblem<'_> {
    type Gene = Gene;

    fn genome_len(&self) -> usize {
        self.layout.len()
    }

    fn random_gene(&self, locus: usize, rng: &mut dyn RngCore) -> Gene {
        rng.gen_range(0..self.layout.candidates(locus).len()) as Gene
    }

    fn cost(&self, genome: &[Gene]) -> f64 {
        let mapping = self.layout.decode(genome);
        let dvs = self.config.dvs.as_ref().map(|d| d.eval);
        match self.evaluator.evaluate(mapping, dvs.as_ref()) {
            Ok(solution) => solution.fitness,
            // Unroutable mapping (incomplete communication topology):
            // effectively reject the individual.
            Err(_) => f64::MAX / 4.0,
        }
    }

    fn improve(&self, genome: &mut [Gene], rng: &mut dyn RngCore) {
        improve_random(self.system, self.layout, genome, rng);
    }

    /// Seed the population with the trivial all-software mapping (every
    /// task on its lowest-index software candidate). This keeps scarce
    /// hardware area from being squandered by random rare-mode genes and
    /// gives selection a clean baseline to add hardware onto — a small,
    /// documented deviation from the paper's purely random initialisation.
    fn seeds(&self) -> Vec<Vec<Gene>> {
        let genome = (0..self.layout.len())
            .map(|l| {
                self.layout
                    .candidates(l)
                    .iter()
                    .position(|&pe| self.system.arch().pe(pe).kind().is_software())
                    .unwrap_or(0) as Gene
            })
            .collect();
        vec![genome]
    }
}

/// Runs the paper's co-synthesis on one system.
#[derive(Debug)]
pub struct Synthesizer<'a> {
    system: &'a System,
    config: SynthesisConfig,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer for `system` under `config`.
    pub fn new(system: &'a System, config: SynthesisConfig) -> Self {
        Self { system, config }
    }

    /// The configuration this synthesizer runs with.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs the GA and returns the refined best implementation.
    ///
    /// # Panics
    ///
    /// Panics if the best genome cannot be scheduled — impossible for
    /// architectures where every PE pair hosting communicating tasks is
    /// connected, because the genome only uses library-supported PEs and
    /// the GA rejects unroutable candidates with a huge cost (a fully
    /// disconnected architecture where *every* candidate is unroutable is
    /// a specification error).
    pub fn run(&self) -> SynthesisResult {
        let start = Instant::now();
        let layout = GenomeLayout::new(self.system);
        let evaluator = Evaluator::new(self.system, &self.config);
        let mut ga_config: GaConfig = self.config.ga;
        if !self.config.improvement_operators {
            ga_config.improvement_rate = 0.0;
        }
        let problem = MappingProblem {
            layout: &layout,
            evaluator: &evaluator,
            system: self.system,
            config: &self.config,
        };
        let outcome = momsynth_ga::run(&problem, &ga_config);

        // Memetic polish: single-gene first-improvement sweeps remove the
        // drift artefacts evolution under skewed weights leaves behind.
        let mut genes = outcome.best.clone();
        let mut evaluations = outcome.evaluations;
        if self.config.local_search != (LocalSearchOptions { max_passes: 0 }) {
            let dvs_eval = self.config.dvs.as_ref().map(|d| d.eval);
            let stats = polish(
                &evaluator,
                &layout,
                &mut genes,
                dvs_eval.as_ref(),
                &self.config.local_search,
                ga_config.seed,
            );
            evaluations += stats.evaluations;
        }

        let mapping = layout.decode(&genes);
        let refine = self.config.dvs.as_ref().map(|d| d.refine);
        let best = evaluator
            .evaluate(mapping, refine.as_ref())
            .expect("best genome is schedulable");

        SynthesisResult {
            best,
            generations: outcome.generations,
            evaluations,
            history: outcome.history,
            wall_time: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{ModeId, PeId};
    use momsynth_model::units::{Cells, Seconds, Volts, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind,
        TaskGraphBuilder, TechLibraryBuilder,
    };

    /// A two-mode system with skewed probabilities where the optimal
    /// probability-aware mapping is known by construction: the common mode
    /// should run entirely in software so that ASIC and bus shut down.
    fn skewed_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let hw = arch.add_pe(Pe::hardware(
            "hw",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(4.0),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.5),
        ))
        .unwrap();
        for ty in [ta, tb] {
            tech.set_impl(
                ty,
                cpu,
                Implementation::software(Seconds::from_millis(5.0), Watts::from_milli(30.0)),
            );
            tech.set_impl(
                ty,
                hw,
                Implementation::hardware(
                    Seconds::from_millis(0.5),
                    Watts::from_milli(1.0),
                    Cells::new(240),
                ),
            );
        }
        let mk = |name: &str, ty| {
            let mut g = TaskGraphBuilder::new(name, Seconds::from_millis(100.0));
            let x = g.add_task("x", ty);
            let y = g.add_task("y", ty);
            g.add_comm(x, y, 10.0).unwrap();
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("rare", 0.05, mk("rare", ta));
        let m1 = omsm.add_mode("common", 0.95, mk("common", tb));
        omsm.add_transition(m0, m1, Seconds::from_millis(10.0)).unwrap();
        omsm.add_transition(m1, m0, Seconds::from_millis(10.0)).unwrap();
        System::new("skewed", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap()
    }

    #[test]
    fn synthesis_finds_feasible_low_power_solution() {
        let system = skewed_system();
        let result = Synthesizer::new(&system, SynthesisConfig::fast_preset(1)).run();
        assert!(result.best.is_feasible(), "best must be feasible");
        assert!(result.generations > 0);
        assert!(result.evaluations > 0);
        // The common mode must end up pure software so the ASIC and bus
        // power down during 95% of operation.
        let active = result.best.mapping.active_pes(ModeId::new(1));
        assert_eq!(active, vec![PeId::new(0)], "common mode should shut the ASIC down");
    }

    #[test]
    fn probability_aware_beats_neglecting_on_skewed_systems() {
        let system = skewed_system();
        // Average over a few seeds to smooth GA noise.
        let runs = 3;
        let avg = |aware: bool| -> f64 {
            (0..runs)
                .map(|seed| {
                    let mut cfg = SynthesisConfig::fast_preset(seed);
                    cfg.probability_aware = aware;
                    Synthesizer::new(&system, cfg).run().best.power.average.value()
                })
                .sum::<f64>()
                / runs as f64
        };
        let aware = avg(true);
        let neglect = avg(false);
        assert!(
            aware <= neglect * 1.001,
            "probability-aware {aware} should not lose to neglecting {neglect}"
        );
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let system = skewed_system();
        let cfg = SynthesisConfig::fast_preset(3);
        let a = Synthesizer::new(&system, cfg.clone()).run();
        let b = Synthesizer::new(&system, cfg).run();
        assert_eq!(a.best.mapping, b.best.mapping);
        assert_eq!(a.best.fitness, b.best.fitness);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn dvs_synthesis_reduces_power_further() {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)).with_dvs(
                DvsCapability::new(
                    Volts::new(3.3),
                    Volts::new(0.8),
                    vec![Volts::new(1.2), Volts::new(2.1), Volts::new(3.3)],
                ),
            ),
        );
        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        g.add_task("x", ta);
        g.add_task("y", ta);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();

        let fixed = Synthesizer::new(&system, SynthesisConfig::fast_preset(0)).run();
        let dvs =
            Synthesizer::new(&system, SynthesisConfig::fast_preset(0).with_dvs()).run();
        assert!(
            dvs.best.power.average < fixed.best.power.average,
            "DVS {} must beat fixed voltage {}",
            dvs.best.power.average,
            fixed.best.power.average
        );
        assert!(dvs.best.is_feasible());
    }
}
